//! Umbrella crate for the Sunstone reproduction workspace.
//!
//! This crate exists to host cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`). The actual library lives in the
//! `sunstone` crate and its substrate crates; see `DESIGN.md`.

pub use sunstone;
pub use sunstone_arch as arch;
pub use sunstone_baselines as baselines;
pub use sunstone_diannao as diannao;
pub use sunstone_ir as ir;
pub use sunstone_mapping as mapping;
pub use sunstone_model as model;
pub use sunstone_workloads as workloads;
