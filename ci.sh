#!/usr/bin/env bash
# CI gate: formatting, lints on the core crates, and the tier-1 command.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (core crates) =="
cargo clippy --release \
    -p sunstone-ir -p sunstone-arch -p sunstone-mapping -p sunstone-model \
    -p sunstone -p sunstone-workloads -p sunstone-baselines -p sunstone-diannao \
    --all-targets -- -D warnings

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== doctests (core crate) =="
cargo test -q --doc -p sunstone

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p sunstone-ir -p sunstone-arch -p sunstone-mapping -p sunstone-model \
    -p sunstone -p sunstone-workloads -p sunstone-baselines -p sunstone-diannao

echo "CI OK"
