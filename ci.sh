#!/usr/bin/env bash
# CI gate: formatting, lints on the core crates, and the tier-1 command.
# Run from the repo root: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (core crates) =="
cargo clippy --release \
    -p sunstone-ir -p sunstone-arch -p sunstone-mapping -p sunstone-model \
    -p sunstone -p sunstone-workloads -p sunstone-baselines -p sunstone-diannao \
    -p sunstone-serve \
    --all-targets -- -D warnings

echo "== tier-1: build + test =="
cargo build --release
cargo test -q

echo "== doctests (core crate) =="
cargo test -q --doc -p sunstone

echo "== example smoke: constrained-vs-free template =="
# The example asserts the template can never beat the free optimum; a
# nonzero exit means the constraint layer leaked mappings out of the
# template's subspace.
cargo run --release --example constrained >/dev/null

echo "== fault injection: build + soak =="
# The failpoint harness only exists under this feature; the soak drives a
# panic through every registered failpoint and requires bit-identical
# recovery on the same session.
cargo clippy -p sunstone --features fault-injection --all-targets -- -D warnings
cargo test -q -p sunstone --features fault-injection --test fault_injection
# The serve-layer chaos soak: every serve failpoint (frame read, store
# append, fsync, compaction rename, handler spawn) cycled through panic
# and delay under eight concurrent clients, with fingerprint-checked
# responses, bounded joins, and restart-from-store after every cycle.
cargo clippy -p sunstone-serve --features fault-injection --all-targets -- -D warnings
cargo test -q -p sunstone-serve --features fault-injection --test fault_injection

echo "== release degenerate-input smoke =="
# Debug builds catch arithmetic overflow implicitly; the release profile
# wraps instead, so the no-panic grid must also hold there.
cargo test -q --release -p sunstone-repro --test robustness

echo "== bench smoke: criterion compile + quick schedule bench =="
cargo bench -p sunstone-bench --bench scheduler_speed -- --test
cargo run --release -p sunstone-bench --bin bench_schedule -- quick --out BENCH_schedule_quick.json
python3 - <<'EOF'
import json, os, sys
d = json.load(open("BENCH_schedule_quick.json"))
assert d.get("schema") == "sunstone-bench-schedule/v3", d.get("schema")
assert d.get("layers"), "no layers recorded"
for row in d["layers"]:
    for field in (
        "name", "cold_ms", "warm_median_ms", "best_edp",
        "probed", "modeled", "prefix_hit_rate", "seeds", "mapping_fp",
    ):
        assert field in row, f"missing {field} in {row.get('name', '?')}"
    assert row["warm_median_ms"] > 0, row["name"]
    assert row["modeled"] <= row["probed"], row["name"]
est = d.get("estimate", {})
for field in ("evals_per_sec", "batch_evals_per_sec", "batch_width"):
    assert field in est, f"missing estimate.{field}"
cache = d.get("cache", {})
for field in ("seed_probes", "seed_hits", "seed_hit_rate", "batches", "avg_batch_width"):
    assert field in cache, f"missing cache.{field}"
assert cache["seed_hits"] <= cache["seed_probes"], "seed hits exceed seeded searches"
# Hard gate: every quick layer's best mapping must be bit-identical to
# the committed baseline. A fingerprint divergence means an optimization
# changed search results, not just speed — fail, don't warn. Warm-start
# seeding in particular must be invisible here: it pre-prices the cache,
# it never re-ranks.
base = {r["name"]: r["mapping_fp"] for r in json.load(open("results/bench_baseline.json"))["layers"]}
diverged = [
    f"{r['name']}: {r['mapping_fp']} != {base[r['name']]}"
    for r in d["layers"]
    if r["name"] in base and r["mapping_fp"] != base[r["name"]]
]
assert not diverged, "mapping_fp diverged from results/bench_baseline.json:\n" + "\n".join(diverged)
checked = sum(1 for r in d["layers"] if r["name"] in base)
assert checked > 0, "no quick layer found in the baseline — gate is vacuous"
# Throughput gate: the raw evaluator must not quietly regress. Compare
# against the committed full-mode measurement; >15% below it fails.
# (Same-machine quick runs track the full run closely — the throughput
# loops are cache-free and fixed-size per eval.)
if os.path.exists("BENCH_schedule.json"):
    committed = json.load(open("BENCH_schedule.json"))
    ce = committed.get("estimate", {})
    for key in ("evals_per_sec", "batch_evals_per_sec"):
        if key in ce and key in est:
            floor = 0.85 * ce[key]
            assert est[key] >= floor, (
                f"estimate.{key} regressed >15%: {est[key]:.0f} < {floor:.0f}"
                f" (committed {ce[key]:.0f})"
            )
print(
    f"BENCH_schedule_quick.json OK ({len(d['layers'])} layers, {checked} fingerprints"
    f" match baseline, batch {est['batch_evals_per_sec']:.0f} evals/s)"
)
EOF
rm -f BENCH_schedule_quick.json

echo "== serve smoke: daemon + bench_serve + overload flood + restart warm-load =="
# Start a daemon on a scratch socket/store with a deliberately tiny
# connection cap, run the smoke bench against it (warm every layer, gate
# every served mapping_fp against the library path, measure the zipfian
# timed phase, then flood it with 64 simultaneous clients against the
# cap of 4), then restart the daemon on the same store and require the
# probe to be answered entirely from the warm-loaded cache. The smoke
# phases use 2 bench clients + 1 control connection, so the cap of 4
# only bites during the flood. The bench's --shutdown flag reaps each
# daemon.
SERVE_DIR="$(mktemp -d)"
SERVE_SOCK="$SERVE_DIR/sock"
cargo build --release -p sunstone-serve -p sunstone-bench --bin bench_serve
./target/release/sunstone-serve --socket "$SERVE_SOCK" --store "$SERVE_DIR/store" \
    --max-conns 4 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SERVE_DIR"' EXIT
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "daemon socket never appeared"; exit 1; }
./target/release/bench_serve --socket "$SERVE_SOCK" smoke --flood 64 \
    --out BENCH_serve_smoke.json --shutdown
wait "$SERVE_PID"
python3 - <<'EOF'
import json
d = json.load(open("BENCH_serve_smoke.json"))
assert d.get("schema") == "sunstone-bench-serve/v2", d.get("schema")
assert d.get("layers"), "no layers recorded"
for row in d["layers"]:
    for field in ("name", "source", "ctx_fp", "mapping_fp", "edp"):
        assert field in row, f"missing {field} in {row.get('name', '?')}"
    assert int(row["mapping_fp"]) > 0, row["name"]
lat = d.get("latency", {})
for field in ("p50_ms", "p99_ms", "mean_ms", "qps"):
    assert field in lat, f"missing latency.{field}"
# Hard gates: served mappings must be bit-identical to the library path,
# and warm-cache serving must clear the acceptance floor.
assert d["fp_mismatches"] == 0, f"{d['fp_mismatches']} served mappings diverged from the library"
assert d["hit_rate"] >= 0.99, f"warm-cache hit rate {d['hit_rate']} < 0.99"
assert lat["qps"] >= 1000, f"warm-cache qps {lat['qps']} < 1000"
assert lat["p99_ms"] < 50, f"warm-cache p99 {lat['p99_ms']} ms >= 50"
assert d["daemon"]["errors"] == 0, "daemon reported request errors"
# Overload gates: the flood must have shed (the cap actually bit), every
# response served *through* the overload must still be fingerprint-
# identical to the library, and once the burst subsides no handler may
# linger (post_flood_live counts connections beyond the control one).
ov = d.get("overload")
assert ov, "no overload block — the flood phase did not run"
assert ov["flood_clients"] == 64, ov["flood_clients"]
assert ov["fp_mismatches"] == 0, f"{ov['fp_mismatches']} flood responses diverged"
assert ov["shed"] > 0, "flood shed nothing — the connection cap never engaged"
assert ov["daemon_shed_connections"] > 0, "daemon counted no shed connections"
assert ov["post_flood_live"] == 0, f"{ov['post_flood_live']} connection(s) leaked after the flood"
assert ov["ok"] > 0, "no flood client was ever admitted"
print(
    f"BENCH_serve_smoke.json OK ({d['unique_layers']} layers, {lat['qps']:.0f} qps,"
    f" p99 {lat['p99_ms']:.2f} ms, 0 fingerprint mismatches;"
    f" flood: {ov['ok']} ok / {ov['shed']} shed / {ov['post_flood_live']} leaked)"
)
EOF
rm -f BENCH_serve_smoke.json
# Restart on the existing store: the first query for every repeated
# layer must be served from the warm-loaded store (source == "store",
# hit counted in cache_stats) — the probe exits nonzero otherwise.
./target/release/sunstone-serve --socket "$SERVE_SOCK" --store "$SERVE_DIR/store" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SERVE_DIR"' EXIT
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ] || { echo "restarted daemon socket never appeared"; exit 1; }
./target/release/bench_serve --socket "$SERVE_SOCK" probe --shutdown
wait "$SERVE_PID"
trap - EXIT
rm -rf "$SERVE_DIR"

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p sunstone-ir -p sunstone-arch -p sunstone-mapping -p sunstone-model \
    -p sunstone -p sunstone-workloads -p sunstone-baselines -p sunstone-diannao \
    -p sunstone-serve

echo "CI OK"
