#!/bin/sh
# Regenerates every table and figure; outputs under results/.
set -x
cargo run --release -p sunstone-bench --bin table1_space  > results/table1_space.txt 2>&1
cargo run --release -p sunstone-bench --bin table3_reuse  > results/table3_reuse.txt 2>&1
cargo run --release -p sunstone-bench --bin prune_stats   > results/prune_stats.txt 2>&1
cargo run --release -p sunstone-bench --bin fig9_overheads > results/fig9_overheads.txt 2>&1
cargo run --release -p sunstone-bench --bin table6_order  > results/table6_order.txt 2>&1
cargo run --release -p sunstone-bench --bin fig8_resnet_simba > results/fig8_resnet_simba.txt 2>&1
cargo run --release -p sunstone-bench --bin fig7_inception > results/fig7_inception.txt 2>&1
cargo run --release -p sunstone-bench --bin fig6_nondnn   > results/fig6_nondnn.txt 2>&1
cargo run --release -p sunstone-bench --bin ablation      > results/ablation.txt 2>&1
cargo run --release -p sunstone-bench --bin related_work  > results/related_work.txt 2>&1
cargo run --release -p sunstone-bench --bin network_chain > results/network_chain.txt 2>&1
cargo run --release -p sunstone-bench --bin padding_study > results/padding_study.txt 2>&1
cargo run --release -p sunstone-bench --bin arch_sweep    > results/arch_sweep.txt 2>&1
echo ALL_EXPERIMENTS_DONE
