//! Scheduling a DNN onto a modern multi-level accelerator: ResNet-18 on
//! the Simba-like machine (three spatial levels, four memory levels),
//! with a CoSA-style one-shot baseline for comparison.
//!
//! Run with `cargo run --release --example resnet_simba`.

use sunstone_arch::presets;
use sunstone_baselines::{CosaMapper, Mapper, SunstoneMapper};
use sunstone_workloads::{resnet18_layers, Precision};

fn main() {
    let arch = presets::simba_like();
    let sunstone = SunstoneMapper::default();
    let cosa = CosaMapper::new();

    println!("ResNet-18 (batch 4) on `{arch}`\n");
    println!("{:<10} {:>14} {:>14} {:>10}", "layer", "Sunstone EDP", "CoSA EDP", "CoSA");
    for layer in resnet18_layers(4) {
        let w = layer.inference(Precision::simba());
        let ours = sunstone.map(&w, &arch);
        let theirs = cosa.map(&w, &arch);
        println!(
            "{:<10} {:>14} {:>14} {:>10}",
            layer.name,
            ours.edp().map(|e| format!("{e:.3e}")).unwrap_or_else(|| "-".into()),
            theirs.edp().map(|e| format!("{e:.3e}")).unwrap_or_else(|| "-".into()),
            if theirs.is_valid() { "valid" } else { "INVALID" },
        );
    }
    println!(
        "\nCoSA's log-linear relaxation drops sliding-window halos, so many of\n\
         its tiles overflow the real buffers — the Fig 8 invalid-mapping story."
    );
}
