//! Building a custom accelerator description and scheduling onto it.
//!
//! The architecture below is a small edge-inference design: an 8×8 PE
//! grid where each PE has a 1 KB unified scratchpad, a 256 KB shared
//! buffer that weights bypass, and DRAM.
//!
//! Run with `cargo run --release --example custom_accelerator`.

use sunstone::{Scheduler, SunstoneConfig};
use sunstone_arch::{
    ArchSpec, BufferPartition, Capacity, Level, MemoryLevel, NocModel, SpatialLevel, TensorFilter,
};
use sunstone_workloads::{ConvSpec, Precision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchSpec::new(
        "edge-npu",
        vec![
            Level::Memory(MemoryLevel::unified(
                "spad",
                BufferPartition::new("spad", TensorFilter::Any, Capacity::Bytes(1 << 10), 0.9, 0.9)
                    .with_bandwidth(2.0, 2.0),
            )),
            Level::Spatial(
                SpatialLevel::new("grid", 64)
                    .with_noc(NocModel { multicast: true, per_word_energy_pj: 1.0 }),
            ),
            Level::Memory(
                MemoryLevel::unified(
                    "shared",
                    BufferPartition::new(
                        "shared",
                        TensorFilter::Any,
                        Capacity::Bytes(256 << 10),
                        5.0,
                        5.0,
                    )
                    .with_bandwidth(16.0, 16.0),
                )
                // Weights stream from DRAM straight into the PE
                // scratchpads, Simba-style.
                .with_bypass(TensorFilter::Named(vec!["weight".into()])),
            ),
            Level::Memory(MemoryLevel::unified(
                "DRAM",
                BufferPartition::new("dram", TensorFilter::Any, Capacity::Unbounded, 200.0, 200.0)
                    .with_bandwidth(8.0, 8.0),
            )),
        ],
        1.0,
        16,
    );
    arch.validate()?;

    let layer = ConvSpec::new("mbnet_conv", 1, 32, 32, 28, 28, 3, 3, 1);
    let workload = layer.inference(Precision::conventional());

    let result = Scheduler::new(SunstoneConfig::default()).schedule(&workload, &arch)?;
    println!("architecture : {arch}");
    println!("layer        : {} ({} MACs)", layer.name, layer.macs());
    println!("mapping      : {}", result.mapping);
    println!("EDP          : {:.3e} pJ·cycles", result.report.edp);
    println!(
        "bound        : {}",
        if result.report.is_bandwidth_bound() { "bandwidth" } else { "compute" }
    );
    for level in &result.report.levels {
        println!(
            "  {:<7} reads {:>12.3e}  writes {:>12.3e}  energy {:>12.3e} pJ",
            level.name, level.reads, level.writes, level.energy_pj
        );
    }
    Ok(())
}
