//! Quickstart: describe a tensor workload, pick an accelerator, schedule.
//!
//! Run with `cargo run --release --example quickstart`.

use sunstone::prelude::*;
use sunstone_arch::presets;
use sunstone_ir::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the workload: a 64×64×64 matrix multiplication
    //    out[m,n] = Σ_k a[m,k] × b[k,n].
    let mut b = Workload::builder("matmul");
    let m = b.dim("M", 64);
    let n = b.dim("N", 64);
    let k = b.dim("K", 64);
    b.input("a", [m.expr(), k.expr()]);
    b.input("b", [k.expr(), n.expr()]);
    b.output("out", [m.expr(), n.expr()]);
    let workload = b.build()?;

    // 2. Pick an accelerator: the paper's conventional Eyeriss-like
    //    machine (32×32 PEs, 512 B L1, 3.1 MB L2).
    let arch = presets::conventional();

    // 3. Open a scheduling session and schedule. The session owns a
    //    cross-call estimate cache, so follow-up calls on similar shapes
    //    get cheaper; `SunstoneConfig::builder()` validates knobs up front.
    let session = Scheduler::new(SunstoneConfig::builder().build()?);
    let result = session.schedule(&workload, &arch)?;

    println!("workload     : {workload}");
    println!("architecture : {arch}");
    println!("mapping      : {}", result.mapping);
    println!("energy       : {:.3e} pJ", result.report.energy_pj);
    println!("delay        : {:.3e} cycles", result.report.delay_cycles);
    println!("EDP          : {:.3e} pJ·cycles", result.report.edp);
    println!("parallelism  : {} PEs busy", result.mapping.used_parallelism());
    println!(
        "search       : {} mappings evaluated in {:?}",
        result.stats.probed, result.stats.elapsed
    );
    println!("\nPer-level breakdown:");
    for level in &result.report.levels {
        println!(
            "  {:<6} reads {:>12.3e}  writes {:>12.3e}  energy {:>12.3e} pJ",
            level.name, level.reads, level.writes, level.energy_pj
        );
    }
    Ok(())
}
