//! Describing workloads as einsum text — the declarative front end of the
//! paper's Section IV — and scheduling them in a few lines.
//!
//! Run with `cargo run --release --example einsum`.

use sunstone::{Scheduler, SunstoneConfig};
use sunstone_arch::presets;
use sunstone_ir::parse_einsum;
use sunstone_mapping::pretty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = presets::conventional();
    let scheduler = Scheduler::new(SunstoneConfig::default());

    let statements: Vec<(&str, Vec<(&str, u64)>)> = vec![
        (
            // Stride-2 1-D convolution with a sliding window.
            "ofmap[k, p] = ifmap[c, 2p + r] * weight[k, c, r]",
            vec![("k", 64), ("c", 64), ("p", 56), ("r", 3)],
        ),
        (
            // MTTKRP straight out of Table II.
            "out[i, j] = A[i, k, l] * B[k, j] * C[l, j]",
            vec![("i", 3072), ("j", 32), ("k", 3072), ("l", 3072)],
        ),
        (
            // A 4-input tensor contraction layer.
            "out[l, m, n] = A[i, j, k] * B[i, l] * C[j, m] * D[k, n]",
            vec![("i", 256), ("j", 8), ("k", 8), ("l", 64), ("m", 4), ("n", 4)],
        ),
    ];

    for (stmt, bounds) in statements {
        let workload = parse_einsum(stmt, &bounds)?;
        let result = scheduler.schedule(&workload, &arch)?;
        println!("── {stmt}");
        println!(
            "   EDP {:.3e}  energy {:.3e} pJ  delay {:.3e} cyc  ({} candidates in {:?})",
            result.report.edp,
            result.report.energy_pj,
            result.report.delay_cycles,
            result.stats.probed,
            result.stats.elapsed
        );
        print!("{}", indent(&pretty::render(&result.mapping, &workload, &arch)));
        println!();
    }
    Ok(())
}

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("   {l}\n")).collect()
}
