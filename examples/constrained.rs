//! Constraining the mapping space: schedule one convolution on the
//! Simba-like accelerator twice — once free, once under the C-K
//! weight-stationary dataflow template — and compare the results.
//!
//! A template is just a named [`MappingConstraints`] recipe: the
//! weight-stationary preset restricts every spatial fabric to unrolling
//! the weight-indexing dimensions C and K, so weights stay pinned to
//! their PEs while inputs and partials stream. The constrained search
//! explores a strict subset of the free space, so its EDP can only be
//! equal or worse — the printed delta is the price of the dataflow.
//!
//! Run with `cargo run --release --example constrained`.

use sunstone::prelude::*;
use sunstone_arch::presets;
use sunstone_ir::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-network ResNet-style convolution: 3×3, 128 in / 128 out
    // channels on a 14×14 feature map.
    let mut b = Workload::builder("conv3x3");
    let k = b.dim("K", 128);
    let c = b.dim("C", 128);
    let p = b.dim("P", 14);
    let q = b.dim("Q", 14);
    let r = b.dim("R", 3);
    let s = b.dim("S", 3);
    b.input("ifmap", [c.expr(), p.expr() + r.expr(), q.expr() + s.expr()]);
    b.input("weight", [k.expr(), c.expr(), r.expr(), s.expr()]);
    b.output("ofmap", [k.expr(), p.expr(), q.expr()]);
    let workload = b.build()?;

    let arch = presets::simba_like();
    let session = Scheduler::new(SunstoneConfig::default());

    // Free search: the scheduler may unroll and order anything.
    let free = session.schedule(&workload, &arch)?;

    // Constrained search: the same session, same cache, but every fabric
    // may only unroll C and K. Templates expand to plain constraints, so
    // `DataflowTemplate::WeightStationaryCK.constraints(&arch)` and a
    // hand-built `MappingConstraints` behave identically.
    let ws = DataflowTemplate::WeightStationaryCK.constraints(&arch);
    let opts = ScheduleOptions::new().constraints(ws);
    let constrained = session.schedule_with(&workload, &arch, &opts)?.into_results().remove(0);

    println!("workload          : {workload}");
    println!("architecture      : {arch}");
    println!("\nfree search");
    println!("  mapping         : {}", free.mapping);
    println!("  EDP             : {:.3e} pJ·cycles", free.report.edp);
    println!("\nweight-stationary (C-K) template");
    println!("  mapping         : {}", constrained.mapping);
    println!("  EDP             : {:.3e} pJ·cycles", constrained.report.edp);

    let filter = constrained.stats.total_of(|l| l.constraint);
    let delta = constrained.report.edp / free.report.edp;
    println!("\nEDP price of the dataflow: {delta:.3}x the free optimum");
    println!(
        "constraint filter: {} candidates considered, {} kept ({:.1}% of the space removed)",
        filter.considered,
        filter.kept,
        100.0 * filter.pruned_fraction()
    );
    assert!(
        constrained.report.edp >= free.report.edp,
        "a constrained search can never beat the free optimum"
    );
    Ok(())
}
