//! Versatility: scheduling the non-DNN tensor kernels of Table II —
//! MTTKRP (CP decomposition), TTMc (Tucker decomposition), SDDMM
//! (alternating least squares), MMc (attention), and TCL — with the same
//! scheduler and zero workload-specific code.
//!
//! Run with `cargo run --release --example tensor_decomposition`.

use sunstone::{Scheduler, SunstoneConfig};
use sunstone_arch::presets;
use sunstone_workloads::tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = presets::conventional();
    let scheduler = Scheduler::new(SunstoneConfig::default());

    let workloads = vec![
        ("MTTKRP on nell-2 (rank 32)", tensor::mttkrp(tensor::NELL2, 32)),
        ("TTMc on poisson1 (rank 8)", tensor::ttmc(tensor::POISSON1, 8)),
        ("SDDMM on bcsstk17 (rank 512)", tensor::sddmm(tensor::BCSSTK17, 512)),
        ("MMc (attention head)", tensor::attention_mmc()),
        ("TCL (AlexNet final)", tensor::alexnet_tcl()),
    ];

    println!("{:<30} {:>12} {:>14} {:>10} {:>10}", "kernel", "EDP", "energy (pJ)", "PEs", "time");
    for (name, w) in workloads {
        // The reuse pattern is inferred automatically from the algebra:
        let reuse = w.reuse_info();
        let reuse_dims = reuse.reuse_dims().len();
        let result = scheduler.schedule(&w, &arch)?;
        println!(
            "{:<30} {:>12.3e} {:>14.3e} {:>10} {:>8.0?}   ({} of {} dims give reuse)",
            name,
            result.report.edp,
            result.report.energy_pj,
            result.mapping.used_parallelism(),
            result.stats.elapsed,
            reuse_dims,
            w.num_dims(),
        );
    }
    Ok(())
}
