//! Offline stand-in for the real `rand` crate.
//!
//! Implements exactly the subset this workspace uses — a seeded
//! deterministic generator (`rngs::StdRng` via `SeedableRng::seed_from_u64`)
//! with `Rng::gen_range` over integer ranges and `Rng::gen_bool` — on top
//! of xoshiro256\*\* seeded by SplitMix64. The baselines only need
//! reproducible, reasonably-mixed randomness, not the real crate's
//! distribution guarantees.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly mixed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (modulo-bias tolerated: the
    /// callers are randomized search baselines, not statistics).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (stand-in for the real
    /// `StdRng`; same trait surface, different — but still seeded and
    /// reproducible — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
