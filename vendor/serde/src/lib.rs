//! Offline stand-in for the real `serde` crate.
//!
//! The workspace uses serde purely as an annotation
//! (`#[derive(Serialize, Deserialize)]` on config/result types) and never
//! actually serializes, so this stub provides marker traits and re-exports
//! the no-op derives from the sibling `serde_derive` stub. This keeps
//! builds fully offline; replacing it with the real serde is a one-line
//! change in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
