//! Offline stand-in for the real `serde_derive` crate.
//!
//! This workspace only uses `#[derive(Serialize, Deserialize)]` as an
//! annotation — no code path serializes anything — so the derives expand
//! to an empty token stream. The build stays fully self-contained (no
//! network access required), and swapping the real serde back in is a
//! one-line change in the workspace `Cargo.toml`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
