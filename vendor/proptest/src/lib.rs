//! Offline stand-in for the real `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn name(x in strategy) {..} }`
//! * `prop_compose!` for building derived strategies,
//! * integer-range strategies (`1u8..5`, `0usize..4`, `0u64..1000`, …),
//! * `prop_assert!` / `prop_assert_eq!` (forwarded to `assert!`).
//!
//! Instead of shrinking and adaptive generation, each test runs
//! `ProptestConfig::cases` deterministic samples from a seed derived from
//! the test name — reproducible across runs and thread counts. That keeps
//! the property suites executable in a fully offline build; swapping the
//! real proptest back in is a one-line change in the workspace
//! `Cargo.toml`.

use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Creates a generator seeded from a test name (FNV-1a), so every
    /// property gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy built from a sampling closure (what `prop_compose!` expands
/// to).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a sampling closure as a [`Strategy`].
pub fn strategy_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// The glob-import surface used by the tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition (panics, as in a plain test).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the assumption fails (stand-in: the case
/// simply passes — adequate for the filters this workspace uses).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Builds a named strategy from component strategies (subset of the real
/// `prop_compose!`).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($outer:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $out> {
            $crate::strategy_fn(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    prop_compose! {
        fn small_pair()(a in 1u8..5, b in 0usize..3) -> (u8, usize) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 1u8..5, y in 0u64..1000) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn composed_strategy_samples(p in small_pair()) {
            prop_assert!(p.0 >= 1 && p.0 < 5);
            prop_assert!(p.1 < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
