//! Offline stand-in for the real `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `criterion_group!`
//! / `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter` — with a simple
//! median-of-samples wall-clock measurement printed to stdout. No
//! statistics engine, HTML reports, or CLI; good enough to keep the bench
//! targets compiling and producing comparable numbers offline.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs the timed closure and records samples.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f` over `target_samples` runs (after one warm-up).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        black_box(f()); // warm-up
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("{}/{}", self.name, id), samples, &mut |b| f(b, input));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("{}/{}", self.name, name), samples, &mut f);
        self
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::with_capacity(samples), target_samples: samples };
    f(&mut bencher);
    println!("bench {name:<48} median {:>12.3?} ({samples} samples)", bencher.median());
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
