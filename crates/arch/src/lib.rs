//! Spatial-accelerator architecture descriptions for the Sunstone scheduler.
//!
//! An accelerator is modelled as an ordered list of [`Level`]s, *innermost*
//! (closest to the MACs) first:
//!
//! * [`MemoryLevel`] — a storage level with one or more
//!   [`BufferPartition`]s (unified or per-datatype buffers), per-access
//!   energies, and bandwidths;
//! * [`SpatialLevel`] — a parallel-processing fan-out (a PE grid, a row of
//!   vector MACs, or SIMD lanes) with an interconnect model.
//!
//! The outermost level is always an unbounded memory (DRAM). Tensors are
//! *bound* to partitions by [`Binding::resolve`]; a tensor matched by a
//! level's bypass list skips that level entirely (e.g. weights bypass the
//! Simba L2 and stream from DRAM into the PE weight buffers).
//!
//! The [`presets`] module provides the paper's Table IV configurations
//! (Simba-like and conventional Eyeriss-like) plus the DianNao-like machine
//! used in the Section V-D overhead study.
//!
//! # Example
//!
//! ```
//! use sunstone_arch::presets;
//!
//! let simba = presets::simba_like();
//! assert_eq!(simba.total_spatial_units(), 8 * 8 * 16);
//! simba.validate().expect("presets are valid");
//! ```

mod binding;
mod builder;
mod level;
mod presets_mod;
mod spec;

pub use binding::{Binding, BindingError};
pub use builder::ArchBuilder;
pub use level::{
    BufferPartition, Capacity, Level, MemoryLevel, NocModel, PartitionId, SpatialLevel,
    TensorFilter,
};
pub use spec::{ArchError, ArchSpec, LevelId};

/// Ready-made accelerator configurations from the paper.
pub mod presets {
    pub use crate::presets_mod::{conventional, diannao_like, eyeriss_like, simba_like};
}
