//! Memory and spatial levels.

use std::fmt;

use serde::{Deserialize, Serialize};
use sunstone_ir::{TensorDesc, TensorKind};

/// Identifier of a buffer partition within one [`MemoryLevel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub usize);

/// Storage capacity of a buffer partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Capacity {
    /// Unlimited capacity (off-chip DRAM).
    Unbounded,
    /// A fixed number of bytes.
    Bytes(u64),
}

impl Capacity {
    /// Returns `true` if `bytes` fits in this capacity.
    pub fn fits(self, bytes: u64) -> bool {
        match self {
            Capacity::Unbounded => true,
            Capacity::Bytes(b) => bytes <= b,
        }
    }

    /// The byte limit, or `None` when unbounded.
    pub fn bytes(self) -> Option<u64> {
        match self {
            Capacity::Unbounded => None,
            Capacity::Bytes(b) => Some(b),
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Unbounded => write!(f, "∞"),
            Capacity::Bytes(b) => write!(f, "{b}B"),
        }
    }
}

/// Selects which workload tensors a buffer partition (or a bypass rule)
/// applies to.
///
/// Matching is by tensor *role* or by name, so architecture presets can be
/// written once and reused across workloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TensorFilter {
    /// Matches every tensor.
    Any,
    /// Matches the workload's output tensor.
    Output,
    /// Matches every input tensor.
    Inputs,
    /// Matches every input tensor except those with one of the given names.
    InputsExcept(Vec<String>),
    /// Matches tensors with one of the given names (exact match).
    Named(Vec<String>),
}

impl TensorFilter {
    /// Returns `true` if the filter matches the given tensor.
    pub fn matches(&self, t: &TensorDesc) -> bool {
        match self {
            TensorFilter::Any => true,
            TensorFilter::Output => t.kind() == TensorKind::Output,
            TensorFilter::Inputs => t.kind() == TensorKind::Input,
            TensorFilter::InputsExcept(names) => {
                t.kind() == TensorKind::Input && !names.iter().any(|n| n == t.name())
            }
            TensorFilter::Named(names) => names.iter().any(|n| n == t.name()),
        }
    }
}

/// One buffer within a [`MemoryLevel`] — e.g. the Simba PE's separate
/// weight, ifmap, and ofmap buffers, or a single unified scratchpad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferPartition {
    /// Human-readable name, e.g. `"weight_buf"`.
    pub name: String,
    /// Which tensors may be stored here. Partitions are consulted in
    /// declaration order; the first match wins.
    pub filter: TensorFilter,
    /// Storage capacity.
    pub capacity: Capacity,
    /// Energy per read of one reference-width word, in pJ.
    pub read_energy_pj: f64,
    /// Energy per write of one reference-width word, in pJ.
    pub write_energy_pj: f64,
    /// Read bandwidth toward the level below, in words/cycle
    /// (`None` = unconstrained).
    pub read_bw: Option<f64>,
    /// Write bandwidth from the level below, in words/cycle
    /// (`None` = unconstrained).
    pub write_bw: Option<f64>,
}

impl BufferPartition {
    /// Creates a partition with unconstrained bandwidth.
    pub fn new(
        name: impl Into<String>,
        filter: TensorFilter,
        capacity: Capacity,
        read_energy_pj: f64,
        write_energy_pj: f64,
    ) -> Self {
        BufferPartition {
            name: name.into(),
            filter,
            capacity,
            read_energy_pj,
            write_energy_pj,
            read_bw: None,
            write_bw: None,
        }
    }

    /// Sets read/write bandwidth in words per cycle (builder style).
    #[must_use]
    pub fn with_bandwidth(mut self, read_bw: f64, write_bw: f64) -> Self {
        self.read_bw = Some(read_bw);
        self.write_bw = Some(write_bw);
        self
    }
}

/// A memory level: one or more buffer partitions plus a bypass list.
///
/// Tensors matched by `bypass` skip this level entirely — their data moves
/// directly between the adjacent levels (Timeloop's "bypass" directive).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLevel {
    /// Level name, e.g. `"L1"` or `"DRAM"`.
    pub name: String,
    /// Tensors that skip this level.
    pub bypass: Vec<TensorFilter>,
    /// Buffer partitions, consulted in order during binding.
    pub partitions: Vec<BufferPartition>,
}

impl MemoryLevel {
    /// Creates a memory level with a single unified partition and no bypass.
    pub fn unified(name: impl Into<String>, partition: BufferPartition) -> Self {
        MemoryLevel { name: name.into(), bypass: Vec::new(), partitions: vec![partition] }
    }

    /// Creates a memory level with the given partitions and no bypass.
    pub fn partitioned(name: impl Into<String>, partitions: Vec<BufferPartition>) -> Self {
        MemoryLevel { name: name.into(), bypass: Vec::new(), partitions }
    }

    /// Adds a bypass rule (builder style).
    #[must_use]
    pub fn with_bypass(mut self, filter: TensorFilter) -> Self {
        self.bypass.push(filter);
        self
    }

    /// Returns `true` if the given tensor bypasses this level.
    pub fn bypasses(&self, t: &TensorDesc) -> bool {
        self.bypass.iter().any(|f| f.matches(t))
    }

    /// Finds the partition that stores the given tensor, or `None` if it is
    /// bypassed or unmatched.
    pub fn partition_for(&self, t: &TensorDesc) -> Option<PartitionId> {
        if self.bypasses(t) {
            return None;
        }
        self.partitions.iter().position(|p| p.filter.matches(t)).map(PartitionId)
    }

    /// Looks up a partition by id.
    pub fn partition(&self, id: PartitionId) -> &BufferPartition {
        &self.partitions[id.0]
    }

    /// Returns `true` if every partition is unbounded (i.e. this is DRAM).
    pub fn is_unbounded(&self) -> bool {
        self.partitions.iter().all(|p| p.capacity == Capacity::Unbounded)
    }
}

/// Interconnect model for a spatial level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    /// Whether a word needed by several units can be broadcast (counted
    /// once at the source). The paper models an Eyeriss-style interleaved
    /// multicast NoC with X/Y destination tags.
    pub multicast: bool,
    /// Energy to deliver one reference-width word to one receiving unit,
    /// in pJ (covers the destination-tag check hardware of Section V-A).
    pub per_word_energy_pj: f64,
}

impl NocModel {
    /// An idealized zero-energy interconnect with multicast.
    pub fn ideal() -> Self {
        NocModel { multicast: true, per_word_energy_pj: 0.0 }
    }
}

/// A spatial (parallel-processing) level: `units` identical children below
/// one instance of the level above.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialLevel {
    /// Level name, e.g. `"pe_grid"` or `"vector"`.
    pub name: String,
    /// Number of parallel units (e.g. 16 for a 4×4 PE grid).
    pub units: u64,
    /// Interconnect model between the memory above and the units.
    pub noc: NocModel,
    /// Whether partial outputs may be reduced *across* units (inter-PE
    /// ofmap accumulation). When `false`, unrolling a reduction dimension
    /// here is an invalid mapping.
    pub allow_reduction: bool,
}

impl SpatialLevel {
    /// Creates a spatial level with an ideal NoC and reduction allowed.
    pub fn new(name: impl Into<String>, units: u64) -> Self {
        SpatialLevel { name: name.into(), units, noc: NocModel::ideal(), allow_reduction: true }
    }

    /// Sets the NoC model (builder style).
    #[must_use]
    pub fn with_noc(mut self, noc: NocModel) -> Self {
        self.noc = noc;
        self
    }

    /// Forbids spatial reduction across this level (builder style).
    #[must_use]
    pub fn without_reduction(mut self) -> Self {
        self.allow_reduction = false;
        self
    }
}

/// One level of the accelerator hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Level {
    /// A storage level.
    Memory(MemoryLevel),
    /// A parallel fan-out level.
    Spatial(SpatialLevel),
}

impl Level {
    /// The level's name.
    pub fn name(&self) -> &str {
        match self {
            Level::Memory(m) => &m.name,
            Level::Spatial(s) => &s.name,
        }
    }

    /// Returns the memory level, if this is one.
    pub fn as_memory(&self) -> Option<&MemoryLevel> {
        match self {
            Level::Memory(m) => Some(m),
            Level::Spatial(_) => None,
        }
    }

    /// Returns the spatial level, if this is one.
    pub fn as_spatial(&self) -> Option<&SpatialLevel> {
        match self {
            Level::Memory(_) => None,
            Level::Spatial(s) => Some(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_ir::Workload;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 7);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn capacity_fits() {
        assert!(Capacity::Unbounded.fits(u64::MAX));
        assert!(Capacity::Bytes(100).fits(100));
        assert!(!Capacity::Bytes(100).fits(101));
        assert_eq!(Capacity::Bytes(64).bytes(), Some(64));
        assert_eq!(Capacity::Unbounded.bytes(), None);
    }

    #[test]
    fn filters_match_by_role_and_name() {
        let w = conv1d();
        let ofmap = w.tensor(w.tensor_by_name("ofmap").unwrap());
        let weight = w.tensor(w.tensor_by_name("weight").unwrap());
        assert!(TensorFilter::Any.matches(ofmap));
        assert!(TensorFilter::Output.matches(ofmap));
        assert!(!TensorFilter::Output.matches(weight));
        assert!(TensorFilter::Inputs.matches(weight));
        assert!(TensorFilter::Named(vec!["weight".into()]).matches(weight));
        assert!(!TensorFilter::Named(vec!["weight".into()]).matches(ofmap));
    }

    #[test]
    fn first_matching_partition_wins() {
        let w = conv1d();
        let weight = w.tensor(w.tensor_by_name("weight").unwrap());
        let ifmap = w.tensor(w.tensor_by_name("ifmap").unwrap());
        let level = MemoryLevel::partitioned(
            "L1",
            vec![
                BufferPartition::new(
                    "wbuf",
                    TensorFilter::Named(vec!["weight".into()]),
                    Capacity::Bytes(32 << 10),
                    1.0,
                    1.0,
                ),
                BufferPartition::new(
                    "ibuf",
                    TensorFilter::Inputs,
                    Capacity::Bytes(8 << 10),
                    1.0,
                    1.0,
                ),
            ],
        );
        assert_eq!(level.partition_for(weight), Some(PartitionId(0)));
        assert_eq!(level.partition_for(ifmap), Some(PartitionId(1)));
    }

    #[test]
    fn bypass_hides_partitions() {
        let w = conv1d();
        let weight = w.tensor(w.tensor_by_name("weight").unwrap());
        let level = MemoryLevel::unified(
            "L2",
            BufferPartition::new("buf", TensorFilter::Any, Capacity::Bytes(512 << 10), 1.0, 1.0),
        )
        .with_bypass(TensorFilter::Named(vec!["weight".into()]));
        assert!(level.bypasses(weight));
        assert_eq!(level.partition_for(weight), None);
    }

    #[test]
    fn unbounded_detection() {
        let dram = MemoryLevel::unified(
            "DRAM",
            BufferPartition::new("dram", TensorFilter::Any, Capacity::Unbounded, 200.0, 200.0),
        );
        assert!(dram.is_unbounded());
        let l1 = MemoryLevel::unified(
            "L1",
            BufferPartition::new("l1", TensorFilter::Any, Capacity::Bytes(512), 1.0, 1.0),
        );
        assert!(!l1.is_unbounded());
    }

    #[test]
    fn level_accessors() {
        let m = Level::Memory(MemoryLevel::unified(
            "L1",
            BufferPartition::new("l1", TensorFilter::Any, Capacity::Bytes(512), 1.0, 1.0),
        ));
        let s = Level::Spatial(SpatialLevel::new("grid", 16));
        assert_eq!(m.name(), "L1");
        assert_eq!(s.name(), "grid");
        assert!(m.as_memory().is_some() && m.as_spatial().is_none());
        assert!(s.as_spatial().is_some() && s.as_memory().is_none());
    }

    #[test]
    fn spatial_builder_flags() {
        let s = SpatialLevel::new("grid", 16)
            .with_noc(NocModel { multicast: false, per_word_energy_pj: 2.0 })
            .without_reduction();
        assert!(!s.allow_reduction);
        assert!(!s.noc.multicast);
        assert_eq!(s.units, 16);
    }
}
