//! Fluent construction of accelerator specifications.

use crate::{
    ArchError, ArchSpec, BufferPartition, Capacity, Level, MemoryLevel, NocModel, SpatialLevel,
    TensorFilter,
};

/// Builds an [`ArchSpec`] level by level, innermost first.
///
/// # Examples
///
/// ```
/// use sunstone_arch::ArchBuilder;
///
/// let arch = ArchBuilder::new("edge-npu")
///     .unified_memory("spad", 1 << 10, 0.9, 0.9)
///     .spatial("grid", 64)
///     .unified_memory("shared", 256 << 10, 5.0, 5.0)
///     .dram(200.0)
///     .mac_energy(1.0)
///     .build()?;
/// assert_eq!(arch.total_spatial_units(), 64);
/// # Ok::<(), sunstone_arch::ArchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArchBuilder {
    name: String,
    levels: Vec<Level>,
    mac_energy_pj: f64,
    ref_bits: u32,
    /// Whether [`bypass`](Self::bypass) was called while no memory level
    /// was open; recorded here and surfaced as a typed error by
    /// [`build`](Self::build) so the fluent API stays panic-free.
    misplaced_bypass: bool,
}

impl ArchBuilder {
    /// Starts a new accelerator description.
    pub fn new(name: impl Into<String>) -> Self {
        ArchBuilder {
            name: name.into(),
            levels: Vec::new(),
            mac_energy_pj: 1.0,
            ref_bits: 16,
            misplaced_bypass: false,
        }
    }

    /// Appends a memory level with a single unified buffer.
    #[must_use]
    pub fn unified_memory(
        mut self,
        name: &str,
        bytes: u64,
        read_energy_pj: f64,
        write_energy_pj: f64,
    ) -> Self {
        self.levels.push(Level::Memory(MemoryLevel::unified(
            name,
            BufferPartition::new(
                name,
                TensorFilter::Any,
                Capacity::Bytes(bytes),
                read_energy_pj,
                write_energy_pj,
            ),
        )));
        self
    }

    /// Appends a memory level with explicit partitions.
    #[must_use]
    pub fn partitioned_memory(mut self, name: &str, partitions: Vec<BufferPartition>) -> Self {
        self.levels.push(Level::Memory(MemoryLevel::partitioned(name, partitions)));
        self
    }

    /// Appends a raw, fully customized level.
    #[must_use]
    pub fn level(mut self, level: Level) -> Self {
        self.levels.push(level);
        self
    }

    /// Adds a bypass rule to the most recently added memory level.
    ///
    /// Calling this when the last level is not a memory is a construction
    /// error reported by [`build`](Self::build) as
    /// [`ArchError::MisplacedBypass`]; the builder itself never panics.
    #[must_use]
    pub fn bypass(mut self, filter: TensorFilter) -> Self {
        match self.levels.last_mut() {
            Some(Level::Memory(m)) => m.bypass.push(filter),
            _ => self.misplaced_bypass = true,
        }
        self
    }

    /// Appends a spatial fan-out level with an ideal multicast NoC.
    #[must_use]
    pub fn spatial(mut self, name: &str, units: u64) -> Self {
        self.levels.push(Level::Spatial(SpatialLevel::new(name, units)));
        self
    }

    /// Appends a spatial level with an explicit NoC model.
    #[must_use]
    pub fn spatial_with_noc(mut self, name: &str, units: u64, noc: NocModel) -> Self {
        self.levels.push(Level::Spatial(SpatialLevel::new(name, units).with_noc(noc)));
        self
    }

    /// Appends the unbounded off-chip memory (required, outermost).
    #[must_use]
    pub fn dram(mut self, access_energy_pj: f64) -> Self {
        self.levels.push(Level::Memory(MemoryLevel::unified(
            "DRAM",
            BufferPartition::new(
                "dram",
                TensorFilter::Any,
                Capacity::Unbounded,
                access_energy_pj,
                access_energy_pj,
            ),
        )));
        self
    }

    /// Sets the per-MAC energy in pJ (default 1.0).
    #[must_use]
    pub fn mac_energy(mut self, pj: f64) -> Self {
        self.mac_energy_pj = pj;
        self
    }

    /// Sets the reference word width for energy scaling (default 16).
    #[must_use]
    pub fn ref_bits(mut self, bits: u32) -> Self {
        self.ref_bits = bits;
        self
    }

    /// Validates and finalizes the specification.
    ///
    /// # Errors
    ///
    /// Reports **every** structural violation (see [`ArchError`]): a
    /// single one directly, several wrapped in [`ArchError::Multiple`].
    /// A misplaced [`bypass`](Self::bypass) recorded during construction
    /// is merged into the same report.
    pub fn build(self) -> Result<ArchSpec, ArchError> {
        let spec = ArchSpec::new(self.name, self.levels, self.mac_energy_pj, self.ref_bits);
        let mut errors: Vec<ArchError> = Vec::new();
        if self.misplaced_bypass {
            errors.push(ArchError::MisplacedBypass);
        }
        match spec.validate() {
            Ok(()) => {}
            Err(ArchError::Multiple(more)) => errors.extend(more),
            Err(e) => errors.push(e),
        }
        match errors.len() {
            0 => Ok(spec),
            1 => Err(errors.remove(0)),
            _ => Err(ArchError::Multiple(errors)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_three_level_machine() {
        let arch = ArchBuilder::new("test")
            .unified_memory("L1", 512, 1.0, 1.0)
            .spatial("grid", 16)
            .unified_memory("L2", 1 << 20, 6.0, 6.0)
            .dram(200.0)
            .mac_energy(0.5)
            .ref_bits(8)
            .build()
            .unwrap();
        assert_eq!(arch.num_memory_levels(), 3);
        assert_eq!(arch.mac_energy_pj(), 0.5);
        assert_eq!(arch.ref_bits(), 8);
    }

    #[test]
    fn bypass_attaches_to_the_last_memory() {
        let arch = ArchBuilder::new("bypass")
            .unified_memory("L1", 512, 1.0, 1.0)
            .unified_memory("L2", 1 << 20, 6.0, 6.0)
            .bypass(TensorFilter::Named(vec!["weight".into()]))
            .dram(200.0)
            .build()
            .unwrap();
        let l2 = arch.memory_levels().nth(1).unwrap().1;
        assert_eq!(l2.bypass.len(), 1);
    }

    #[test]
    fn missing_dram_fails_validation() {
        let err = ArchBuilder::new("bad").unified_memory("L1", 512, 1.0, 1.0).build();
        assert!(matches!(err, Err(ArchError::OutermostNotDram)));
    }

    #[test]
    fn bypass_after_spatial_is_a_typed_error() {
        let err = ArchBuilder::new("bad")
            .unified_memory("L1", 512, 1.0, 1.0)
            .spatial("grid", 4)
            .bypass(TensorFilter::Output)
            .dram(200.0)
            .build();
        assert!(matches!(err, Err(ArchError::MisplacedBypass)), "{err:?}");
    }

    #[test]
    fn misplaced_bypass_merges_with_validation_errors() {
        let err = ArchBuilder::new("bad")
            .unified_memory("L1", 512, 1.0, 1.0)
            .spatial("grid", 4)
            .bypass(TensorFilter::Output)
            .build();
        let Err(ArchError::Multiple(errors)) = err else {
            panic!("expected aggregated errors, got {err:?}");
        };
        assert!(errors.contains(&ArchError::MisplacedBypass), "{errors:?}");
        assert!(errors.contains(&ArchError::OutermostNotDram), "{errors:?}");
    }
}
