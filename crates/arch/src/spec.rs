//! Whole-accelerator specifications.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Level, MemoryLevel, SpatialLevel};

/// Index of a level within an [`ArchSpec`], counting from the innermost
/// level (closest to the MACs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LevelId(pub usize);

impl LevelId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors detected by [`ArchSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// The spec has no memory level.
    NoMemory,
    /// The outermost level is not an unbounded memory.
    OutermostNotDram,
    /// Two adjacent spatial levels with no memory in between are ambiguous;
    /// merge them or insert a memory level.
    AdjacentSpatialLevels(String, String),
    /// A spatial level declares zero units.
    ZeroUnits(String),
    /// A memory level has no partitions.
    NoPartitions(String),
    /// A bounded partition has zero capacity.
    ZeroCapacity(String),
    /// A bypass filter was declared while no memory level was open (see
    /// [`ArchBuilder::bypass`](crate::ArchBuilder::bypass)).
    MisplacedBypass,
    /// Several independent violations were found; validation reports them
    /// all at once instead of stopping at the first.
    Multiple(Vec<ArchError>),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::NoMemory => write!(f, "architecture has no memory level"),
            ArchError::OutermostNotDram => {
                write!(f, "outermost level must be an unbounded memory (DRAM)")
            }
            ArchError::AdjacentSpatialLevels(a, b) => {
                write!(f, "spatial levels `{a}` and `{b}` are adjacent with no memory between")
            }
            ArchError::ZeroUnits(n) => write!(f, "spatial level `{n}` has zero units"),
            ArchError::NoPartitions(n) => write!(f, "memory level `{n}` has no partitions"),
            ArchError::ZeroCapacity(n) => write!(f, "partition `{n}` has zero capacity"),
            ArchError::MisplacedBypass => {
                write!(f, "bypass declared outside a memory level")
            }
            ArchError::Multiple(errors) => {
                write!(f, "{} validation errors:", errors.len())?;
                for e in errors {
                    write!(f, " [{e}]")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for ArchError {}

/// A complete accelerator: an ordered list of levels (innermost first) plus
/// compute-datapath parameters.
///
/// See the [crate-level documentation](crate) and [`crate::presets`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    name: String,
    levels: Vec<Level>,
    /// Energy of one MAC operation in pJ.
    mac_energy_pj: f64,
    /// Reference word width: partition energies are quoted per word of this
    /// many bits and scaled linearly for wider/narrower tensors.
    ref_bits: u32,
}

impl ArchSpec {
    /// Creates a spec. Call [`validate`](Self::validate) before use; the
    /// presets are pre-validated.
    pub fn new(
        name: impl Into<String>,
        levels: Vec<Level>,
        mac_energy_pj: f64,
        ref_bits: u32,
    ) -> Self {
        ArchSpec { name: name.into(), levels, mac_energy_pj, ref_bits }
    }

    /// The accelerator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All levels, innermost first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of levels (memory + spatial).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The level at `id`.
    pub fn level(&self, id: LevelId) -> &Level {
        &self.levels[id.0]
    }

    /// Energy of one MAC in pJ.
    pub fn mac_energy_pj(&self) -> f64 {
        self.mac_energy_pj
    }

    /// Reference word width in bits for energy scaling.
    pub fn ref_bits(&self) -> u32 {
        self.ref_bits
    }

    /// Iterates over the memory levels, innermost first.
    pub fn memory_levels(&self) -> impl Iterator<Item = (LevelId, &MemoryLevel)> {
        self.levels.iter().enumerate().filter_map(|(i, l)| l.as_memory().map(|m| (LevelId(i), m)))
    }

    /// Iterates over the spatial levels, innermost first.
    pub fn spatial_levels(&self) -> impl Iterator<Item = (LevelId, &SpatialLevel)> {
        self.levels.iter().enumerate().filter_map(|(i, l)| l.as_spatial().map(|s| (LevelId(i), s)))
    }

    /// Number of memory levels.
    pub fn num_memory_levels(&self) -> usize {
        self.memory_levels().count()
    }

    /// Total parallelism: the product of all spatial level unit counts
    /// (= number of MAC datapaths).
    pub fn total_spatial_units(&self) -> u64 {
        self.spatial_levels().map(|(_, s)| s.units).product()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// See [`ArchError`] for the individual conditions. Validation runs to
    /// completion and reports **every** violation: a single one is
    /// returned directly, several are wrapped in [`ArchError::Multiple`].
    pub fn validate(&self) -> Result<(), ArchError> {
        // Without any memory level the remaining checks are meaningless,
        // so this one violation short-circuits.
        if !self.levels.iter().any(|l| l.as_memory().is_some()) {
            return Err(ArchError::NoMemory);
        }
        let mut errors: Vec<ArchError> = Vec::new();
        match self.levels.last() {
            Some(Level::Memory(m)) if m.is_unbounded() => {}
            _ => errors.push(ArchError::OutermostNotDram),
        }
        for pair in self.levels.windows(2) {
            if let (Level::Spatial(a), Level::Spatial(b)) = (&pair[0], &pair[1]) {
                errors.push(ArchError::AdjacentSpatialLevels(a.name.clone(), b.name.clone()));
            }
        }
        for level in &self.levels {
            match level {
                Level::Spatial(s) if s.units == 0 => {
                    errors.push(ArchError::ZeroUnits(s.name.clone()));
                }
                Level::Memory(m) => {
                    if m.partitions.is_empty() {
                        errors.push(ArchError::NoPartitions(m.name.clone()));
                    }
                    for p in &m.partitions {
                        if p.capacity == crate::Capacity::Bytes(0) {
                            errors.push(ArchError::ZeroCapacity(p.name.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
        match errors.len() {
            0 => Ok(()),
            1 => Err(errors.remove(0)),
            _ => Err(ArchError::Multiple(errors)),
        }
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            match l {
                Level::Memory(m) => write!(f, "{}", m.name)?,
                Level::Spatial(s) => write!(f, "{}×{}", s.name, s.units)?,
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPartition, Capacity, TensorFilter};

    fn mem(name: &str, cap: Capacity) -> Level {
        Level::Memory(MemoryLevel::unified(
            name,
            BufferPartition::new(name, TensorFilter::Any, cap, 1.0, 1.0),
        ))
    }

    fn valid_spec() -> ArchSpec {
        ArchSpec::new(
            "test",
            vec![
                mem("L1", Capacity::Bytes(512)),
                Level::Spatial(SpatialLevel::new("grid", 16)),
                mem("L2", Capacity::Bytes(1 << 20)),
                mem("DRAM", Capacity::Unbounded),
            ],
            1.0,
            16,
        )
    }

    #[test]
    fn valid_spec_passes() {
        let spec = valid_spec();
        spec.validate().unwrap();
        assert_eq!(spec.num_memory_levels(), 3);
        assert_eq!(spec.total_spatial_units(), 16);
        assert_eq!(spec.level(LevelId(1)).name(), "grid");
    }

    #[test]
    fn rejects_bounded_outermost() {
        let spec = ArchSpec::new("bad", vec![mem("L1", Capacity::Bytes(512))], 1.0, 16);
        assert_eq!(spec.validate().unwrap_err(), ArchError::OutermostNotDram);
    }

    #[test]
    fn rejects_spatial_outermost() {
        let spec = ArchSpec::new(
            "bad",
            vec![mem("L1", Capacity::Unbounded), Level::Spatial(SpatialLevel::new("g", 4))],
            1.0,
            16,
        );
        assert_eq!(spec.validate().unwrap_err(), ArchError::OutermostNotDram);
    }

    #[test]
    fn rejects_empty() {
        let spec = ArchSpec::new("bad", vec![], 1.0, 16);
        assert_eq!(spec.validate().unwrap_err(), ArchError::NoMemory);
    }

    #[test]
    fn rejects_adjacent_spatial() {
        let spec = ArchSpec::new(
            "bad",
            vec![
                Level::Spatial(SpatialLevel::new("a", 2)),
                Level::Spatial(SpatialLevel::new("b", 2)),
                mem("DRAM", Capacity::Unbounded),
            ],
            1.0,
            16,
        );
        assert_eq!(
            spec.validate().unwrap_err(),
            ArchError::AdjacentSpatialLevels("a".into(), "b".into())
        );
    }

    #[test]
    fn rejects_zero_units() {
        let spec = ArchSpec::new(
            "bad",
            vec![Level::Spatial(SpatialLevel::new("g", 0)), mem("DRAM", Capacity::Unbounded)],
            1.0,
            16,
        );
        assert_eq!(spec.validate().unwrap_err(), ArchError::ZeroUnits("g".into()));
    }

    #[test]
    fn rejects_zero_capacity_partition() {
        let spec = ArchSpec::new(
            "bad",
            vec![mem("L1", Capacity::Bytes(0)), mem("DRAM", Capacity::Unbounded)],
            1.0,
            16,
        );
        assert_eq!(spec.validate().unwrap_err(), ArchError::ZeroCapacity("L1".into()));
    }

    #[test]
    fn reports_every_violation_at_once() {
        let spec = ArchSpec::new(
            "bad",
            vec![
                Level::Spatial(SpatialLevel::new("a", 0)),
                Level::Spatial(SpatialLevel::new("b", 2)),
                mem("L1", Capacity::Bytes(512)),
            ],
            1.0,
            16,
        );
        let err = spec.validate().unwrap_err();
        let ArchError::Multiple(errors) = err else {
            panic!("expected aggregated errors, got {err:?}");
        };
        assert!(errors.contains(&ArchError::OutermostNotDram), "{errors:?}");
        assert!(
            errors.contains(&ArchError::AdjacentSpatialLevels("a".into(), "b".into())),
            "{errors:?}"
        );
        assert!(errors.contains(&ArchError::ZeroUnits("a".into())), "{errors:?}");
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            ArchError::NoMemory,
            ArchError::OutermostNotDram,
            ArchError::AdjacentSpatialLevels("a".into(), "b".into()),
            ArchError::ZeroUnits("g".into()),
            ArchError::NoPartitions("L1".into()),
            ArchError::ZeroCapacity("L1".into()),
            ArchError::MisplacedBypass,
            ArchError::Multiple(vec![ArchError::NoMemory, ArchError::OutermostNotDram]),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_renders_chain() {
        assert_eq!(valid_spec().to_string(), "test [L1 → grid×16 → L2 → DRAM]");
    }
}
