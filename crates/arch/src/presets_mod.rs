//! The accelerator configurations evaluated in the paper (Table IV) plus
//! the DianNao-like machine from the Section V-D overhead study.
//!
//! Energy values are per-access, per reference-width word, in pJ at 45 nm.
//! They follow the published relative costs used by Accelergy/Cacti/Aladdin
//! (register ≪ small SRAM ≪ large SRAM ≪ DRAM ≈ 200× MAC); absolute values
//! are approximations since the original tool chain is not available here —
//! see `DESIGN.md` for the substitution note. All of the paper's
//! comparisons depend on the *relative* ordering, which is preserved.

use crate::{
    ArchSpec, BufferPartition, Capacity, Level, MemoryLevel, NocModel, SpatialLevel, TensorFilter,
};

fn any(name: &str, cap: Capacity, r: f64, w: f64) -> BufferPartition {
    BufferPartition::new(name, TensorFilter::Any, cap, r, w)
}

/// The paper's *conventional* accelerator (Table IV, right column): an
/// Eyeriss-like machine with a 32×32 grid of single-MAC PEs, a unified
/// 512 B L1 per PE, a unified 3.1 MB shared L2, and 16-bit datapaths.
///
/// The NoC is an interleaved multicast network, and inter-PE ofmap
/// (reduction) communication is supported, as in Eyeriss. Per Section
/// V-A of the paper, every delivered package carries an X/Y destination
/// tag checked at each PE; the per-word NoC energy below folds the tag
/// transport and the tag-check hardware into one per-receiver figure,
/// which is how the cost model charges it.
pub fn conventional() -> ArchSpec {
    let spec = ArchSpec::new(
        "conventional",
        vec![
            Level::Memory(MemoryLevel::unified(
                "L1",
                any("l1", Capacity::Bytes(512), 0.96, 0.96).with_bandwidth(2.0, 2.0),
            )),
            Level::Spatial(
                SpatialLevel::new("pe_grid", 32 * 32)
                    .with_noc(NocModel { multicast: true, per_word_energy_pj: 2.0 }),
            ),
            Level::Memory(MemoryLevel::unified(
                "L2",
                any("l2", Capacity::Bytes(3_251_200), 13.5, 13.5).with_bandwidth(32.0, 32.0),
            )),
            Level::Memory(MemoryLevel::unified(
                "DRAM",
                any("dram", Capacity::Unbounded, 200.0, 200.0).with_bandwidth(16.0, 16.0),
            )),
        ],
        1.0, // 16-bit MAC
        16,
    );
    debug_assert!(spec.validate().is_ok());
    spec
}

/// Alias for [`conventional`] emphasizing its Eyeriss lineage; used by the
/// Table VI optimization-order study, which names an "Eyeriss-like"
/// accelerator.
pub fn eyeriss_like() -> ArchSpec {
    let mut spec = conventional();
    spec = ArchSpec::new(
        "eyeriss-like",
        spec.levels().to_vec(),
        spec.mac_energy_pj(),
        spec.ref_bits(),
    );
    spec
}

/// The paper's *Simba-like* accelerator (Table IV, left column): a modern
/// multi-level design with
///
/// * a 4×4 PE grid,
/// * per-PE distributed buffers (32 KB weights, 8 KB ifmap, 3 KB ofmap),
/// * 8 lanes of 8-wide vector MACs per PE (64 8-bit MACs/PE),
/// * per-lane weight registers providing short-term temporal reuse,
/// * a 512 KB shared L2 holding ifmap and ofmap only — weights *bypass* L2
///   and stream from DRAM into the PE weight buffers (Fig 1b).
///
/// Reference word width is 8 bits; the 24-bit ofmap is scaled by the cost
/// model through `TensorDesc::bits`.
pub fn simba_like() -> ArchSpec {
    let weight_named = || TensorFilter::Named(vec!["weight".into(), "weights".into()]);
    let spec = ArchSpec::new(
        "simba-like",
        vec![
            // 8-wide vector datapath: dot-product reduction across lanes of
            // the vector unit.
            Level::Spatial(
                SpatialLevel::new("vector", 8)
                    .with_noc(NocModel { multicast: true, per_word_energy_pj: 0.01 }),
            ),
            // Per-vector-MAC weight register (8 × 8-bit words); ifmap and
            // ofmap bypass it.
            Level::Memory(
                MemoryLevel::partitioned(
                    "reg",
                    vec![BufferPartition::new(
                        "wreg",
                        weight_named(),
                        Capacity::Bytes(8),
                        0.02,
                        0.02,
                    )],
                )
                .with_bypass(TensorFilter::Output)
                .with_bypass(TensorFilter::InputsExcept(vec!["weight".into(), "weights".into()])),
            ),
            // 8 vector-MAC lanes per PE, fed by the distributed/broadcast
            // buffers.
            Level::Spatial(
                SpatialLevel::new("lanes", 8)
                    .with_noc(NocModel { multicast: true, per_word_energy_pj: 0.05 }),
            ),
            // Per-PE buffers (distributed + broadcast in Fig 1b).
            Level::Memory(MemoryLevel::partitioned(
                "L1",
                vec![
                    BufferPartition::new(
                        "weight_buf",
                        weight_named(),
                        Capacity::Bytes(32 << 10),
                        1.6,
                        1.6,
                    )
                    .with_bandwidth(64.0, 8.0),
                    BufferPartition::new(
                        "ofmap_buf",
                        TensorFilter::Output,
                        Capacity::Bytes(3 << 10),
                        0.45,
                        0.45,
                    )
                    .with_bandwidth(64.0, 8.0),
                    BufferPartition::new(
                        "ifmap_buf",
                        TensorFilter::Inputs,
                        Capacity::Bytes(8 << 10),
                        0.75,
                        0.75,
                    )
                    .with_bandwidth(64.0, 8.0),
                ],
            )),
            Level::Spatial(
                SpatialLevel::new("pe_grid", 16)
                    .with_noc(NocModel { multicast: true, per_word_energy_pj: 1.0 }),
            ),
            // Shared L2 for ifmap/ofmap; weights bypass.
            Level::Memory(
                MemoryLevel::unified(
                    "L2",
                    any("l2", Capacity::Bytes(512 << 10), 3.5, 3.5).with_bandwidth(32.0, 32.0),
                )
                .with_bypass(weight_named()),
            ),
            Level::Memory(MemoryLevel::unified(
                "DRAM",
                any("dram", Capacity::Unbounded, 100.0, 100.0).with_bandwidth(32.0, 32.0),
            )),
        ],
        0.3, // 8-bit MAC
        8,
    );
    debug_assert!(spec.validate().is_ok());
    spec
}

/// A DianNao-like accelerator for the Section V-D overhead study: a 16×16
/// NFU (256 16-bit multipliers), per-datatype on-chip buffers (NBin for
/// inputs, NBout for outputs, SB for weights), and DRAM.
pub fn diannao_like() -> ArchSpec {
    let spec = ArchSpec::new(
        "diannao-like",
        vec![
            Level::Spatial(
                SpatialLevel::new("nfu", 256)
                    .with_noc(NocModel { multicast: true, per_word_energy_pj: 0.05 }),
            ),
            Level::Memory(MemoryLevel::partitioned(
                "buffers",
                vec![
                    BufferPartition::new(
                        "sb",
                        TensorFilter::Named(vec!["weight".into(), "weights".into()]),
                        Capacity::Bytes(32 << 10),
                        1.6,
                        1.6,
                    )
                    .with_bandwidth(256.0, 16.0),
                    BufferPartition::new(
                        "nbout",
                        TensorFilter::Output,
                        Capacity::Bytes(2 << 10),
                        0.4,
                        0.4,
                    )
                    .with_bandwidth(16.0, 16.0),
                    BufferPartition::new(
                        "nbin",
                        TensorFilter::Inputs,
                        Capacity::Bytes(2 << 10),
                        0.4,
                        0.4,
                    )
                    .with_bandwidth(16.0, 16.0),
                ],
            )),
            Level::Memory(MemoryLevel::unified(
                "DRAM",
                any("dram", Capacity::Unbounded, 200.0, 200.0).with_bandwidth(16.0, 16.0),
            )),
        ],
        1.0,
        16,
    );
    debug_assert!(spec.validate().is_ok());
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_ir::Workload;

    fn conv2d() -> Workload {
        let mut b = Workload::builder("conv2d");
        let n = b.dim("N", 16);
        let k = b.dim("K", 64);
        let c = b.dim("C", 64);
        let p = b.dim("P", 56);
        let q = b.dim("Q", 56);
        let r = b.dim("R", 3);
        let s = b.dim("S", 3);
        b.input_bits("ifmap", [n.expr(), c.expr(), p + r, q + s], 8);
        b.input_bits("weight", [k.expr(), c.expr(), r.expr(), s.expr()], 8);
        b.output_bits("ofmap", [n.expr(), k.expr(), p.expr(), q.expr()], 24);
        b.build().unwrap()
    }

    #[test]
    fn all_presets_validate() {
        for spec in [conventional(), eyeriss_like(), simba_like(), diannao_like()] {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        }
    }

    #[test]
    fn conventional_matches_table_iv() {
        let spec = conventional();
        assert_eq!(spec.total_spatial_units(), 1024, "32×32 PE grid");
        assert_eq!(spec.num_memory_levels(), 3, "L1, L2, DRAM");
        assert_eq!(spec.ref_bits(), 16);
    }

    #[test]
    fn simba_matches_table_iv() {
        let spec = simba_like();
        assert_eq!(spec.total_spatial_units(), 8 * 8 * 16, "vector × lanes × grid");
        assert_eq!(spec.num_memory_levels(), 4, "reg, L1, L2, DRAM");
        assert_eq!(spec.ref_bits(), 8);
        // Three spatial levels: the scalability case the paper targets.
        assert_eq!(spec.spatial_levels().count(), 3);
    }

    #[test]
    fn simba_binding_bypasses_weights_at_l2_and_others_at_reg() {
        use crate::Binding;
        let w = conv2d();
        let spec = simba_like();
        let binding = Binding::resolve(&spec, &w).unwrap();
        let weight = w.tensor_by_name("weight").unwrap();
        let ifmap = w.tensor_by_name("ifmap").unwrap();
        let ofmap = w.tensor_by_name("ofmap").unwrap();
        // Level ids: 0 vector, 1 reg, 2 lanes, 3 L1, 4 grid, 5 L2, 6 DRAM.
        use crate::LevelId;
        assert!(binding.stores(LevelId(1), weight), "weight lives in the register");
        assert!(!binding.stores(LevelId(1), ifmap), "ifmap bypasses the register");
        assert!(!binding.stores(LevelId(1), ofmap), "ofmap bypasses the register");
        assert!(!binding.stores(LevelId(5), weight), "weight bypasses L2");
        assert!(binding.stores(LevelId(5), ifmap));
        assert!(binding.stores(LevelId(6), weight), "DRAM stores everything");
    }

    #[test]
    fn diannao_buffers_match_isa_layout() {
        let spec = diannao_like();
        assert_eq!(spec.total_spatial_units(), 256);
        let (_, mem) = spec.memory_levels().next().unwrap();
        assert_eq!(mem.partitions.len(), 3, "SB, NBout, NBin");
        assert_eq!(mem.partitions[0].name, "sb");
    }

    #[test]
    fn dram_is_most_expensive_everywhere() {
        for spec in [conventional(), simba_like(), diannao_like()] {
            let mems: Vec<_> = spec.memory_levels().collect();
            let (_, dram) = mems.last().unwrap();
            let dram_cost = dram.partitions[0].read_energy_pj;
            for (_, m) in &mems[..mems.len() - 1] {
                for p in &m.partitions {
                    assert!(
                        p.read_energy_pj < dram_cost,
                        "{}: partition {} not cheaper than DRAM",
                        spec.name(),
                        p.name
                    );
                }
            }
        }
    }
}
