//! Tensor-to-partition binding.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use sunstone_ir::{TensorId, Workload};

use crate::{ArchSpec, Level, LevelId, PartitionId};

/// Errors produced by [`Binding::resolve`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BindingError {
    /// A tensor is neither bypassed nor matched by any partition at some
    /// memory level.
    Unmatched { tensor: String, level: String },
    /// A tensor is bypassed at the outermost (DRAM) level, so it has no
    /// home at all.
    BypassedEverywhere { tensor: String },
}

impl fmt::Display for BindingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingError::Unmatched { tensor, level } => {
                write!(f, "tensor `{tensor}` matches no partition of level `{level}`")
            }
            BindingError::BypassedEverywhere { tensor } => {
                write!(f, "tensor `{tensor}` is bypassed at the outermost memory")
            }
        }
    }
}

impl Error for BindingError {}

/// Resolved storage assignment: for each memory level and tensor, the
/// partition storing that tensor (or `None` when bypassed).
///
/// Computed once per (architecture, workload) pair and shared by the cost
/// model and the schedulers.
///
/// # Examples
///
/// ```
/// use sunstone_arch::{presets, Binding};
/// use sunstone_ir::Workload;
///
/// let mut b = Workload::builder("mm");
/// let m = b.dim("M", 8);
/// let n = b.dim("N", 8);
/// let k = b.dim("K", 8);
/// b.input("a", [m.expr(), k.expr()]);
/// b.input("b", [k.expr(), n.expr()]);
/// b.output("out", [m.expr(), n.expr()]);
/// let w = b.build()?;
///
/// let arch = presets::conventional();
/// let binding = Binding::resolve(&arch, &w)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// `assignment[level][tensor]`, indexed by raw level id and tensor id;
    /// spatial levels hold an empty row.
    assignment: Vec<Vec<Option<PartitionId>>>,
}

impl Binding {
    /// Resolves the binding of every workload tensor at every memory level.
    ///
    /// # Errors
    ///
    /// Fails if a tensor matches no partition at a level that does not
    /// bypass it, or if the outermost memory bypasses a tensor.
    pub fn resolve(arch: &ArchSpec, workload: &Workload) -> Result<Self, BindingError> {
        let mut assignment = Vec::with_capacity(arch.num_levels());
        for level in arch.levels() {
            match level {
                Level::Spatial(_) => assignment.push(Vec::new()),
                Level::Memory(m) => {
                    let mut row = Vec::with_capacity(workload.num_tensors());
                    for t in workload.tensors() {
                        if m.bypasses(t) {
                            row.push(None);
                        } else {
                            let p = m.partition_for(t).ok_or_else(|| BindingError::Unmatched {
                                tensor: t.name().to_string(),
                                level: m.name.clone(),
                            })?;
                            row.push(Some(p));
                        }
                    }
                    assignment.push(row);
                }
            }
        }
        // The outermost memory must store everything.
        if let Some(outer) = assignment.last() {
            for (i, slot) in outer.iter().enumerate() {
                if slot.is_none() {
                    return Err(BindingError::BypassedEverywhere {
                        tensor: workload.tensor(TensorId::from_index(i)).name().to_string(),
                    });
                }
            }
        }
        Ok(Binding { assignment })
    }

    /// Forces `tensor` to bypass memory level `level`, overriding whatever
    /// the architecture's bypass filters decided.
    ///
    /// # Errors
    ///
    /// [`BindingError::BypassedEverywhere`] if `level` is the outermost
    /// memory — every tensor needs a home there.
    ///
    /// # Panics
    ///
    /// Panics if `level` refers to a spatial level (same contract as
    /// [`partition_of`](Self::partition_of)).
    pub fn with_bypass(
        mut self,
        level: LevelId,
        tensor: TensorId,
        tensor_name: &str,
    ) -> Result<Self, BindingError> {
        if level.0 == self.assignment.len() - 1 {
            return Err(BindingError::BypassedEverywhere { tensor: tensor_name.to_string() });
        }
        let row = &mut self.assignment[level.0];
        assert!(!row.is_empty(), "level {} is spatial", level.0);
        row[tensor.index()] = None;
        Ok(self)
    }

    /// The partition storing `tensor` at memory level `level`, or `None`
    /// when the tensor bypasses that level.
    ///
    /// # Panics
    ///
    /// Panics if `level` refers to a spatial level.
    pub fn partition_of(&self, level: LevelId, tensor: TensorId) -> Option<PartitionId> {
        let row = &self.assignment[level.0];
        assert!(!row.is_empty(), "level {} is spatial", level.0);
        row[tensor.index()]
    }

    /// Returns `true` if `tensor` is stored (not bypassed) at `level`.
    pub fn stores(&self, level: LevelId, tensor: TensorId) -> bool {
        self.partition_of(level, tensor).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferPartition, Capacity, MemoryLevel, SpatialLevel, TensorFilter};

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 7);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    fn any(name: &str, cap: Capacity) -> BufferPartition {
        BufferPartition::new(name, TensorFilter::Any, cap, 1.0, 1.0)
    }

    #[test]
    fn binds_simba_style_bypass() {
        let w = conv1d();
        let arch = ArchSpec::new(
            "mini-simba",
            vec![
                Level::Memory(MemoryLevel::partitioned(
                    "L1",
                    vec![
                        BufferPartition::new(
                            "wbuf",
                            TensorFilter::Named(vec!["weight".into()]),
                            Capacity::Bytes(32 << 10),
                            1.0,
                            1.0,
                        ),
                        BufferPartition::new(
                            "obuf",
                            TensorFilter::Output,
                            Capacity::Bytes(3 << 10),
                            1.0,
                            1.0,
                        ),
                        BufferPartition::new(
                            "ibuf",
                            TensorFilter::Inputs,
                            Capacity::Bytes(8 << 10),
                            1.0,
                            1.0,
                        ),
                    ],
                )),
                Level::Spatial(SpatialLevel::new("grid", 16)),
                Level::Memory(
                    MemoryLevel::unified("L2", any("l2", Capacity::Bytes(512 << 10)))
                        .with_bypass(TensorFilter::Named(vec!["weight".into()])),
                ),
                Level::Memory(MemoryLevel::unified("DRAM", any("dram", Capacity::Unbounded))),
            ],
            1.0,
            16,
        );
        arch.validate().unwrap();
        let b = Binding::resolve(&arch, &w).unwrap();
        let weight = w.tensor_by_name("weight").unwrap();
        let ifmap = w.tensor_by_name("ifmap").unwrap();
        let ofmap = w.tensor_by_name("ofmap").unwrap();
        // At L1: weight → wbuf(0), ofmap → obuf(1), ifmap → ibuf(2).
        assert_eq!(b.partition_of(LevelId(0), weight), Some(PartitionId(0)));
        assert_eq!(b.partition_of(LevelId(0), ofmap), Some(PartitionId(1)));
        assert_eq!(b.partition_of(LevelId(0), ifmap), Some(PartitionId(2)));
        // At L2: weight bypassed.
        assert!(!b.stores(LevelId(2), weight));
        assert!(b.stores(LevelId(2), ifmap) && b.stores(LevelId(2), ofmap));
        // DRAM stores everything.
        assert!(b.stores(LevelId(3), weight));
    }

    #[test]
    fn unmatched_tensor_is_an_error() {
        let w = conv1d();
        let arch = ArchSpec::new(
            "bad",
            vec![
                Level::Memory(MemoryLevel::partitioned(
                    "L1",
                    vec![BufferPartition::new(
                        "obuf",
                        TensorFilter::Output,
                        Capacity::Bytes(1024),
                        1.0,
                        1.0,
                    )],
                )),
                Level::Memory(MemoryLevel::unified("DRAM", any("dram", Capacity::Unbounded))),
            ],
            1.0,
            16,
        );
        let err = Binding::resolve(&arch, &w).unwrap_err();
        assert!(matches!(err, BindingError::Unmatched { ref level, .. } if level == "L1"));
    }

    #[test]
    fn bypass_at_dram_is_an_error() {
        let w = conv1d();
        let arch = ArchSpec::new(
            "bad",
            vec![
                Level::Memory(MemoryLevel::unified("L1", any("l1", Capacity::Bytes(1024)))),
                Level::Memory(
                    MemoryLevel::unified("DRAM", any("dram", Capacity::Unbounded))
                        .with_bypass(TensorFilter::Output),
                ),
            ],
            1.0,
            16,
        );
        let err = Binding::resolve(&arch, &w).unwrap_err();
        assert!(
            matches!(err, BindingError::BypassedEverywhere { ref tensor } if tensor == "ofmap")
        );
    }

    #[test]
    fn bypass_override_clears_assignment_but_protects_dram() {
        let w = conv1d();
        let arch = ArchSpec::new(
            "two-level",
            vec![
                Level::Memory(MemoryLevel::unified("L1", any("l1", Capacity::Bytes(1024)))),
                Level::Memory(MemoryLevel::unified("DRAM", any("dram", Capacity::Unbounded))),
            ],
            1.0,
            16,
        );
        let weight = w.tensor_by_name("weight").unwrap();
        let b = Binding::resolve(&arch, &w).unwrap();
        assert!(b.stores(LevelId(0), weight));
        let b = b.with_bypass(LevelId(0), weight, "weight").unwrap();
        assert!(!b.stores(LevelId(0), weight));
        let err = b.with_bypass(LevelId(1), weight, "weight").unwrap_err();
        assert!(
            matches!(err, BindingError::BypassedEverywhere { ref tensor } if tensor == "weight")
        );
    }

    #[test]
    fn errors_display_nonempty() {
        let e1 = BindingError::Unmatched { tensor: "t".into(), level: "L1".into() };
        let e2 = BindingError::BypassedEverywhere { tensor: "t".into() };
        assert!(!e1.to_string().is_empty());
        assert!(!e2.to_string().is_empty());
    }
}
