//! Cross-layer warm-start invariance: seeding a search from a similar
//! layer's retained mappings must be invisible in every result bit —
//! seeding pre-prices cache entries, it never touches the beam — while
//! the seed statistics prove it actually engaged.

use sunstone::prelude::*;
use sunstone_arch::presets;
use sunstone_ir::Workload;

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [cd.expr(), p.expr() + rd.expr(), q.expr() + s.expr()]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [kd.expr(), p.expr(), q.expr()]);
    b.build().expect("valid conv workload")
}

fn warm_config(on: bool) -> SunstoneConfig {
    SunstoneConfig::builder().warm_starts(on).build().expect("valid config")
}

/// A ResNet-style stage transition (halve P/Q, double K/C): the second
/// layer is seeded from the first, and the result is bit-identical to a
/// cold session with warm starts off.
#[test]
fn seeded_search_is_bit_identical_to_cold_search() {
    let arch = presets::conventional();
    let a = conv("stage1", 32, 16, 14, 3);
    let b = conv("stage2", 64, 32, 7, 3);

    let cold = Scheduler::new(warm_config(false));
    cold.schedule(&a, &arch).expect("schedules");
    let cold_b = cold.schedule(&b, &arch).expect("schedules");
    assert_eq!(cold_b.stats.seeds, 0, "warm starts off: nothing seeds");
    assert_eq!(cold.cache_stats().seed_probes, 0);

    let warm = Scheduler::new(warm_config(true));
    warm.schedule(&a, &arch).expect("schedules");
    let warm_b = warm.schedule(&b, &arch).expect("schedules");
    assert!(warm_b.stats.seeds > 0, "similar layers must actually seed");
    assert_eq!(warm.cache_stats().seed_probes, 1, "one seeded call probes once");

    assert_eq!(warm_b.mapping, cold_b.mapping, "seeding changed the chosen mapping");
    assert_eq!(
        warm_b.report.edp.to_bits(),
        cold_b.report.edp.to_bits(),
        "seeding changed the report bits"
    );
    assert_eq!(warm_b.stats.probed, cold_b.stats.probed, "seeding changed the search space");
}

/// Adversarial pair: near-identical fingerprints (same shape class, one
/// prime swapped per dim) whose free optima differ. The seeded search
/// must return each layer's own free optimum, never the neighbor's.
#[test]
fn near_identical_shapes_with_different_optima_stay_independent() {
    let arch = presets::conventional();
    // Same shape class; factor multiset distance 1 per differing dim —
    // well under the seeding gate — yet the tiling spaces differ (3 vs 2
    // divisor ladders on P/Q, 32 vs 48 on K).
    let a = conv("adv_a", 32, 16, 12, 3);
    let b = conv("adv_b", 48, 16, 8, 3);

    let free_a = Scheduler::new(warm_config(false)).schedule(&a, &arch).expect("schedules");
    let free_b = Scheduler::new(warm_config(false)).schedule(&b, &arch).expect("schedules");
    assert_ne!(free_a.mapping, free_b.mapping, "adversarial pair must have distinct optima");

    // Both orders of arrival: whichever layer seeds the other, each call
    // still returns its own free optimum bit-for-bit.
    for (first, second, first_ref, second_ref) in
        [(&a, &b, &free_a, &free_b), (&b, &a, &free_b, &free_a)]
    {
        let s = Scheduler::new(warm_config(true));
        let r1 = s.schedule(first, &arch).expect("schedules");
        let r2 = s.schedule(second, &arch).expect("schedules");
        assert!(r2.stats.seeds > 0, "the second layer must be seeded");
        assert_eq!(r1.mapping, first_ref.mapping);
        assert_eq!(r2.mapping, second_ref.mapping, "seeding leaked the neighbor's optimum");
        assert_eq!(r1.report.edp.to_bits(), first_ref.report.edp.to_bits());
        assert_eq!(r2.report.edp.to_bits(), second_ref.report.edp.to_bits());
    }
}

/// Re-scheduling the same shape is served by the ordinary estimate cache,
/// not warm seeding: the context fingerprints match, so seeding skips.
#[test]
fn same_shape_repeat_does_not_count_as_seeding() {
    let arch = presets::conventional();
    let w = conv("repeat", 32, 16, 14, 3);
    let s = Scheduler::new(warm_config(true));
    let first = s.schedule(&w, &arch).expect("schedules");
    let second = s.schedule(&w, &arch).expect("schedules");
    assert_eq!(second.stats.seeds, 0, "same context must not re-seed itself");
    assert_eq!(s.cache_stats().seed_probes, 0);
    assert_eq!(first.mapping, second.mapping);
}

/// Structurally dissimilar shapes (factor multiset distance over the
/// gate) do not seed each other.
#[test]
fn distant_shapes_do_not_seed() {
    let arch = presets::conventional();
    let a = conv("tiny", 4, 4, 5, 1);
    let b = conv("huge", 128, 64, 27, 3);
    let s = Scheduler::new(warm_config(true));
    s.schedule(&a, &arch).expect("schedules");
    let r = s.schedule(&b, &arch).expect("schedules");
    assert_eq!(r.stats.seeds, 0, "distant shapes must not seed");
    assert_eq!(s.cache_stats().seed_probes, 0);
}

/// The seed statistics stay coherent: probes count seeded calls, hits
/// are bounded by probes, and the rate is a valid fraction.
#[test]
fn seed_statistics_are_coherent() {
    let arch = presets::conventional();
    let s = Scheduler::new(warm_config(true));
    s.schedule(&conv("l1", 32, 16, 14, 3), &arch).expect("schedules");
    s.schedule(&conv("l2", 64, 32, 7, 3), &arch).expect("schedules");
    s.schedule(&conv("l3", 64, 64, 7, 3), &arch).expect("schedules");
    let stats = s.cache_stats();
    assert_eq!(stats.seed_probes, 2, "two of three calls were seeded");
    assert!(stats.seed_hits <= stats.seed_probes);
    let rate = stats.seed_hit_rate();
    assert!((0.0..=1.0).contains(&rate), "seed hit rate out of range: {rate}");
}

/// `clear()` forgets retained seeds along with the memoized estimates.
#[test]
fn clearing_the_cache_drops_retained_seeds() {
    let arch = presets::conventional();
    let s = Scheduler::new(warm_config(true));
    s.schedule(&conv("l1", 32, 16, 14, 3), &arch).expect("schedules");
    s.clear_cache();
    let r = s.schedule(&conv("l2", 64, 32, 7, 3), &arch).expect("schedules");
    assert_eq!(r.stats.seeds, 0, "cleared sessions have nothing to seed from");
}
