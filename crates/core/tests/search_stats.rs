//! Coverage of the structured per-level, per-principle search statistics
//! and the memoized estimate cache.

use sunstone::{Scheduler, SunstoneConfig};
use sunstone_arch::presets;
use sunstone_ir::Workload;

/// The Simba conv2d layer from the scheduler tests: deep enough that
/// every stage exercises every enumerator.
fn simba_conv2d() -> Workload {
    let mut b = Workload::builder("conv2d");
    let n = b.dim("N", 2);
    let k = b.dim("K", 32);
    let c = b.dim("C", 32);
    let p = b.dim("P", 14);
    let q = b.dim("Q", 14);
    let r = b.dim("R", 3);
    let s = b.dim("S", 3);
    b.input_bits("ifmap", [n.expr(), c.expr(), p + r, q + s], 8);
    b.input_bits("weight", [k.expr(), c.expr(), r.expr(), s.expr()], 8);
    b.output_bits("ofmap", [n.expr(), k.expr(), p.expr(), q.expr()], 24);
    b.build().unwrap()
}

#[test]
fn per_principle_counts_are_nonzero_on_simba_conv2d() {
    let w = simba_conv2d();
    let arch = presets::simba_like();
    let r = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    let stats = &r.stats;

    assert!(!stats.levels.is_empty(), "per-level records exist");
    for (i, level) in stats.levels.iter().enumerate() {
        assert_eq!(level.level, i, "levels are indexed by stage");
    }

    let ordering = stats.total_of(|l| l.ordering);
    let tiling = stats.total_of(|l| l.tiling);
    let unrolling = stats.total_of(|l| l.unrolling);
    let beam = stats.total_of(|l| l.beam);
    assert!(ordering.considered > 0 && ordering.kept > 0, "ordering: {ordering:?}");
    assert!(ordering.pruned() > 0, "the trie prunes orderings: {ordering:?}");
    assert!(tiling.considered > 0 && tiling.kept > 0, "tiling: {tiling:?}");
    assert!(tiling.pruned() > 0, "the maximal frontier prunes tiles: {tiling:?}");
    assert!(unrolling.considered > 0 && unrolling.kept > 0, "unrolling: {unrolling:?}");
    assert!(beam.considered > 0, "beam: {beam:?}");
    assert!(stats.beam_cut() > 0, "the beam cuts candidates on Simba");
    let no_reuse: u64 = stats.levels.iter().map(|l| l.ordering_no_reuse).sum();
    assert!(no_reuse > 0, "Ordering Principle 3 rejects some extensions");
    let dominated: u64 = stats.levels.iter().map(|l| l.ordering_dominated).sum();
    assert!(dominated > 0, "sibling dominance removes some orderings");
}

#[test]
fn beam_considered_sums_to_probed() {
    let w = simba_conv2d();
    let arch = presets::simba_like();
    let r = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    let per_level: u64 = r.stats.levels.iter().map(|l| l.beam.considered).sum();
    assert_eq!(per_level, r.stats.probed, "every estimated candidate faces the beam");
    let probes: u64 = r.stats.levels.iter().map(|l| l.cache_hits + l.cache_misses).sum();
    assert_eq!(probes, r.stats.probed, "every estimate goes through the cache");
    let per_level_misses: u64 = r.stats.levels.iter().map(|l| l.cache_misses).sum();
    assert_eq!(per_level_misses, r.stats.modeled, "modeled counts the per-level cache misses");
    assert!(r.stats.modeled <= r.stats.probed, "the model runs at most once per probe");
    assert!(r.stats.rounds > 0, "estimation fans out over the pool");
    assert!(r.stats.spawns_avoided >= r.stats.rounds, "each round avoids at least one spawn");
    assert!(r.stats.prefix_hits > 0, "outer stages reuse memoized prefixes on Simba");
}

#[test]
fn estimate_cache_hits_and_preserves_edp() {
    let w = simba_conv2d();
    let arch = presets::simba_like();
    let cached = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    assert!(cached.stats.cache_hits > 0, "the memoized estimator is exercised");
    assert!(cached.stats.cache_misses > 0, "misses are counted too");

    let uncached =
        Scheduler::new(SunstoneConfig { estimate_cache: false, ..SunstoneConfig::default() })
            .schedule(&w, &arch)
            .unwrap();
    assert_eq!(uncached.stats.cache_hits, 0, "disabled cache never hits");
    assert_eq!(cached.report.edp, uncached.report.edp, "memoization does not change the result");
    assert_eq!(cached.mapping, uncached.mapping);
    assert!(
        cached.stats.cache_misses < uncached.stats.cache_misses,
        "the cache skips model evaluations: {} vs {}",
        cached.stats.cache_misses,
        uncached.stats.cache_misses
    );
}
