//! End-to-end scheduler tests over the preset architectures (previously
//! the driver's unit tests; they only use the public API).

use sunstone::{Direction, IntraOrder, Scheduler, SunstoneConfig};
use sunstone_arch::{presets, Binding};
use sunstone_ir::Workload;
use sunstone_mapping::Mapping;
use sunstone_model::CostModel;

fn conv1d(k: u64, c: u64, p: u64, r: u64) -> Workload {
    let mut b = Workload::builder("conv1d");
    let kk = b.dim("K", k);
    let cc = b.dim("C", c);
    let pp = b.dim("P", p);
    let rr = b.dim("R", r);
    b.input("ifmap", [cc.expr(), pp + rr]);
    b.input("weight", [kk.expr(), cc.expr(), rr.expr()]);
    b.output("ofmap", [kk.expr(), pp.expr()]);
    b.build().unwrap()
}

fn conv2d(n: u64, k: u64, c: u64, hw: u64, rs: u64) -> Workload {
    let mut b = Workload::builder("conv2d");
    let nn = b.dim("N", n);
    let kk = b.dim("K", k);
    let cc = b.dim("C", c);
    let pp = b.dim("P", hw);
    let qq = b.dim("Q", hw);
    let rr = b.dim("R", rs);
    let ss = b.dim("S", rs);
    b.input("ifmap", [nn.expr(), cc.expr(), pp + rr, qq + ss]);
    b.input("weight", [kk.expr(), cc.expr(), rr.expr(), ss.expr()]);
    b.output("ofmap", [nn.expr(), kk.expr(), pp.expr(), qq.expr()]);
    b.build().unwrap()
}

#[test]
fn schedules_conv_on_conventional() {
    let w = conv1d(16, 16, 56, 3);
    let arch = presets::conventional();
    let result = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    // The found mapping must be valid and dramatically better than
    // streaming.
    let binding = Binding::resolve(&arch, &w).unwrap();
    let model = CostModel::new(&w, &arch, &binding);
    let streaming = model.evaluate(&Mapping::streaming(&w, &arch)).unwrap();
    assert!(result.report.edp < streaming.edp / 10.0);
    assert!(result.stats.probed > 0);
    assert!(result.mapping.used_parallelism() > 1, "the grid is used");
}

#[test]
fn schedules_conv2d_on_simba() {
    let mut b = Workload::builder("conv2d");
    let n = b.dim("N", 2);
    let k = b.dim("K", 32);
    let c = b.dim("C", 32);
    let p = b.dim("P", 14);
    let q = b.dim("Q", 14);
    let r = b.dim("R", 3);
    let s = b.dim("S", 3);
    b.input_bits("ifmap", [n.expr(), c.expr(), p + r, q + s], 8);
    b.input_bits("weight", [k.expr(), c.expr(), r.expr(), s.expr()], 8);
    b.output_bits("ofmap", [n.expr(), k.expr(), p.expr(), q.expr()], 24);
    let w = b.build().unwrap();
    let arch = presets::simba_like();
    let result = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    assert!(result.report.edp > 0.0);
    assert!(
        result.mapping.used_parallelism() >= 64,
        "multi-level parallelism exploited: {}",
        result.mapping.used_parallelism()
    );
}

#[test]
fn schedules_matmul() {
    let mut b = Workload::builder("mm");
    let m = b.dim("M", 128);
    let n = b.dim("N", 128);
    let k = b.dim("K", 128);
    b.input("a", [m.expr(), k.expr()]);
    b.input("b", [k.expr(), n.expr()]);
    b.output("out", [m.expr(), n.expr()]);
    let w = b.build().unwrap();
    let arch = presets::conventional();
    let result = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    assert!(result.report.edp > 0.0);
}

#[test]
fn top_down_finds_comparable_edp_with_larger_space() {
    // Large enough that the whole problem exceeds L2 (3.1 MB): the
    // off-chip level has real tiling decisions to make.
    let w = conv1d(128, 128, 8192, 3);
    let arch = presets::conventional();
    let bu = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    let td = Scheduler::new(SunstoneConfig {
        direction: Direction::TopDown,
        ..SunstoneConfig::default()
    })
    .schedule(&w, &arch)
    .unwrap();
    // The paper's Table VI message: bottom-up is the right default. In
    // our realization top-down's partial-cost estimates are far from
    // final costs (inner levels are undecided), so at equal beam width it
    // lands on clearly worse mappings; it needs a much larger beam to
    // close the gap (the ablation bench sweeps this).
    assert!(
        td.report.edp >= bu.report.edp,
        "bottom-up at least as good: bu={} td={}",
        bu.report.edp,
        td.report.edp
    );
    let wide = Scheduler::new(SunstoneConfig {
        direction: Direction::TopDown,
        beam_width: 512,
        ..SunstoneConfig::default()
    })
    .schedule(&w, &arch)
    .unwrap();
    assert!(wide.report.edp <= td.report.edp, "a wider top-down beam only helps");
}

#[test]
fn intra_order_variants_agree_on_quality() {
    let w = conv1d(16, 16, 28, 3);
    let arch = presets::conventional();
    let mut edps = Vec::new();
    for intra in
        [IntraOrder::OrderTileUnroll, IntraOrder::UnrollTileOrder, IntraOrder::TileUnrollOrder]
    {
        let r = Scheduler::new(SunstoneConfig { intra_order: intra, ..Default::default() })
            .schedule(&w, &arch)
            .unwrap();
        edps.push(r.report.edp);
    }
    let best = edps.iter().cloned().fold(f64::INFINITY, f64::min);
    for e in &edps {
        assert!(*e <= best * 2.0, "intra orders stay close: {edps:?}");
    }
}

#[test]
fn mttkrp_schedules_without_conv_specific_logic() {
    let mut b = Workload::builder("mttkrp");
    let i = b.dim("I", 64);
    let j = b.dim("J", 32);
    let k = b.dim("K", 64);
    let l = b.dim("L", 64);
    b.input("A", [i.expr(), k.expr(), l.expr()]);
    b.input("B", [k.expr(), j.expr()]);
    b.input("C", [l.expr(), j.expr()]);
    b.output("out", [i.expr(), j.expr()]);
    let w = b.build().unwrap();
    let arch = presets::conventional();
    let result = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    assert!(result.report.edp > 0.0);
    assert!(result.mapping.used_parallelism() > 1);
}

#[test]
fn larger_beam_never_hurts() {
    let w = conv2d(1, 16, 16, 14, 3);
    let arch = presets::conventional();
    let narrow = Scheduler::new(SunstoneConfig { beam_width: 2, ..Default::default() })
        .schedule(&w, &arch)
        .unwrap();
    let wide = Scheduler::new(SunstoneConfig { beam_width: 64, ..Default::default() })
        .schedule(&w, &arch)
        .unwrap();
    assert!(wide.report.edp <= narrow.report.edp * 1.0001);
}

#[test]
fn stats_are_populated() {
    let w = conv1d(16, 16, 28, 3);
    let arch = presets::conventional();
    let r = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
    assert!(r.stats.probed > 0);
    assert!(r.stats.orderings > 0);
    assert!(r.stats.tiles > 0);
    assert!(r.stats.nodes_explored > 0);
    assert!(r.stats.elapsed.as_nanos() > 0);
}
