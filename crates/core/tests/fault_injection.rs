//! Fault-injection soak tests (compiled only with `--features
//! fault-injection`): every registered failpoint is driven to panic,
//! delay, and spuriously cancel, and the session must degrade exactly as
//! the fault-model contract promises — a typed `ScheduleError::Internal`,
//! a poisoned-then-evicted cache context, and recovery bit-identical to a
//! fresh session.
#![cfg(feature = "fault-injection")]

use std::sync::Mutex;
use std::time::Duration;

use sunstone::faultpoint::{self, FaultAction};
use sunstone::prelude::*;
use sunstone_arch::presets;
use sunstone_ir::Workload;

/// The failpoint registry is process-global and cargo runs tests of one
/// binary concurrently, so every test serializes behind this lock. An
/// injected panic can unwind while the guard is held; recover from the
/// poison — the guard protects no data.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    faultpoint::disarm_all();
    guard
}

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [cd.expr(), p.expr() + rd.expr(), q.expr() + s.expr()]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [kd.expr(), p.expr(), q.expr()]);
    b.build().expect("valid conv workload")
}

/// The acceptance soak: for every registered failpoint, a panic injected
/// at that point must surface as `ScheduleError::Internal` carrying the
/// injected message, and the *same* session must then re-schedule clean
/// with results bit-identical to a session that never faulted.
#[test]
fn soak_panic_at_every_failpoint_recovers_bit_identically() {
    let _guard = serial();
    let arch = presets::conventional();
    let w = conv("soak", 32, 16, 14, 3);
    let reference =
        Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("clean schedule");

    for &point in faultpoint::POINTS {
        let session = Scheduler::new(SunstoneConfig::default());
        faultpoint::arm(point, 1, FaultAction::Panic);
        let err = session
            .schedule(&w, &arch)
            .expect_err(&format!("panic injected at {point} must fail the call"));
        let ScheduleError::Internal { stage, layer, message } = &err else {
            panic!("panic at {point} must surface as Internal, got {err:?}");
        };
        assert!(
            message.contains(&format!("injected fault at {point}")),
            "{point}: message lost ({message:?})"
        );
        assert!(!stage.is_empty(), "{point}: fault stage breadcrumb missing");
        assert_eq!(layer.as_deref(), Some("soak"), "{point}: layer attribution");
        assert!(faultpoint::hits(point) >= 1, "{point}: failpoint never hit");

        // Poison-and-recover: the same session must now schedule cleanly
        // and bit-identically to a session that never saw the fault.
        let recovered = session
            .schedule(&w, &arch)
            .unwrap_or_else(|e| panic!("recovery after {point} fault failed: {e}"));
        assert_eq!(recovered.mapping, reference.mapping, "{point}: recovery diverged");
        assert_eq!(
            recovered.report.edp.to_bits(),
            reference.report.edp.to_bits(),
            "{point}: recovery EDP not bitwise identical"
        );
    }
    faultpoint::disarm_all();
}

/// Panics that fire *while a session lock is held* — the locked cache
/// publish (`cache.insert`) and the warm-start store under the warm
/// mutex (`warm.store`) — must not poison anything: the fault surfaces
/// as a typed `Internal`, and the same session then recovers
/// bit-identically instead of aborting on a poisoned mutex.
#[test]
fn held_lock_panics_do_not_poison_the_session() {
    let _guard = serial();
    let arch = presets::conventional();
    let a = conv("lockheld", 32, 16, 14, 3);
    let b = conv("lockheld_next", 64, 32, 7, 3);
    let fresh = Scheduler::new(SunstoneConfig::default());
    let ref_a = fresh.schedule(&a, &arch).expect("clean schedule");
    let ref_b = fresh.schedule(&b, &arch).expect("clean schedule");

    for &point in &["cache.insert", "warm.store"] {
        let session = Scheduler::new(SunstoneConfig::default());
        faultpoint::arm(point, 1, FaultAction::Panic);
        let err =
            session.schedule(&a, &arch).expect_err(&format!("panic at {point} must fail the call"));
        assert!(
            matches!(err, ScheduleError::Internal { .. }),
            "{point}: held-lock panic must surface typed, got {err:?}"
        );

        // The next calls on the same session walk straight through the
        // locks the panic unwound across — the cache mutex, the warm
        // store, the pool queue. Any residual poisoning aborts here.
        let again = session
            .schedule(&a, &arch)
            .unwrap_or_else(|e| panic!("{point}: recovery call failed: {e}"));
        assert_eq!(again.mapping, ref_a.mapping, "{point}: recovery diverged");
        assert_eq!(again.report.edp.to_bits(), ref_a.report.edp.to_bits());

        // A second shape in the same class exercises the warm-start
        // seeding path (the warm mutex) after the fault as well.
        let next = session
            .schedule(&b, &arch)
            .unwrap_or_else(|e| panic!("{point}: warm-seeded call after fault failed: {e}"));
        assert_eq!(next.mapping, ref_b.mapping, "{point}: seeded recovery diverged");
        assert_eq!(next.report.edp.to_bits(), ref_b.report.edp.to_bits());
    }
    faultpoint::disarm_all();
}

/// A fault in one batch layer fails only that layer: the others still
/// return valid mappings, and the per-layer error replays onto every
/// occurrence of the poisoned shape.
#[test]
fn batch_with_poisoned_layer_keeps_other_layers() {
    let _guard = serial();
    let arch = presets::conventional();
    // threads: 1 → the pool runs inline in index order, so the first
    // unique shape deterministically absorbs the injected fault.
    let config = SunstoneConfig { threads: 1, ..SunstoneConfig::default() };
    let net = vec![
        conv("bad", 32, 16, 14, 3),
        conv("good", 64, 32, 7, 3),
        conv("bad_again", 32, 16, 14, 3), // dedups onto `bad`
    ];

    let session = Scheduler::new(config.clone());
    faultpoint::arm("estimate.round", 1, FaultAction::Panic);
    let outcome = session
        .schedule_batch_outcomes(&net, &arch, &BatchOptions::default())
        .expect("partial failure is an Ok outcome");
    assert!(!outcome.all_ok());
    assert!(matches!(outcome.layers[0], Err(ScheduleError::Internal { .. })));
    assert!(outcome.layers[1].is_ok(), "healthy layer must survive the faulting one");
    assert!(
        matches!(outcome.layers[2], Err(ScheduleError::Internal { .. })),
        "the error replays onto every occurrence of the deduped shape"
    );
    assert_eq!(outcome.stats.failed, 2, "failed counts occurrences, not unique shapes");
    assert_eq!(outcome.failures().count(), 2);

    // The surviving layer matches a fresh, fault-free session bitwise.
    let reference =
        Scheduler::new(config.clone()).schedule(&net[1], &arch).expect("clean schedule");
    let good = outcome.best(1).expect("healthy layer has a mapping");
    assert_eq!(good.mapping, reference.mapping);
    assert_eq!(good.report.edp.to_bits(), reference.report.edp.to_bits());

    // Recovery: the same session re-runs the whole batch clean.
    let retry = session
        .schedule_batch_outcomes(&net, &arch, &BatchOptions::default())
        .expect("clean retry");
    assert!(retry.all_ok());
    let fresh = Scheduler::new(config).schedule_batch(&net, &arch).expect("fresh batch schedules");
    for (i, layer) in retry.layers.iter().enumerate() {
        let retry_best = &layer.as_ref().expect("retry layer ok")[0];
        let fresh_best = fresh.best(i);
        assert_eq!(retry_best.mapping, fresh_best.mapping, "layer {i} recovery diverged");
        assert_eq!(retry_best.report.edp.to_bits(), fresh_best.report.edp.to_bits());
    }
    faultpoint::disarm_all();
}

/// A spurious cancel fired mid-round (from the Nth pool claim; claims
/// are chunked, so the fault lands after at most one chunk of
/// evaluations) is observed within a bounded number of evaluations: the
/// call returns `Cancelled` — never `Infeasible` — after strictly less
/// model work than a full search, and the session stays usable.
#[test]
fn injected_cancel_is_observed_with_bounded_latency() {
    let _guard = serial();
    let arch = presets::conventional();
    let w = conv("cancelme", 32, 16, 14, 3);
    let config = SunstoneConfig { threads: 1, ..SunstoneConfig::default() };

    // Full-search model-evaluation count, for the bound below.
    let full_session = Scheduler::new(config.clone());
    full_session.schedule(&w, &arch).expect("clean schedule");
    let full_misses = full_session.cache_stats().misses;

    let session = Scheduler::new(config);
    let token = CancelToken::new();
    // Claim 2 lands inside the first estimate round (chunked claiming:
    // a round of N misses is ⌈N / chunk⌉ claims), so the abort must be
    // observed before any later round's misses are even counted.
    faultpoint::arm("pool.claim", 2, FaultAction::Cancel(token.clone()));
    let opts = ScheduleOptions::new().cancel(token);
    let err = session.schedule_with(&w, &arch, &opts).expect_err("cancel must abort the search");
    assert!(matches!(err, ScheduleError::Cancelled), "cancel must not be masked: {err:?}");
    let cancelled_misses = session.cache_stats().misses;
    assert!(
        cancelled_misses < full_misses,
        "a cancel on claim 5 must stop the search early \
         ({cancelled_misses} misses vs {full_misses} for a full search)"
    );

    // The session is not poisoned by a cancel: a fresh call completes.
    session.schedule(&w, &arch).expect("session survives a cancelled call");
    faultpoint::disarm_all();
}

/// Delays injected at the locked cache publish and the estimate round are
/// harmless: the search completes with bit-identical results.
#[test]
fn injected_delay_does_not_change_results() {
    let _guard = serial();
    let arch = presets::conventional();
    let w = conv("slow", 32, 16, 14, 3);
    let reference =
        Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("clean schedule");

    for &point in &["estimate.round", "cache.insert"] {
        faultpoint::arm(point, 1, FaultAction::Delay(Duration::from_millis(20)));
        let out = Scheduler::new(SunstoneConfig::default())
            .schedule(&w, &arch)
            .unwrap_or_else(|e| panic!("delay at {point} must be harmless: {e}"));
        assert_eq!(out.mapping, reference.mapping, "{point}: delay changed the result");
        assert_eq!(out.report.edp.to_bits(), reference.report.edp.to_bits());
    }
    faultpoint::disarm_all();
}
