//! Session API contract: batch/sequential equivalence, thread-count
//! independence, cancellation, time budgets, and cross-call caching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sunstone::prelude::*;
use sunstone_arch::presets;
use sunstone_ir::Workload;

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [cd.expr(), p.expr() + rd.expr(), q.expr() + s.expr()]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [kd.expr(), p.expr(), q.expr()]);
    b.build().expect("valid conv workload")
}

/// A small network with repeated shapes: four layers, two unique shapes.
/// The repeats carry different names, which must not defeat the dedup.
fn repeated_network() -> Vec<Workload> {
    vec![
        conv("a0", 32, 16, 14, 3),
        conv("b0", 64, 32, 7, 3),
        conv("a1", 32, 16, 14, 3),
        conv("a2", 32, 16, 14, 3),
    ]
}

#[test]
fn batch_matches_sequential_bitwise() {
    let arch = presets::conventional();
    let net = repeated_network();

    let batch = Scheduler::new(SunstoneConfig::default())
        .schedule_batch(&net, &arch)
        .expect("batch schedules");
    assert_eq!(batch.stats.layers, 4);
    assert_eq!(batch.stats.unique_shapes, 2, "renamed repeats share a shape");
    assert_eq!(batch.stats.dedup_hits, 2);
    assert_eq!(batch.stats.best_so_far, 0, "no shape was truncated by a budget");

    let seq = Scheduler::new(SunstoneConfig::default());
    for (i, w) in net.iter().enumerate() {
        let s = seq.schedule(w, &arch).expect("layer schedules");
        let b = batch.best(i);
        assert_eq!(b.mapping, s.mapping, "layer {i} mapping differs");
        assert_eq!(
            b.report.edp.to_bits(),
            s.report.edp.to_bits(),
            "layer {i} EDP not bitwise identical"
        );
    }
}

#[test]
fn batch_independent_of_worker_count() {
    let arch = presets::conventional();
    let net = repeated_network();

    let one = Scheduler::new(SunstoneConfig { threads: 1, ..SunstoneConfig::default() })
        .schedule_batch(&net, &arch)
        .expect("1-thread batch schedules");
    let four = Scheduler::new(SunstoneConfig { threads: 4, ..SunstoneConfig::default() })
        .schedule_batch(&net, &arch)
        .expect("4-thread batch schedules");

    assert_eq!(one.stats.unique_shapes, four.stats.unique_shapes);
    for (a, b) in one.bests().zip(four.bests()) {
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.report.edp.to_bits(), b.report.edp.to_bits());
    }
}

#[test]
fn pre_cancelled_token_cancels_deterministically() {
    let arch = presets::conventional();
    let w = conv("c", 32, 16, 14, 3);
    let token = CancelToken::new();
    token.cancel();
    assert!(token.is_cancelled());

    let opts = ScheduleOptions::new().cancel(token.clone());
    let err = Scheduler::new(SunstoneConfig::default())
        .schedule_with(&w, &arch, &opts)
        .expect_err("pre-cancelled call must not produce a result");
    assert!(matches!(err, ScheduleError::Cancelled));

    // Batch calls observe the same token.
    let bopts = BatchOptions::new().cancel(token);
    let err = Scheduler::new(SunstoneConfig::default())
        .schedule_batch_with(&[w], &arch, &bopts)
        .expect_err("pre-cancelled batch must not produce a result");
    assert!(matches!(err, ScheduleError::Cancelled));
}

#[test]
fn zero_time_budget_returns_best_so_far() {
    let arch = presets::conventional();
    let w = conv("c", 32, 16, 14, 3);

    let opts = ScheduleOptions::new().time_budget(Duration::ZERO);
    let outcome = Scheduler::new(SunstoneConfig::default())
        .schedule_with(&w, &arch, &opts)
        .expect("zero budget still yields the first-stage best");
    assert!(!outcome.is_complete(), "zero budget cannot complete the search");
    assert!(!outcome.results().is_empty(), "best-so-far carries a usable mapping");

    // The truncated result is deterministic: same budget, same answer.
    let again = Scheduler::new(SunstoneConfig::default())
        .schedule_with(&w, &arch, &opts)
        .expect("zero budget is deterministic");
    assert_eq!(outcome.results()[0].mapping, again.results()[0].mapping);

    // A generous budget completes and matches the unbudgeted search.
    let generous = ScheduleOptions::new().time_budget(Duration::from_secs(3600));
    let full = Scheduler::new(SunstoneConfig::default())
        .schedule_with(&w, &arch, &generous)
        .expect("generous budget schedules");
    assert!(full.is_complete());
    let unbudgeted =
        Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("schedules");
    assert_eq!(full.results()[0].mapping, unbudgeted.mapping);
}

/// The deadline contract on a *warm-started* layer: the second layer of
/// a shape class starts from cross-layer seeds, so its first stage does
/// non-trivial work — but the deadline only engages once the first claim
/// chunk completes, so even a zero budget must yield a usable,
/// deterministic best-so-far instead of `BudgetExhausted` or an empty
/// result.
#[test]
fn zero_budget_on_seeded_layer_returns_deterministic_best_so_far() {
    let arch = presets::conventional();
    let a = conv("seed_src", 32, 16, 14, 3);
    let b = conv("seed_dst", 32, 16, 7, 3); // same shape class → seeded

    // Work bound: a full search of `b` on a session that already saw `a`.
    let full = Scheduler::new(SunstoneConfig::default());
    full.schedule(&a, &arch).expect("schedules");
    let before = full.cache_stats().misses;
    full.schedule(&b, &arch).expect("schedules");
    let full_misses = full.cache_stats().misses - before;

    let run = || {
        let session = Scheduler::new(SunstoneConfig::default());
        session.schedule(&a, &arch).expect("first layer completes");
        let before = session.cache_stats().misses;
        let opts = ScheduleOptions::new().time_budget(Duration::ZERO);
        let outcome = session
            .schedule_with(&b, &arch, &opts)
            .expect("zero budget on a seeded layer must not error");
        assert!(!outcome.is_complete(), "zero budget cannot complete the search");
        assert!(!outcome.results().is_empty(), "best-so-far carries a usable mapping");
        let spent = session.cache_stats().misses - before;
        assert!(
            spent < full_misses,
            "expired budget must stop after the first claim chunk \
             ({spent} misses vs {full_misses} for the full search)"
        );
        outcome.results()[0].mapping.clone()
    };
    // The truncation point is the first claim chunk — a fixed amount of
    // work, not a wall-clock race — so the result is reproducible.
    assert_eq!(run(), run(), "zero-budget truncation must be deterministic");
}

#[test]
fn session_cache_survives_across_calls() {
    let arch = presets::conventional();
    let w = conv("c", 32, 16, 14, 3);
    let session = Scheduler::new(SunstoneConfig::default());

    let first = session.schedule(&w, &arch).expect("first call schedules");
    let after_first = session.cache_stats();
    assert!(after_first.entries > 0, "first call must populate the session cache");

    let second = session.schedule(&w, &arch).expect("second call schedules");
    let after_second = session.cache_stats();
    assert!(
        after_second.hits > after_first.hits,
        "second call on the same shape must hit the session cache \
         ({} -> {} hits)",
        after_first.hits,
        after_second.hits
    );
    assert_eq!(first.mapping, second.mapping);
    assert_eq!(first.report.edp.to_bits(), second.report.edp.to_bits());

    // A renamed copy of the same shape also hits: the workload
    // fingerprint ignores names.
    let renamed = conv("c_renamed", 32, 16, 14, 3);
    let before = session.cache_stats().hits;
    session.schedule(&renamed, &arch).expect("renamed call schedules");
    assert!(session.cache_stats().hits > before);

    // clear_cache starts over.
    session.clear_cache();
    assert_eq!(session.cache_stats().entries, 0);
    assert_eq!(session.cache_stats().hits, 0);
}

#[test]
fn bounded_cache_evicts_lru_context_and_keeps_results_identical() {
    let arch = presets::conventional();
    let a = conv("a", 32, 16, 14, 3);
    let b = conv("b", 64, 32, 7, 3);

    // Per-shape entry counts, measured on fresh unbounded sessions.
    let solo = |w: &Workload| {
        let s = Scheduler::new(SunstoneConfig::default());
        let out = s.schedule(w, &arch).expect("schedules");
        (out, s.cache_stats().entries)
    };
    let (a_ref, a_entries) = solo(&a);
    let (b_ref, b_entries) = solo(&b);
    assert!(a_entries > 1 && b_entries > 1, "both shapes populate the cache");

    // A cap of one entry cannot hold two contexts: scheduling `b` must
    // evict `a`'s whole context (LRU), but never the in-use context —
    // each search keeps its own entries, so results stay bit-identical.
    // Warm starts off: shapes `a` and `b` share a shape class, and
    // cross-layer seeding would add warm entries on top of the exact
    // per-context counts this test pins down.
    let capped = Scheduler::new(SunstoneConfig {
        max_cache_entries: 1,
        warm_starts: false,
        ..SunstoneConfig::default()
    });
    let a_out = capped.schedule(&a, &arch).expect("schedules");
    assert_eq!(
        capped.cache_stats().entries,
        a_entries,
        "the active context is never evicted mid-search, even over the cap"
    );
    let b_out = capped.schedule(&b, &arch).expect("schedules");
    assert_eq!(
        capped.cache_stats().entries,
        b_entries,
        "scheduling a second shape evicts the first shape's context"
    );
    assert_eq!(a_out.mapping, a_ref.mapping, "the bound never changes results");
    assert_eq!(b_out.mapping, b_ref.mapping, "the bound never changes results");
    assert_eq!(a_out.report.edp.to_bits(), a_ref.report.edp.to_bits());
    assert_eq!(b_out.report.edp.to_bits(), b_ref.report.edp.to_bits());

    // Re-scheduling the evicted shape misses the cache (it was dropped):
    // the model runs exactly as often as on a cold session, and the
    // re-populated context evicts `b` in turn.
    let again = capped.schedule(&a, &arch).expect("schedules");
    assert_eq!(again.mapping, a_ref.mapping);
    assert_eq!(capped.cache_stats().entries, a_entries, "`a` repopulated, `b` evicted");
    assert_eq!(
        again.stats.modeled, a_ref.stats.modeled,
        "the evicted context serves no cross-call reuse"
    );

    // An ample cap retains both contexts side by side.
    let roomy = Scheduler::new(SunstoneConfig {
        max_cache_entries: (a_entries + b_entries) * 2,
        warm_starts: false,
        ..SunstoneConfig::default()
    });
    roomy.schedule(&a, &arch).expect("schedules");
    roomy.schedule(&b, &arch).expect("schedules");
    assert_eq!(roomy.cache_stats().entries, a_entries + b_entries, "both contexts retained");
}

#[test]
fn cloned_sessions_share_one_cache() {
    let arch = presets::conventional();
    let w = conv("c", 32, 16, 14, 3);
    let session = Scheduler::new(SunstoneConfig::default());
    let clone = session.clone();

    session.schedule(&w, &arch).expect("schedules");
    let hits_before = clone.cache_stats().hits;
    clone.schedule(&w, &arch).expect("schedules");
    assert!(clone.cache_stats().hits > hits_before, "clones share the session cache");
    assert_eq!(session.cache_stats().hits, clone.cache_stats().hits);
}

#[test]
fn progress_sink_sees_batch_layer_events() {
    let arch = presets::conventional();
    let net = repeated_network();

    let finished = Arc::new(AtomicU64::new(0));
    let sink: Arc<dyn ProgressSink> = Arc::new({
        let finished = Arc::clone(&finished);
        move |e: &ProgressEvent| {
            if matches!(e, ProgressEvent::LayerFinished { .. }) {
                finished.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    let opts = BatchOptions::new().progress(sink);
    let batch = Scheduler::new(SunstoneConfig::default())
        .schedule_batch_with(&net, &arch, &opts)
        .expect("batch schedules");
    assert_eq!(
        finished.load(Ordering::Relaxed),
        batch.stats.unique_shapes as u64,
        "one LayerFinished event per unique shape"
    );
}

/// A 1-D conv with selectable element width: on the tiny-L1 architecture
/// below, 8-bit layers fit (three 1-element tiles = 3 bytes) while
/// 16-bit layers cannot (6 bytes > the 4-byte L1), giving a deterministic
/// per-layer infeasibility inside an otherwise healthy batch.
fn conv1d_bits(name: &str, bits: u32) -> Workload {
    let mut b = Workload::builder(name);
    let k = b.dim("K", 4);
    let c = b.dim("C", 4);
    let p = b.dim("P", 8);
    let r = b.dim("R", 3);
    b.input_bits("ifmap", [c.expr(), p.expr() + r.expr()], bits);
    b.input_bits("weight", [k.expr(), c.expr(), r.expr()], bits);
    b.output_bits("ofmap", [k.expr(), p.expr()], bits);
    b.build().expect("valid conv1d workload")
}

fn tiny_l1_arch() -> sunstone_arch::ArchSpec {
    sunstone_arch::ArchBuilder::new("tiny-l1")
        .unified_memory("L1", 4, 1.0, 1.0)
        .unified_memory("L2", 1 << 20, 6.0, 6.0)
        .dram(200.0)
        .build()
        .expect("valid arch")
}

#[test]
fn batch_outcomes_isolate_infeasible_layers() {
    let arch = tiny_l1_arch();
    let net = vec![
        conv1d_bits("bad", 16),
        conv1d_bits("good", 8),
        conv1d_bits("bad_again", 16), // dedups onto `bad`
    ];
    let session = Scheduler::new(SunstoneConfig::default());
    let outcome = session
        .schedule_batch_outcomes(&net, &arch, &BatchOptions::default())
        .expect("partial failure is an Ok outcome");

    assert!(!outcome.all_ok());
    assert!(matches!(outcome.layers[0], Err(ScheduleError::InfeasibleLevel { .. })));
    assert!(outcome.layers[1].is_ok(), "the feasible layer still gets its mappings");
    assert!(
        matches!(outcome.layers[2], Err(ScheduleError::InfeasibleLevel { .. })),
        "the error replays onto every occurrence of the deduped shape"
    );
    assert_eq!(outcome.stats.failed, 2, "failed counts occurrences, not unique shapes");
    assert_eq!(outcome.failures().count(), 2);
    assert_eq!(outcome.failures().map(|(i, _)| i).collect::<Vec<_>>(), vec![0, 2]);

    // The surviving layer is bit-identical to scheduling it alone.
    let reference = Scheduler::new(SunstoneConfig::default())
        .schedule(&net[1], &arch)
        .expect("feasible layer schedules alone");
    let good = outcome.best(1).expect("feasible layer has a mapping");
    assert_eq!(good.mapping, reference.mapping);
    assert_eq!(good.report.edp.to_bits(), reference.report.edp.to_bits());

    // The all-or-nothing wrapper surfaces the first failing layer's error.
    let err = session
        .schedule_batch(&net, &arch)
        .expect_err("all-or-nothing batch fails on any infeasible layer");
    assert!(matches!(err, ScheduleError::InfeasibleLevel { .. }));
}

#[test]
fn fail_fast_skips_layers_after_the_first_failure() {
    let arch = tiny_l1_arch();
    // threads: 1 → unique shapes run inline in input order, so the
    // failing first layer deterministically precedes the second.
    let config = SunstoneConfig { threads: 1, ..SunstoneConfig::default() };
    let net = vec![conv1d_bits("bad", 16), conv1d_bits("good", 8)];

    let fail_fast = BatchOptions::new().fail_fast(true);
    let outcome = Scheduler::new(config.clone())
        .schedule_batch_outcomes(&net, &arch, &fail_fast)
        .expect("fail-fast partial failure is an Ok outcome");
    assert!(matches!(outcome.layers[0], Err(ScheduleError::InfeasibleLevel { .. })));
    assert!(
        matches!(outcome.layers[1], Err(ScheduleError::Cancelled)),
        "layers after the first failure are skipped as Cancelled: {:?}",
        outcome.layers[1]
    );
    assert_eq!(outcome.stats.failed, 2);

    // Without fail_fast the same batch still schedules the good layer.
    let outcome = Scheduler::new(config)
        .schedule_batch_outcomes(&net, &arch, &BatchOptions::default())
        .expect("default batch keeps going");
    assert!(outcome.layers[1].is_ok());
    assert_eq!(outcome.stats.failed, 1);
}

/// Every shipped preset — including the previously untested
/// `eyeriss_like` and `diannao_like` — schedules through the session API,
/// and a warm repeat on the same session is bit-identical to the cold run.
#[test]
fn all_presets_schedule_through_the_session() {
    let archs = [
        presets::conventional(),
        presets::eyeriss_like(),
        presets::simba_like(),
        presets::diannao_like(),
    ];
    let w = conv("c", 32, 16, 14, 3);
    for arch in &archs {
        let session = Scheduler::new(SunstoneConfig::default());
        let cold =
            session.schedule(&w, arch).unwrap_or_else(|e| panic!("{} schedules: {e}", arch.name()));
        let warm = session.schedule(&w, arch).expect("warm repeat schedules");
        assert_eq!(cold.mapping, warm.mapping, "{}", arch.name());
        assert_eq!(cold.report.edp.to_bits(), warm.report.edp.to_bits(), "{}", arch.name());
    }
}

#[test]
fn batch_top_k_returns_ranked_candidates() {
    let arch = presets::conventional();
    let net = repeated_network();
    let opts = BatchOptions::new().top_k(3);
    let batch = Scheduler::new(SunstoneConfig::default())
        .schedule_batch_with(&net, &arch, &opts)
        .expect("batch schedules");
    for layer in &batch.layers {
        assert!(!layer.is_empty() && layer.len() <= 3);
        for pair in layer.windows(2) {
            assert!(pair[0].report.edp <= pair[1].report.edp, "candidates sorted by EDP");
        }
    }
}
