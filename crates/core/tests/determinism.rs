//! The search result must not depend on the worker-thread count: cache
//! probing and candidate ordering happen on the calling thread, and
//! parallel estimation writes results back by candidate index, so
//! `schedule_top_k` returns identical mappings in identical order for any
//! `threads` setting.

use sunstone::{Scheduler, SunstoneConfig};
use sunstone_arch::presets;
use sunstone_ir::Workload;

fn conv2d() -> Workload {
    let mut b = Workload::builder("conv2d");
    let n = b.dim("N", 1);
    let k = b.dim("K", 16);
    let c = b.dim("C", 16);
    let p = b.dim("P", 14);
    let q = b.dim("Q", 14);
    let r = b.dim("R", 3);
    let s = b.dim("S", 3);
    b.input("ifmap", [n.expr(), c.expr(), p + r, q + s]);
    b.input("weight", [k.expr(), c.expr(), r.expr(), s.expr()]);
    b.output("ofmap", [n.expr(), k.expr(), p.expr(), q.expr()]);
    b.build().unwrap()
}

fn matmul() -> Workload {
    let mut b = Workload::builder("mm");
    let m = b.dim("M", 128);
    let n = b.dim("N", 128);
    let k = b.dim("K", 128);
    b.input("a", [m.expr(), k.expr()]);
    b.input("b", [k.expr(), n.expr()]);
    b.output("out", [m.expr(), n.expr()]);
    b.build().unwrap()
}

fn assert_thread_invariant(w: &Workload) {
    let arch = presets::conventional();
    let k = 8;
    let run = |threads: usize| {
        Scheduler::new(SunstoneConfig { threads, ..SunstoneConfig::default() })
            .schedule_top_k(w, &arch, k)
            .unwrap()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.len(), four.len(), "same number of results");
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a.report.edp, b.report.edp, "EDP differs at rank {i}");
        assert_eq!(a.mapping, b.mapping, "mapping differs at rank {i}");
    }
}

#[test]
fn conv2d_top_k_is_identical_for_1_and_4_threads() {
    assert_thread_invariant(&conv2d());
}

#[test]
fn matmul_top_k_is_identical_for_1_and_4_threads() {
    assert_thread_invariant(&matmul());
}

/// The session worker pool must be invisible in the results: a pool with
/// 0, 1, or 7 background workers (threads = 1/2/8) claims candidate
/// indices in whatever order, but writes reports back by index, so the
/// chosen mapping and every report bit are identical.
#[test]
fn pool_results_are_identical_for_1_2_and_8_threads() {
    use sunstone::Scheduler;
    let arch = presets::simba_like();
    let w = conv2d();
    let run = |threads: usize| {
        let s = Scheduler::new(SunstoneConfig { threads, ..SunstoneConfig::default() });
        s.schedule(&w, &arch).unwrap()
    };
    let one = run(1);
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(one.mapping, other.mapping, "mapping differs at {threads} threads");
        assert_eq!(
            one.report.energy_pj.to_bits(),
            other.report.energy_pj.to_bits(),
            "energy bits differ at {threads} threads"
        );
        assert_eq!(
            one.report.delay_cycles.to_bits(),
            other.report.delay_cycles.to_bits(),
            "delay bits differ at {threads} threads"
        );
        assert_eq!(
            one.report.edp.to_bits(),
            other.report.edp.to_bits(),
            "EDP bits differ at {threads} threads"
        );
        assert_eq!(one.stats.probed, other.stats.probed, "probe count differs");
        assert_eq!(one.stats.modeled, other.stats.modeled, "model count differs");
    }
}
