//! Constrained-vs-free search invariants: the constraint layer must not
//! disturb the free path (bit-identical results with empty constraints),
//! must never *improve* on the free optimum (the constrained space is a
//! subset), must reproduce the free optimum when the optimum itself is
//! pinned, must reject contradictions with the typed error, and must keep
//! constrained and unconstrained cache contexts isolated.

use sunstone::prelude::*;
use sunstone::DimRef;
use sunstone_arch::{presets, Binding};
use sunstone_ir::Workload;
use sunstone_mapping::{MappingLevel, ValidationContext};

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [cd.expr(), p.expr() + rd.expr(), q.expr() + s.expr()]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [kd.expr(), p.expr(), q.expr()]);
    b.build().expect("valid conv workload")
}

fn schedule_constrained(
    w: &Workload,
    arch: &sunstone_arch::ArchSpec,
    constraints: MappingConstraints,
) -> Result<ScheduleResult, ScheduleError> {
    let opts = ScheduleOptions::new().constraints(constraints);
    Ok(Scheduler::new(SunstoneConfig::default())
        .schedule_with(w, arch, &opts)?
        .into_results()
        .remove(0))
}

/// Asserts `result` honors `constraints` via the mapping-level checker.
fn assert_satisfies(
    w: &Workload,
    arch: &sunstone_arch::ArchSpec,
    result: &ScheduleResult,
    constraints: &MappingConstraints,
) {
    let binding = Binding::resolve(arch, w).expect("binding resolves");
    let vctx = ValidationContext::new(w, arch, &binding);
    vctx.satisfies(&result.mapping, constraints)
        .unwrap_or_else(|e| panic!("result violates its constraints: {e}"));
}

#[test]
fn empty_constraints_are_bit_identical_to_the_free_search() {
    let w = conv("c", 32, 16, 14, 3);
    let arch = presets::conventional();
    let free = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("schedules");
    let empty = schedule_constrained(&w, &arch, MappingConstraints::default()).expect("schedules");
    assert_eq!(free.mapping, empty.mapping, "empty constraints changed the mapping");
    assert_eq!(free.report.edp.to_bits(), empty.report.edp.to_bits());
    assert_eq!(free.stats.probed, empty.stats.probed, "empty constraints changed the search");
    let filtered = empty.stats.total_of(|l| l.constraint);
    assert_eq!(filtered.considered, 0, "no constraint filter may run unconstrained");
}

#[test]
fn constrained_best_never_beats_the_free_best() {
    let w = conv("c", 32, 16, 14, 3);
    let arch = presets::conventional();
    let free = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("schedules");
    for template in [
        DataflowTemplate::WeightStationaryCK,
        DataflowTemplate::OutputStationary,
        DataflowTemplate::RowStationary,
        DataflowTemplate::NvdlaLike,
    ] {
        let constraints = template.constraints(&arch);
        let constrained = schedule_constrained(&w, &arch, constraints.clone())
            .unwrap_or_else(|e| panic!("{template:?} schedules: {e}"));
        assert!(
            constrained.report.edp >= free.report.edp,
            "{template:?}: constrained EDP {} beat the free optimum {}",
            constrained.report.edp,
            free.report.edp
        );
        assert_satisfies(&w, &arch, &constrained, &constraints);
        let filtered = constrained.stats.total_of(|l| l.constraint);
        assert!(filtered.considered > 0, "{template:?}: the constraint filter never ran");
    }
}

#[test]
fn pinning_the_free_optimum_reproduces_it() {
    let w = conv("c", 16, 16, 7, 3);
    let arch = presets::conventional();
    let free = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("schedules");

    // Read the free optimum's spatial unrolling off its mapping and pin
    // exactly those factors (allow nothing else).
    let fabric = arch
        .spatial_levels()
        .next()
        .map(|(_, s)| s.name.clone())
        .expect("conventional has a fabric");
    let mut constraints = MappingConstraints::new().allow_unroll(&fabric, []);
    for (pos, _) in arch.spatial_levels() {
        if let MappingLevel::Spatial(s) = &free.mapping.levels()[pos.index()] {
            for (d, &f) in s.factors.iter().enumerate() {
                if f > 1 {
                    let name = w.dims()[d].name().to_string();
                    constraints = constraints.pin_unroll(&fabric, DimRef::named(name), f);
                }
            }
        }
    }
    let pinned = schedule_constrained(&w, &arch, constraints.clone()).expect("schedules");
    assert_eq!(pinned.mapping, free.mapping, "pinning the optimum must reproduce it");
    assert_eq!(pinned.report.edp.to_bits(), free.report.edp.to_bits());
    assert_satisfies(&w, &arch, &pinned, &constraints);
}

#[test]
fn contradictory_constraints_fail_with_the_typed_error() {
    let w = conv("c", 32, 16, 14, 3);
    let arch = presets::conventional();
    let fabric = arch.spatial_levels().next().map(|(_, s)| s.name.clone()).unwrap();

    // A pin that does not divide the dimension extent (C = 16, pin 3).
    let bad_pin = MappingConstraints::new().pin_unroll(&fabric, DimRef::named("C"), 3);
    let err = schedule_constrained(&w, &arch, bad_pin).expect_err("3 does not divide C");
    assert!(matches!(err, ScheduleError::InvalidConstraints { .. }), "{err:?}");

    // An unknown level name.
    let bad_level = MappingConstraints::new().pin_unroll("no_such_level", DimRef::named("C"), 2);
    let err = schedule_constrained(&w, &arch, bad_level).expect_err("unknown level");
    assert!(matches!(err, ScheduleError::InvalidConstraints { .. }), "{err:?}");

    // A tile pin above its own cap.
    let l1 = arch.memory_levels().next().map(|(_, m)| m.name.clone()).unwrap();
    let bad_tile = MappingConstraints::new().pin_tile(&l1, DimRef::named("K"), 16).cap_tile(
        &l1,
        DimRef::named("K"),
        8,
    );
    let err = schedule_constrained(&w, &arch, bad_tile).expect_err("pin above cap");
    assert!(matches!(err, ScheduleError::InvalidConstraints { .. }), "{err:?}");
}

/// Interleaving constrained and free calls on one session must not leak
/// results across cache contexts: the second free call replays the first
/// bitwise, and a fresh session agrees.
#[test]
fn constrained_and_free_calls_share_a_session_without_interference() {
    let w = conv("c", 32, 16, 14, 3);
    let arch = presets::conventional();
    let ws = DataflowTemplate::WeightStationaryCK.constraints(&arch);

    let session = Scheduler::new(SunstoneConfig::default());
    let free_cold = session.schedule(&w, &arch).expect("free schedules");
    let opts = ScheduleOptions::new().constraints(ws.clone());
    let constrained =
        session.schedule_with(&w, &arch, &opts).expect("constrained schedules").into_results();
    let free_warm = session.schedule(&w, &arch).expect("free schedules again");

    assert_eq!(free_cold.mapping, free_warm.mapping, "constrained call polluted the free context");
    assert_eq!(free_cold.report.edp.to_bits(), free_warm.report.edp.to_bits());
    assert_satisfies(&w, &arch, &constrained[0], &ws);

    let fresh = Scheduler::new(SunstoneConfig::default()).schedule(&w, &arch).expect("schedules");
    assert_eq!(fresh.mapping, free_warm.mapping);
    assert_eq!(fresh.report.edp.to_bits(), free_warm.report.edp.to_bits());

    // The config-level carrier reaches the same constrained result as the
    // per-call override.
    let via_config =
        Scheduler::new(SunstoneConfig { constraints: ws.clone(), ..SunstoneConfig::default() })
            .schedule(&w, &arch)
            .expect("config-level constraints schedule");
    assert_eq!(via_config.mapping, constrained[0].mapping);
    assert_eq!(via_config.report.edp.to_bits(), constrained[0].report.edp.to_bits());
}
