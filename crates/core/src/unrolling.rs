//! Spatial-unrolling candidate generation (Section III-B of the paper).
//!
//! Given a parallel level between memories X−1 and X, the **Spatial
//! Unrolling Principle** rejects unroll dimensions that would spatially
//! reuse the operand already temporally reused by the ordering at X — its
//! accesses are already optimized; parallel hardware should amplify the
//! reuse of the *other* tensors. The remaining dimensions are unrolled to
//! maximal, high-utilization combinations.

use std::borrow::Cow;

use sunstone_ir::{DimSet, DimVec, FxHashSet};

use crate::factors::DivisorLadders;
use crate::tiling::sorted_divisors;

/// Result of an unrolling enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrollingOutcome {
    /// Surviving unroll-factor vectors (one entry per workload dimension).
    pub unrollings: Vec<DimVec>,
    /// Number of combinations explored (for search-space statistics).
    pub explored: usize,
}

/// Enumerates unroll-factor vectors for one spatial level.
///
/// * `quota` — per-dimension budget (remaining problem quotient); factors
///   divide it.
/// * `allowed` — dimensions permitted by the Unrolling Principle and by
///   the fabric's reduction capability.
/// * `units` — fabric size; the factor product may not exceed it.
/// * `fits` — additional predicate over the unroll vector (e.g. shared
///   child-memory capacity).
/// * `min_utilization` — candidates below this busy fraction are dropped
///   unless nothing reaches it ("high throughput" constraint).
/// * `maximal_only` — when `true`, prune any vector that can still grow in
///   one dimension; when `false`, keep every feasible vector.
pub fn enumerate_unrollings(
    quota: &[u64],
    allowed: DimSet,
    units: u64,
    fits: impl Fn(&[u64]) -> bool,
    min_utilization: f64,
    maximal_only: bool,
) -> UnrollingOutcome {
    let divisors: Vec<Cow<'_, [u64]>> =
        quota.iter().map(|&q| Cow::Owned(sorted_divisors(q))).collect();
    enumerate_with_divisors(quota, allowed, units, fits, min_utilization, maximal_only, &divisors)
}

/// As [`enumerate_unrollings`], with divisor ladders served from a
/// precomputed [`DivisorLadders`] table — the search pipeline's hot
/// variant.
#[allow(clippy::too_many_arguments)]
pub fn enumerate_unrollings_cached(
    quota: &[u64],
    allowed: DimSet,
    units: u64,
    fits: impl Fn(&[u64]) -> bool,
    min_utilization: f64,
    maximal_only: bool,
    ladders: &DivisorLadders,
) -> UnrollingOutcome {
    enumerate_with_divisors(
        quota,
        allowed,
        units,
        fits,
        min_utilization,
        maximal_only,
        &ladders.ladder_set(quota),
    )
}

#[allow(clippy::too_many_arguments)]
fn enumerate_with_divisors(
    quota: &[u64],
    allowed: DimSet,
    units: u64,
    fits: impl Fn(&[u64]) -> bool,
    min_utilization: f64,
    maximal_only: bool,
    divisors: &[Cow<'_, [u64]>],
) -> UnrollingOutcome {
    let n = quota.len();
    let ones = DimVec::ones(n);
    if !fits(&ones) {
        return UnrollingOutcome { unrollings: Vec::new(), explored: 1 };
    }

    let mut seen: FxHashSet<DimVec> = FxHashSet::default();
    let mut stack = vec![ones.clone()];
    seen.insert(ones);
    let mut explored = 0usize;
    let mut frontier: Vec<DimVec> = Vec::new();
    while let Some(f) = stack.pop() {
        explored += 1;
        let used: u64 = f.iter().product();
        let mut can_grow = false;
        for d in allowed.iter() {
            let i = d.index();
            let Some(&next) = divisors[i].iter().find(|&&x| x > f[i] && used / f[i] * x <= units)
            else {
                continue;
            };
            let mut child = f.clone();
            child[i] = next;
            if fits(&child) {
                can_grow = true;
                if seen.insert(child.clone()) {
                    stack.push(child);
                }
            }
        }
        if !can_grow || !maximal_only {
            frontier.push(f);
        }
    }

    // High-throughput filter: keep candidates at or above the utilization
    // floor; if none qualify, keep the best achieved.
    let util = |f: &DimVec| f.iter().product::<u64>() as f64 / units as f64;
    let best = frontier.iter().map(&util).fold(0.0f64, f64::max);
    let floor = if best >= min_utilization { min_utilization } else { best };
    let unrollings: Vec<DimVec> = frontier.into_iter().filter(|f| util(f) >= floor).collect();
    UnrollingOutcome { unrollings, explored }
}

/// Computes the dimensions the Unrolling Principle forbids: the
/// non-indexing (full-reuse) dimensions of every tensor temporally reused
/// by the upper-level ordering.
pub fn principle_excluded_dims(reused_full: impl IntoIterator<Item = DimSet>) -> DimSet {
    reused_full.into_iter().fold(DimSet::EMPTY, DimSet::union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_ir::DimId;

    fn dims(ids: &[usize]) -> DimSet {
        ids.iter().map(|&i| DimId::from_index(i)).collect()
    }

    #[test]
    fn maximal_unrollings_fill_the_fabric() {
        // Quotas K=8, C=4, P=8 on 16 units; all dims allowed.
        let out = enumerate_unrollings(&[8, 4, 8], dims(&[0, 1, 2]), 16, |_| true, 0.5, true);
        assert!(!out.unrollings.is_empty());
        for f in &out.unrollings {
            let used: u64 = f.iter().product();
            assert_eq!(used, 16, "maximal candidates fully use the fabric: {f:?}");
        }
    }

    #[test]
    fn principle_excludes_reused_operands_dims() {
        // Reused tensor has full-reuse dims {1, 3} → excluded.
        let excluded = principle_excluded_dims([dims(&[1, 3])]);
        assert_eq!(excluded, dims(&[1, 3]));
        let allowed = dims(&[0, 1, 2, 3]).difference(excluded);
        assert_eq!(allowed, dims(&[0, 2]));
    }

    #[test]
    fn utilization_floor_drops_weak_candidates() {
        // Quotas allow only 2×3 = 6 of 16 units via dim 0+1, or 8 via
        // dim 2; with floor 0.5 only the 8 survives.
        let out = enumerate_unrollings(&[2, 3, 8], dims(&[0, 1, 2]), 16, |_| true, 0.5, true);
        for f in &out.unrollings {
            assert!(f.iter().product::<u64>() as f64 / 16.0 >= 0.5, "{f:?}");
        }
        assert!(out.unrollings.iter().any(|f| f[2] == 8));
    }

    #[test]
    fn keeps_best_when_nothing_meets_the_floor() {
        let out = enumerate_unrollings(&[2, 1, 1], dims(&[0]), 16, |_| true, 0.5, true);
        assert_eq!(out.unrollings, vec![DimVec::from_slice(&[2, 1, 1])]);
    }

    #[test]
    fn fits_predicate_limits_growth() {
        // Shared child memory only tolerates a factor-2 unroll in dim 0.
        let out = enumerate_unrollings(&[8, 8], dims(&[0, 1]), 64, |f| f[0] <= 2, 0.0, true);
        for f in &out.unrollings {
            assert!(f[0] <= 2);
        }
        assert!(out.unrollings.iter().any(|f| f[0] == 2 && f[1] == 8));
    }

    #[test]
    fn empty_allowed_set_yields_identity() {
        let out = enumerate_unrollings(&[8, 8], DimSet::EMPTY, 64, |_| true, 0.5, true);
        assert_eq!(out.unrollings, vec![DimVec::from_slice(&[1, 1])]);
    }

    #[test]
    fn non_maximal_mode_keeps_partial_unrollings() {
        let all = enumerate_unrollings(&[8], dims(&[0]), 8, |_| true, 0.0, false);
        // 1, 2, 4, 8 all kept.
        assert_eq!(all.unrollings.len(), 4);
        let maximal = enumerate_unrollings(&[8], dims(&[0]), 8, |_| true, 0.0, true);
        assert_eq!(maximal.unrollings, vec![DimVec::from_slice(&[8])]);
    }

    #[test]
    fn cached_ladders_match_uncached_enumeration() {
        let extents = [64u64, 16, 28];
        let ladders = DivisorLadders::new(&extents);
        let quota = [32u64, 16, 14];
        for maximal in [true, false] {
            let plain = enumerate_unrollings(&quota, dims(&[0, 1, 2]), 16, |_| true, 0.5, maximal);
            let cached = enumerate_unrollings_cached(
                &quota,
                dims(&[0, 1, 2]),
                16,
                |_| true,
                0.5,
                maximal,
                &ladders,
            );
            assert_eq!(plain, cached);
        }
    }

    #[test]
    fn factors_divide_quota() {
        let out = enumerate_unrollings(&[6, 10], dims(&[0, 1]), 15, |_| true, 0.0, true);
        for f in &out.unrollings {
            assert_eq!(6 % f[0], 0);
            assert_eq!(10 % f[1], 0);
            assert!(f.iter().product::<u64>() <= 15);
        }
    }
}
