//! Per-dimension factor-vector arithmetic shared by the search pipeline
//! ([`crate::search`]) and the tiling tree ([`crate::tiling`]).
//!
//! Tiles, quotas, and unroll assignments are all vectors of per-dimension
//! factors; the search composes them with element-wise products and
//! quotients. Centralizing the helpers here keeps the semantics (floor
//! quotient, zero-length tolerance) in one place.

/// Element-wise floor quotient `a[i] / b[i]`.
///
/// All search-internal callers divide exact multiples (tile extents are
/// built from divisor ladders), but the quotient intentionally floors so
/// callers probing non-divisible shapes (e.g. padding studies) get a
/// well-defined result instead of a panic.
pub fn quot(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x / y).collect()
}

/// Element-wise quotient, named for call sites distributing a remaining
/// quota over a chosen factor vector. Alias of [`quot`].
pub fn divide(a: &[u64], b: &[u64]) -> Vec<u64> {
    quot(a, b)
}

/// Element-wise product `a[i] * b[i]`.
pub fn multiply(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Product of all entries, widened to `u128` so large shapes cannot
/// overflow (a 7-dim workload with 2^16 extents already exceeds `u64`).
pub fn volume(a: &[u64]) -> u128 {
    a.iter().map(|&x| u128::from(x)).product()
}

/// All divisors of `q` in increasing order.
pub fn sorted_divisors(q: u64) -> Vec<u64> {
    let mut divs = Vec::new();
    let mut i = 1u64;
    while i * i <= q {
        if q.is_multiple_of(i) {
            divs.push(i);
            if i != q / i {
                divs.push(q / i);
            }
        }
        i += 1;
    }
    divs.sort_unstable();
    divs
}

/// The smallest divisor in the sorted list strictly above `current`.
pub(crate) fn next_divisor(divisors: &[u64], current: u64) -> Option<u64> {
    match divisors.binary_search(&current) {
        Ok(i) => divisors.get(i + 1).copied(),
        Err(i) => divisors.get(i).copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quot_divides_exact_multiples() {
        assert_eq!(quot(&[8, 9, 10], &[2, 3, 5]), vec![4, 3, 2]);
    }

    #[test]
    fn quot_floors_non_divisible_entries() {
        // Non-divisible shapes (padding probes) floor instead of panicking.
        assert_eq!(quot(&[7, 5, 1], &[2, 3, 1]), vec![3, 1, 1]);
        assert_eq!(divide(&[10], &[4]), vec![2]);
    }

    #[test]
    fn empty_shapes_yield_empty_vectors() {
        assert_eq!(quot(&[], &[]), Vec::<u64>::new());
        assert_eq!(multiply(&[], &[]), Vec::<u64>::new());
        assert_eq!(volume(&[]), 1);
    }

    #[test]
    fn multiply_is_elementwise() {
        assert_eq!(multiply(&[2, 3, 1], &[4, 1, 7]), vec![8, 3, 7]);
    }

    #[test]
    fn multiply_then_quot_roundtrips() {
        let a = [6u64, 4, 15];
        let b = [3u64, 2, 5];
        assert_eq!(quot(&multiply(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn volume_survives_u64_overflow() {
        let big = [1u64 << 32; 3];
        assert_eq!(volume(&big), 1u128 << 96);
    }

    #[test]
    fn sorted_divisors_are_sorted_and_complete() {
        assert_eq!(sorted_divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(sorted_divisors(1), vec![1]);
        assert_eq!(sorted_divisors(7), vec![1, 7]);
    }

    #[test]
    fn next_divisor_steps_the_ladder() {
        let d = sorted_divisors(12);
        assert_eq!(next_divisor(&d, 1), Some(2));
        assert_eq!(next_divisor(&d, 4), Some(6));
        assert_eq!(next_divisor(&d, 12), None);
        // A current value off the ladder snaps to the next entry above.
        assert_eq!(next_divisor(&d, 5), Some(6));
    }
}
