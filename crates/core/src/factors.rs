//! Per-dimension factor-vector arithmetic shared by the search pipeline
//! ([`crate::search`]) and the tiling tree ([`crate::tiling`]).
//!
//! Tiles, quotas, and unroll assignments are all vectors of per-dimension
//! factors; the search composes them with element-wise products and
//! quotients. Centralizing the helpers here keeps the semantics (floor
//! quotient, zero-length tolerance) in one place.
//!
//! All elementwise results are [`DimVec`]s — inline up to eight
//! dimensions — so the search's inner loops do not touch the heap. The
//! [`DivisorLadders`] table precomputes every divisor ladder a search can
//! ask for, replacing per-candidate trial division with a lookup.

use sunstone_ir::FxHashMap;

pub use sunstone_ir::DimVec;

/// Element-wise floor quotient `a[i] / b[i]`.
///
/// All search-internal callers divide exact multiples (tile extents are
/// built from divisor ladders), but the quotient intentionally floors so
/// callers probing non-divisible shapes (e.g. padding studies) get a
/// well-defined result instead of a panic.
///
/// # Panics
///
/// Panics when the lengths differ: silently zip-truncating would drop
/// trailing dimensions of the longer operand. This is a true caller
/// invariant (both vectors are indexed by the same workload's
/// dimensions), not input validation — no workload data can trigger it.
pub fn quot(a: &[u64], b: &[u64]) -> DimVec {
    assert_eq!(a.len(), b.len(), "factor vectors must have equal lengths");
    a.iter().zip(b).map(|(x, y)| x / y).collect()
}

/// Element-wise quotient, named for call sites distributing a remaining
/// quota over a chosen factor vector. Alias of [`quot`].
///
/// # Panics
///
/// Panics when the lengths differ (see [`quot`]).
pub fn divide(a: &[u64], b: &[u64]) -> DimVec {
    quot(a, b)
}

/// Element-wise product `a[i] * b[i]`.
///
/// The product is checked, not wrapping: factor vectors derive from
/// user-supplied dimension extents, so adversarial inputs (2^40-sized
/// dims) *can* reach this multiply, and a silent wraparound would
/// corrupt every downstream tile size. Overflow panics deterministically
/// in every build profile with a recognizable message; the scheduler's
/// panic-isolation boundary converts it into
/// `ScheduleError::Internal` at the public API. The length assert below
/// is the opposite kind of check — a true caller invariant (both vectors
/// are indexed by the same workload's dimensions), never reachable from
/// input data.
///
/// # Panics
///
/// Panics when the lengths differ (see [`quot`]) or a product exceeds
/// `u64::MAX`.
pub fn multiply(a: &[u64], b: &[u64]) -> DimVec {
    assert_eq!(a.len(), b.len(), "factor vectors must have equal lengths");
    a.iter().zip(b).map(|(x, y)| x.checked_mul(*y).expect("factor product overflows u64")).collect()
}

/// Product of all entries, widened to `u128` so large shapes cannot
/// overflow (a 7-dim workload with 2^16 extents already exceeds `u64`).
pub fn volume(a: &[u64]) -> u128 {
    a.iter().map(|&x| u128::from(x)).product()
}

/// All divisors of `q` in increasing order.
pub fn sorted_divisors(q: u64) -> Vec<u64> {
    let mut divs = Vec::new();
    let mut i = 1u64;
    while i * i <= q {
        if q.is_multiple_of(i) {
            divs.push(i);
            if i != q / i {
                divs.push(q / i);
            }
        }
        i += 1;
    }
    divs.sort_unstable();
    divs
}

/// The smallest divisor in the sorted list strictly above `current`.
pub(crate) fn next_divisor(divisors: &[u64], current: u64) -> Option<u64> {
    match divisors.binary_search(&current) {
        Ok(i) => divisors.get(i + 1).copied(),
        Err(i) => divisors.get(i).copied(),
    }
}

/// Precomputed sorted divisor ladders for every quota a search over the
/// given dimension extents can encounter.
///
/// Quotas shrink only by division through chosen factors, so every quota
/// of dimension `d` is a divisor of `extents[d]` — a small, closed set.
/// One pass at construction computes the ladder of every such quota;
/// the hot path then asks [`of`](Self::of) instead of running trial
/// division per candidate.
#[derive(Debug, Clone, Default)]
pub struct DivisorLadders {
    /// `per_dim[d][q]` = sorted divisors of `q`, for each divisor `q` of
    /// the dimension's full extent.
    per_dim: Vec<FxHashMap<u64, Vec<u64>>>,
}

impl DivisorLadders {
    /// Builds the ladder table for a workload's dimension extents.
    pub fn new(extents: &[u64]) -> Self {
        let per_dim = extents
            .iter()
            .map(|&size| {
                let divs = sorted_divisors(size);
                divs.iter()
                    .map(|&q| {
                        let ladder: Vec<u64> =
                            divs.iter().copied().filter(|&d| q.is_multiple_of(d)).collect();
                        (q, ladder)
                    })
                    .collect()
            })
            .collect();
        DivisorLadders { per_dim }
    }

    /// The sorted divisors of quota `q` in dimension `dim`, when `q`
    /// divides the dimension's extent (the only quotas a search produces).
    pub fn of(&self, dim: usize, q: u64) -> Option<&[u64]> {
        self.per_dim.get(dim)?.get(&q).map(Vec::as_slice)
    }

    /// Resolves the ladders for a full quota vector, computing any entry
    /// outside the table (possible only for callers probing non-divisor
    /// quotas, e.g. padding studies).
    pub fn ladder_set<'a>(&'a self, quota: &[u64]) -> Vec<std::borrow::Cow<'a, [u64]>> {
        quota
            .iter()
            .enumerate()
            .map(|(i, &q)| match self.of(i, q) {
                Some(l) => std::borrow::Cow::Borrowed(l),
                None => std::borrow::Cow::Owned(sorted_divisors(q)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quot_divides_exact_multiples() {
        assert_eq!(quot(&[8, 9, 10], &[2, 3, 5]), [4u64, 3, 2]);
    }

    #[test]
    fn quot_floors_non_divisible_entries() {
        // Non-divisible shapes (padding probes) floor instead of panicking.
        assert_eq!(quot(&[7, 5, 1], &[2, 3, 1]), [3u64, 1, 1]);
        assert_eq!(divide(&[10], &[4]), [2u64]);
    }

    #[test]
    fn empty_shapes_yield_empty_vectors() {
        assert_eq!(quot(&[], &[]), DimVec::new());
        assert_eq!(multiply(&[], &[]), DimVec::new());
        assert_eq!(volume(&[]), 1);
    }

    #[test]
    fn multiply_is_elementwise() {
        assert_eq!(multiply(&[2, 3, 1], &[4, 1, 7]), [8u64, 3, 7]);
    }

    #[test]
    fn multiply_then_quot_roundtrips() {
        let a = [6u64, 4, 15];
        let b = [3u64, 2, 5];
        assert_eq!(quot(&multiply(&a, &b), &b), a);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn quot_rejects_length_mismatch() {
        let _ = quot(&[4, 2], &[2]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn multiply_rejects_length_mismatch() {
        let _ = multiply(&[4], &[2, 2]);
    }

    #[test]
    fn volume_survives_u64_overflow() {
        let big = [1u64 << 32; 3];
        assert_eq!(volume(&big), 1u128 << 96);
    }

    #[test]
    fn sorted_divisors_are_sorted_and_complete() {
        assert_eq!(sorted_divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(sorted_divisors(1), vec![1]);
        assert_eq!(sorted_divisors(7), vec![1, 7]);
    }

    #[test]
    fn next_divisor_steps_the_ladder() {
        let d = sorted_divisors(12);
        assert_eq!(next_divisor(&d, 1), Some(2));
        assert_eq!(next_divisor(&d, 4), Some(6));
        assert_eq!(next_divisor(&d, 12), None);
        // A current value off the ladder snaps to the next entry above.
        assert_eq!(next_divisor(&d, 5), Some(6));
    }

    #[test]
    fn ladders_match_direct_computation() {
        let extents = [28u64, 12, 1, 97];
        let ladders = DivisorLadders::new(&extents);
        for (d, &size) in extents.iter().enumerate() {
            for q in sorted_divisors(size) {
                assert_eq!(
                    ladders.of(d, q).expect("quota divides extent"),
                    sorted_divisors(q).as_slice(),
                    "dim {d} quota {q}"
                );
            }
        }
        // Non-divisor quotas are not in the table …
        assert!(ladders.of(0, 5).is_none());
        // … but ladder_set falls back to computing them.
        let set = ladders.ladder_set(&[5, 12, 1, 97]);
        assert_eq!(set[0].as_ref(), sorted_divisors(5).as_slice());
        assert_eq!(set[1].as_ref(), sorted_divisors(12).as_slice());
    }
}
