//! The tiling tree (Section IV-B, Fig 5 of the paper).
//!
//! Starting from a base tile, the tree grows one dimension per edge to the
//! next feasible factor. Per the **Tiling Principle**, only the indexing
//! dimensions of the operand(s) temporally reused by the upper-level
//! ordering are grown, and any node with a fitting child is pruned: the
//! child offers strictly more reuse. What remains is the *maximal
//! frontier* — tiles that cannot grow in any allowed dimension.

use std::borrow::Cow;

use sunstone_ir::{DimSet, DimVec, FxHashSet};

pub use crate::factors::sorted_divisors;
use crate::factors::{next_divisor, DivisorLadders};

/// Result of a tiling-tree enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingOutcome {
    /// The surviving resident tiles (per-dimension extents, including the
    /// base).
    pub tiles: Vec<DimVec>,
    /// Number of tree nodes explored (for search-space statistics).
    pub explored: usize,
}

/// Enumerates tiles reachable from `base` by growing the `allowed`
/// dimensions, subject to `fits`.
///
/// * `base` — the resident tile implied by the levels below (the root of
///   the tree; every dimension of the result is a multiple of it).
/// * `quota` — per-dimension growth budget: the result's extent in `d` is
///   `base[d] × f` with `f` a divisor of `quota[d]`.
/// * `allowed` — dimensions that may grow (the reused operand's indexing
///   dimensions, per the Tiling Principle).
/// * `fits` — capacity predicate over the full resident tile.
/// * `maximal_only` — when `true` (the Tiling Principle), prune every node
///   with a fitting child; when `false`, return all fitting tiles
///   (ablation mode).
///
/// Returns an empty tile list when even `base` does not fit.
pub fn enumerate_tiles(
    base: &[u64],
    quota: &[u64],
    allowed: DimSet,
    fits: impl Fn(&[u64]) -> bool,
    maximal_only: bool,
) -> TilingOutcome {
    let divisors: Vec<Cow<'_, [u64]>> =
        quota.iter().map(|&q| Cow::Owned(sorted_divisors(q))).collect();
    enumerate_with_divisors(base, quota, allowed, fits, maximal_only, &divisors)
}

/// As [`enumerate_tiles`], with the per-dimension divisor ladders served
/// from a precomputed [`DivisorLadders`] table instead of trial division
/// per call — the search pipeline's hot variant.
pub fn enumerate_tiles_cached(
    base: &[u64],
    quota: &[u64],
    allowed: DimSet,
    fits: impl Fn(&[u64]) -> bool,
    maximal_only: bool,
    ladders: &DivisorLadders,
) -> TilingOutcome {
    enumerate_with_divisors(base, quota, allowed, fits, maximal_only, &ladders.ladder_set(quota))
}

fn enumerate_with_divisors(
    base: &[u64],
    quota: &[u64],
    allowed: DimSet,
    fits: impl Fn(&[u64]) -> bool,
    maximal_only: bool,
    divisors: &[Cow<'_, [u64]>],
) -> TilingOutcome {
    let n = base.len();
    debug_assert_eq!(quota.len(), n);
    if !fits(base) {
        return TilingOutcome { tiles: Vec::new(), explored: 1 };
    }

    let mut seen: FxHashSet<DimVec> = FxHashSet::default();
    let mut stack: Vec<DimVec> = Vec::new();
    let root = DimVec::ones(n);
    seen.insert(root.clone());
    stack.push(root);

    let mut tiles = Vec::new();
    let mut explored = 0usize;
    let mut tile_buf = DimVec::splat(0, n);
    while let Some(factors) = stack.pop() {
        explored += 1;
        let mut any_child_fits = false;
        for d in allowed.iter() {
            let i = d.index();
            let Some(next) = next_divisor(&divisors[i], factors[i]) else { continue };
            let mut child = factors.clone();
            child[i] = next;
            for (b, (&c, t)) in base.iter().zip(child.iter().zip(tile_buf.iter_mut())) {
                *t = b * c;
            }
            if fits(&tile_buf) {
                any_child_fits = true;
                if seen.insert(child.clone()) {
                    stack.push(child);
                }
            }
        }
        if !any_child_fits || !maximal_only {
            let tile: DimVec = base.iter().zip(&factors).map(|(b, f)| b * f).collect();
            tiles.push(tile);
        }
    }
    TilingOutcome { tiles, explored }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_ir::DimId;

    fn dims(ids: &[usize]) -> DimSet {
        ids.iter().map(|&i| DimId::from_index(i)).collect()
    }

    /// The Fig 5 setting: 1-D conv K=4, C=4, P=14, R=3, unified L1 of 8
    /// entries, xxCR ordering at L2 → grow only K (dim 0) and P (dim 2).
    /// Footprints: ofmap K·P, ifmap C·(P+R−1) with C=1, weight K·C·R with
    /// C=R=1.
    fn fig5_fits(tile: &[u64]) -> bool {
        let (k, c, p, r) = (tile[0], tile[1], tile[2], tile[3]);
        let ofmap = k * p;
        let ifmap = c * (p + 3 - 1);
        let weight = k * c * r;
        ofmap + ifmap + weight <= 8
    }

    #[test]
    fn fig5_maximal_frontier() {
        let base = [1u64, 1, 1, 1];
        let quota = [4u64, 4, 14, 3];
        let out = enumerate_tiles(&base, &quota, dims(&[0, 2]), fig5_fits, true);
        // Maximal tiles: (K=1,P=2) → 2+3+1=6 fits, growing to (1,7)=17 or
        // (2,2)=10 overflows; (K=2,P=1) → 2+3+2=7 fits, (4,1) or (2,2)
        // overflow.
        let mut tiles: Vec<Vec<u64>> = out.tiles.iter().map(DimVec::to_vec).collect();
        tiles.sort();
        assert_eq!(tiles, vec![vec![1, 1, 2, 1], vec![2, 1, 1, 1]]);
        assert!(out.explored >= 3, "root plus both candidates explored");
    }

    #[test]
    fn non_maximal_mode_keeps_everything_fitting() {
        let base = [1u64, 1, 1, 1];
        let quota = [4u64, 4, 14, 3];
        let all = enumerate_tiles(&base, &quota, dims(&[0, 2]), fig5_fits, false);
        // Root (1,1), (2,1), (1,2) all fit.
        assert_eq!(all.tiles.len(), 3);
        let maximal = enumerate_tiles(&base, &quota, dims(&[0, 2]), fig5_fits, true);
        assert!(maximal.tiles.len() < all.tiles.len(), "the Tiling Principle prunes");
    }

    #[test]
    fn growth_steps_follow_divisors() {
        // Quota 12 → divisors 1,2,3,4,6,12; capacity allows up to 6.
        let out = enumerate_tiles(&[1], &[12], dims(&[0]), |t| t[0] <= 6, true);
        assert_eq!(out.tiles, vec![DimVec::from_slice(&[6])]);
    }

    #[test]
    fn base_that_does_not_fit_yields_nothing() {
        let out = enumerate_tiles(&[16], &[4], dims(&[0]), |t| t[0] <= 8, true);
        assert!(out.tiles.is_empty());
    }

    #[test]
    fn no_allowed_dims_returns_base() {
        let out = enumerate_tiles(&[2, 3], &[4, 4], DimSet::EMPTY, |_| true, true);
        assert_eq!(out.tiles, vec![DimVec::from_slice(&[2, 3])]);
    }

    #[test]
    fn unbounded_capacity_grows_to_quota() {
        let out = enumerate_tiles(&[1, 1], &[6, 10], dims(&[0, 1]), |_| true, true);
        assert_eq!(out.tiles, vec![DimVec::from_slice(&[6, 10])]);
    }

    #[test]
    fn base_multiplies_into_result() {
        let out = enumerate_tiles(&[2], &[4], dims(&[0]), |t| t[0] <= 8, true);
        // Factors over quota 4: 1,2,4 → tiles 2,4,8; maximal = 8.
        assert_eq!(out.tiles, vec![DimVec::from_slice(&[8])]);
    }

    #[test]
    fn reaches_80_percent_reduction_on_resnet_like_layer() {
        // §III-A claims ≥80% L1-tile-space reduction for ResNet layers.
        // Compare maximal-frontier size vs all fitting tiles for a
        // ResNet-18 conv3 layer (K=C=128, P=Q=28, R=S=3) on a 512-entry
        // unified buffer, growing ofmap's indexing dims {K,P,Q}.
        let base = vec![1u64; 7]; // K C P Q R S N
        let quota = vec![128, 128, 28, 28, 3, 3, 1];
        let fits = |t: &[u64]| {
            let (k, c, p, q, r, s) = (t[0], t[1], t[2], t[3], t[4], t[5]);
            let ofmap = k * p * q;
            let ifmap = c * (p + r - 1) * (q + s - 1);
            let weight = k * c * r * s;
            ofmap + ifmap + weight <= 512
        };
        let grow = dims(&[0, 2, 3]);
        let all = enumerate_tiles(&base, &quota, grow, fits, false);
        let maximal = enumerate_tiles(&base, &quota, grow, fits, true);
        let reduction = 1.0 - maximal.tiles.len() as f64 / all.tiles.len() as f64;
        assert!(
            reduction >= 0.5,
            "maximal frontier prunes most of the space: {} of {}",
            maximal.tiles.len(),
            all.tiles.len()
        );
    }

    #[test]
    fn cached_ladders_match_uncached_enumeration() {
        let extents = [128u64, 128, 28, 28, 3, 3, 1];
        let ladders = crate::factors::DivisorLadders::new(&extents);
        let base = vec![1u64; 7];
        // A mid-search quota: every entry divides its extent.
        let quota = vec![64, 32, 14, 28, 3, 1, 1];
        let fits = |t: &[u64]| t.iter().product::<u64>() <= 4096;
        let grow = dims(&[0, 2, 3]);
        for maximal in [true, false] {
            let plain = enumerate_tiles(&base, &quota, grow, fits, maximal);
            let cached = enumerate_tiles_cached(&base, &quota, grow, fits, maximal, &ladders);
            assert_eq!(plain, cached);
        }
    }
}
