//! Stable structural fingerprints for session-cache keys and batch dedup.
//!
//! The session-level estimate cache ([`crate::Scheduler`]) is keyed by
//! *(workload, architecture, configuration, mapping)*. The first three are
//! condensed into 64-bit fingerprints with a fixed FNV-1a hash — not
//! `std::hash::DefaultHasher`, whose output may change between Rust
//! releases — so keys are reproducible run to run and the cache can be
//! shared across calls, layers, and worker threads.
//!
//! Workload fingerprints deliberately exclude the workload's *name*: two
//! ResNet blocks with identical shapes ("conv2_1" and "conv2_2") must
//! collapse to one search in [`Scheduler::schedule_batch`](crate::Scheduler::schedule_batch).
//! Dimension and tensor names are included — tensor names feed binding
//! (buffer filters match by name) and dimension names feed nothing in the
//! search itself but keep the fingerprint an over- rather than
//! under-approximation of "schedules identically".

use sunstone_arch::{ArchSpec, Capacity, Level, TensorFilter};
use sunstone_ir::{DimRole, Workload};
use sunstone_mapping::{DimRef, MappingConstraints};

use crate::{Direction, IntraOrder, Objective, SunstoneConfig};

/// 64-bit FNV-1a, the fixed-parameter streaming hash behind every
/// fingerprint.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Structural fingerprint of a workload, excluding its name.
pub fn workload_fingerprint(w: &Workload) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(w.num_dims() as u64);
    for d in w.dims() {
        h.write_str(d.name());
        h.write_u64(d.size());
    }
    h.write_u64(w.num_tensors() as u64);
    for t in w.tensors() {
        h.write_str(t.name());
        h.write_u64(u64::from(t.is_output()));
        h.write_u64(u64::from(t.bits()));
        h.write_u64(t.rank() as u64);
        for e in t.indices() {
            h.write_u64(e.terms().len() as u64);
            for term in e.terms() {
                h.write_u64(term.dim.index() as u64);
                h.write_u64(term.stride);
            }
        }
    }
    h.finish()
}

/// Structural fingerprint of a workload's *shape class*: the dimension
/// roles and tensor index structure with the dimension **sizes excluded**
/// (and the name, as always). Two layers of one network family — e.g.
/// every 3×3 conv of a ResNet, whatever its channel counts — share a
/// shape class, which is what keys the cross-layer warm-start retention:
/// a cached search can only seed a layer it is structurally exchangeable
/// with.
pub fn shape_class_fingerprint(w: &Workload) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(w.num_dims() as u64);
    for d in w.dims() {
        h.write_str(d.name());
    }
    h.write_u64(w.num_tensors() as u64);
    for t in w.tensors() {
        h.write_str(t.name());
        h.write_u64(u64::from(t.is_output()));
        h.write_u64(u64::from(t.bits()));
        h.write_u64(t.rank() as u64);
        for e in t.indices() {
            h.write_u64(e.terms().len() as u64);
            for term in e.terms() {
                h.write_u64(term.dim.index() as u64);
                h.write_u64(term.stride);
            }
        }
    }
    h.finish()
}

/// Largest trial divisor [`prime_factors`] tests. Factorization is
/// complete for `n < 2^32`; a residue with no factor below the limit is
/// kept as one atomic pseudo-factor. Dimension sizes of real workloads
/// are far below 2^32, and the distance metric only needs *stable*
/// multisets, not number-theoretic completeness — while an adversarial
/// 2^40-scale prime must cost 2^16 loop iterations, not 2^20 (or, with
/// the old `p * p <= n` bound near `u64::MAX`, an overflow panic).
const TRIAL_LIMIT: u64 = 1 << 16;

/// Sorted factor multiset of `n` (1 → empty): prime factors up to
/// [`TRIAL_LIMIT`], then the undecomposed residue (possibly composite) as
/// a single trailing pseudo-factor. Deterministic, and exact for every
/// `n < 2^32`. The loop bound `p <= n / p` is overflow-free for all `n`,
/// unlike `p * p <= n` (which wraps once `n` nears `u64::MAX` — inputs
/// the degenerate-workload grid actually produces).
fn prime_factors(mut n: u64, out: &mut Vec<u64>) {
    out.clear();
    let mut p = 2u64;
    while p <= TRIAL_LIMIT && p <= n / p {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
}

/// Distance between two dimension-size vectors of one shape class: the
/// summed symmetric-difference size of the per-dimension prime-factor
/// multisets. Zero means identical sizes; small values mean the tiling
/// spaces largely overlap (each shared prime factor is a shared divisor
/// step), which is the warm-start similarity gate. Vectors of different
/// lengths are infinitely far apart.
pub fn factor_multiset_distance(a: &[u64], b: &[u64]) -> u32 {
    if a.len() != b.len() {
        return u32::MAX;
    }
    let (mut fa, mut fb) = (Vec::new(), Vec::new());
    let mut dist = 0u32;
    for (&x, &y) in a.iter().zip(b) {
        prime_factors(x, &mut fa);
        prime_factors(y, &mut fb);
        // Both sides are sorted; count elements outside the intersection.
        let (mut i, mut j) = (0, 0);
        while i < fa.len() && j < fb.len() {
            match fa[i].cmp(&fb[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    dist += 1;
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    dist += 1;
                }
            }
        }
        dist += (fa.len() - i) as u32 + (fb.len() - j) as u32;
    }
    dist
}

/// The warm-start retention key: *(shape class, arch, config,
/// constraints)*. Deliberately coarser than [`context_fingerprint`] — the
/// workload's dimension sizes are excluded, so structurally exchangeable
/// layers of different sizes land on the same slot and can seed each
/// other. Everything that changes what a search *would decide* (arch,
/// config, constraints) is still included, so a retained beam is never
/// offered across a boundary where its mappings are meaningless.
pub(crate) fn warm_fingerprint(
    w: &Workload,
    arch: &ArchSpec,
    config: &SunstoneConfig,
    constraints: &MappingConstraints,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(shape_class_fingerprint(w));
    h.write_u64(arch_fingerprint(arch));
    h.write_u64(config_fingerprint(config));
    h.write_u64(constraints_fingerprint(constraints));
    h.finish()
}

fn hash_filter(h: &mut Fnv1a, f: &TensorFilter) {
    match f {
        TensorFilter::Any => h.write_u64(0),
        TensorFilter::Output => h.write_u64(1),
        TensorFilter::Inputs => h.write_u64(2),
        TensorFilter::InputsExcept(names) => {
            h.write_u64(3);
            h.write_u64(names.len() as u64);
            for n in names {
                h.write_str(n);
            }
        }
        TensorFilter::Named(names) => {
            h.write_u64(4);
            h.write_u64(names.len() as u64);
            for n in names {
                h.write_str(n);
            }
        }
    }
}

/// Structural fingerprint of an architecture (name included: presets with
/// equal structure but different names are rare, and including it is
/// harmless — a miss only costs one model evaluation).
pub fn arch_fingerprint(arch: &ArchSpec) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(arch.name());
    h.write_f64(arch.mac_energy_pj());
    h.write_u64(u64::from(arch.ref_bits()));
    h.write_u64(arch.num_levels() as u64);
    for level in arch.levels() {
        match level {
            Level::Memory(m) => {
                h.write_u64(1);
                h.write_str(&m.name);
                h.write_u64(m.bypass.len() as u64);
                for f in &m.bypass {
                    hash_filter(&mut h, f);
                }
                h.write_u64(m.partitions.len() as u64);
                for p in &m.partitions {
                    h.write_str(&p.name);
                    hash_filter(&mut h, &p.filter);
                    match p.capacity {
                        Capacity::Unbounded => h.write_u64(0),
                        Capacity::Bytes(b) => {
                            h.write_u64(1);
                            h.write_u64(b);
                        }
                    }
                    h.write_f64(p.read_energy_pj);
                    h.write_f64(p.write_energy_pj);
                    h.write_f64(p.read_bw.unwrap_or(-1.0));
                    h.write_f64(p.write_bw.unwrap_or(-1.0));
                }
            }
            Level::Spatial(s) => {
                h.write_u64(2);
                h.write_str(&s.name);
                h.write_u64(s.units);
                h.write_u64(u64::from(s.allow_reduction));
                h.write_u64(u64::from(s.noc.multicast));
                h.write_f64(s.noc.per_word_energy_pj);
            }
        }
    }
    h.finish()
}

/// Fingerprint of every configuration field that changes search results.
pub fn config_fingerprint(config: &SunstoneConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(match config.objective {
        Objective::Edp => 0,
        Objective::Energy => 1,
        Objective::Delay => 2,
    });
    h.write_u64(match config.direction {
        Direction::BottomUp => 0,
        Direction::TopDown => 1,
    });
    h.write_u64(match config.intra_order {
        IntraOrder::OrderTileUnroll => 0,
        IntraOrder::UnrollTileOrder => 1,
        IntraOrder::TileUnrollOrder => 2,
    });
    h.write_u64(config.beam_width as u64);
    h.write_f64(config.min_spatial_utilization);
    h.write_u64(config.max_tiles_per_enum as u64);
    h.write_u64(config.max_unrolls_per_enum as u64);
    h.write_u64(u64::from(config.pruning.ordering_trie));
    h.write_u64(u64::from(config.pruning.tiling_maximal));
    h.write_u64(u64::from(config.pruning.unrolling_principle));
    h.write_u64(u64::from(config.pruning.tiling_reuse_dims));
    // `threads`, `estimate_cache`, `max_cache_entries`, `warm_starts`,
    // and `max_seeds` deliberately excluded: none of them changes any
    // estimate (the bound only decides *retention*, and warm starts only
    // pre-evaluate cache entries), so caches may be shared across them.
    // `constraints` is
    // also excluded *here*: the context fingerprint hashes the effective
    // constraints (config-level or per-call override) in a dedicated
    // slot, so equal constraint sets share a cache context regardless of
    // how they were supplied.
    h.finish()
}

fn hash_dim_ref(h: &mut Fnv1a, r: &DimRef) {
    match r {
        DimRef::Named(n) => {
            h.write_u64(0);
            h.write_str(n);
        }
        DimRef::Role(DimRole::Parallel) => h.write_u64(1),
        DimRef::Role(DimRole::Reduction) => h.write_u64(2),
    }
}

/// Structural fingerprint of a constraint set. Folded into the session
/// cache's context key so constrained and unconstrained runs (and runs
/// under *different* constraints) never share cache entries.
pub fn constraints_fingerprint(c: &MappingConstraints) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(c.unroll.len() as u64);
    for u in &c.unroll {
        h.write_str(&u.level);
        match &u.allow {
            None => h.write_u64(0),
            Some(refs) => {
                h.write_u64(1 + refs.len() as u64);
                for r in refs {
                    hash_dim_ref(&mut h, r);
                }
            }
        }
        h.write_u64(u.pins.len() as u64);
        for (r, v) in &u.pins {
            hash_dim_ref(&mut h, r);
            h.write_u64(*v);
        }
    }
    h.write_u64(c.order.len() as u64);
    for o in &c.order {
        h.write_str(&o.level);
        h.write_u64(u64::from(o.exact));
        h.write_u64(o.inner.len() as u64);
        for r in &o.inner {
            hash_dim_ref(&mut h, r);
        }
    }
    h.write_u64(c.tile.len() as u64);
    for t in &c.tile {
        h.write_str(&t.level);
        h.write_u64(t.pins.len() as u64);
        for (r, v) in &t.pins {
            hash_dim_ref(&mut h, r);
            h.write_u64(*v);
        }
        h.write_u64(t.caps.len() as u64);
        for (r, v) in &t.caps {
            hash_dim_ref(&mut h, r);
            h.write_u64(*v);
        }
    }
    h.write_u64(c.bypass.len() as u64);
    for b in &c.bypass {
        h.write_str(&b.level);
        h.write_str(&b.tensor);
    }
    h.finish()
}

/// Structural fingerprint of a complete mapping: every level's tiling
/// factors in hierarchy order, then each temporal level's loop-order
/// indices. This is the bit-identity witness used by the benchmark
/// baselines and the serve path — two mappings fingerprint equal exactly
/// when they schedule identically, so a served or stored mapping can be
/// gated against a fresh library search without comparing structures
/// field by field. The byte stream (no length prefixes; levels and
/// orders have fixed arity for a given workload/arch context) is frozen:
/// committed baselines compare fingerprints across runs and releases.
pub fn mapping_fingerprint(m: &sunstone_mapping::Mapping) -> u64 {
    let mut h = Fnv1a::new();
    for level in m.levels() {
        for &f in level.factors() {
            h.write_u64(f);
        }
        if let sunstone_mapping::MappingLevel::Temporal(t) = level {
            for &d in &t.order {
                h.write_u64(d.index() as u64);
            }
        }
    }
    h.finish()
}

/// The combined *(workload, arch, config, constraints)* context
/// fingerprint that prefixes every session-cache key. `constraints` is
/// the *effective* set for the call — the per-call override when present,
/// else the config's. Public so out-of-process callers (the serve
/// daemon's mapping store) can key persisted results by the same context
/// identity the session cache uses.
pub fn context_fingerprint(
    w: &Workload,
    arch: &ArchSpec,
    config: &SunstoneConfig,
    constraints: &MappingConstraints,
) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(workload_fingerprint(w));
    h.write_u64(arch_fingerprint(arch));
    h.write_u64(config_fingerprint(config));
    h.write_u64(constraints_fingerprint(constraints));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;

    fn mm(name: &str, m: u64) -> Workload {
        let mut b = Workload::builder(name);
        let dm = b.dim("M", m);
        let dn = b.dim("N", 64);
        let dk = b.dim("K", 64);
        b.input("a", [dm.expr(), dk.expr()]);
        b.input("b", [dk.expr(), dn.expr()]);
        b.output("out", [dm.expr(), dn.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn workload_name_does_not_matter_but_shape_does() {
        assert_eq!(workload_fingerprint(&mm("a", 64)), workload_fingerprint(&mm("b", 64)));
        assert_ne!(workload_fingerprint(&mm("a", 64)), workload_fingerprint(&mm("a", 128)));
    }

    #[test]
    fn arch_fingerprints_distinguish_presets() {
        assert_ne!(
            arch_fingerprint(&presets::conventional()),
            arch_fingerprint(&presets::simba_like())
        );
        assert_eq!(
            arch_fingerprint(&presets::conventional()),
            arch_fingerprint(&presets::conventional())
        );
    }

    #[test]
    fn config_fingerprint_ignores_threads_but_not_beam() {
        let base = SunstoneConfig::default();
        let threads = SunstoneConfig { threads: 7, ..base.clone() };
        let cap = SunstoneConfig { max_cache_entries: 7, ..base.clone() };
        let beam = SunstoneConfig { beam_width: 7, ..base.clone() };
        assert_eq!(config_fingerprint(&base), config_fingerprint(&threads));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&cap));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&beam));
    }

    #[test]
    fn shape_class_ignores_sizes_but_not_structure() {
        // Same structure, different sizes: one shape class.
        assert_eq!(shape_class_fingerprint(&mm("a", 64)), shape_class_fingerprint(&mm("b", 128)));
        assert_ne!(workload_fingerprint(&mm("a", 64)), workload_fingerprint(&mm("a", 128)));
        // Different tensor structure: different classes.
        let mut b = Workload::builder("mv");
        let dm = b.dim("M", 64);
        let dn = b.dim("N", 64);
        let dk = b.dim("K", 64);
        b.input("a", [dm.expr(), dk.expr()]);
        b.input("b", [dn.expr(), dk.expr()]); // transposed operand
        b.output("out", [dm.expr(), dn.expr()]);
        let mv = b.build().unwrap();
        assert_ne!(shape_class_fingerprint(&mm("a", 64)), shape_class_fingerprint(&mv));
    }

    #[test]
    fn factor_distance_counts_multiset_differences() {
        assert_eq!(factor_multiset_distance(&[64, 64], &[64, 64]), 0);
        // 64 = 2^6 vs 32 = 2^5: one factor of two apart.
        assert_eq!(factor_multiset_distance(&[64], &[32]), 1);
        // 14 = 2·7 vs 7: one factor apart; 12 = 2²·3 vs 7: four apart.
        assert_eq!(factor_multiset_distance(&[14], &[7]), 1);
        assert_eq!(factor_multiset_distance(&[12], &[7]), 4);
        assert_eq!(factor_multiset_distance(&[1], &[1]), 0);
        assert_eq!(factor_multiset_distance(&[4], &[4, 4]), u32::MAX);
    }

    #[test]
    fn constraints_separate_cache_contexts() {
        use sunstone_mapping::{DimRef, MappingConstraints};
        let w = mm("a", 64);
        let arch = presets::conventional();
        let config = SunstoneConfig::default();
        let free = MappingConstraints::default();
        let ws = MappingConstraints::new()
            .allow_unroll("grid", [DimRef::named("C"), DimRef::named("K")]);
        assert_ne!(constraints_fingerprint(&free), constraints_fingerprint(&ws));
        assert_ne!(
            context_fingerprint(&w, &arch, &config, &free),
            context_fingerprint(&w, &arch, &config, &ws)
        );
        assert_eq!(constraints_fingerprint(&ws), constraints_fingerprint(&ws.clone()));
    }
}
