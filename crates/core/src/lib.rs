//! Sunstone: a scalable and versatile scheduler for mapping tensor algebra
//! on spatial accelerators.
//!
//! This crate implements the scheduler from the ISPASS 2023 paper. It
//! searches the mapping space level by level — bottom-up from the
//! innermost memory by default — and at each level enumerates only:
//!
//! * **loop orderings** that survive the ordering trie's pruning rules
//!   ([`ordering`], Fig 4 of the paper),
//! * **tiles** that are maximal along the indexing dimensions of the
//!   operand reused by the chosen ordering — the Tiling Principle
//!   ([`tiling`], Fig 5),
//! * **spatial unrollings** that avoid re-reusing the already temporally
//!   reused operand — the Spatial Unrolling Principle ([`unrolling`]),
//!
//! pruning partial mappings whose estimated cost cannot beat the best
//! candidate (alpha-beta style, realized as a beam).
//!
//! All principles are derived from the workload's algebraic reuse
//! structure ([`sunstone_ir::ReuseInfo`]), so the scheduler works on any
//! tensor-algebra workload — convolution, MTTKRP, TTMc, SDDMM, MMc, TCL —
//! and any architecture expressible as [`sunstone_arch::ArchSpec`],
//! including multi-level spatial designs like Simba.
//!
//! The public API is a long-lived [`Scheduler`] **session**: it owns the
//! estimate cache (so repeated calls amortize model work) and schedules
//! whole networks at once via [`Scheduler::schedule_batch`], which dedups
//! identical layer shapes and searches the unique ones on parallel
//! workers. Per-call controls (constraints, wall-clock budget,
//! cancellation, progress) share one [`CallOptions`] block embedded in
//! [`ScheduleOptions`] and [`BatchOptions`]. Import everything through
//! [`prelude`].
//!
//! # Example
//!
//! ```
//! use sunstone::prelude::*;
//! use sunstone_arch::presets;
//! use sunstone_ir::Workload;
//!
//! let mut b = Workload::builder("mm");
//! let m = b.dim("M", 64);
//! let n = b.dim("N", 64);
//! let k = b.dim("K", 64);
//! b.input("a", [m.expr(), k.expr()]);
//! b.input("b", [k.expr(), n.expr()]);
//! b.output("out", [m.expr(), n.expr()]);
//! let w = b.build()?;
//!
//! let arch = presets::conventional();
//! let scheduler = Scheduler::new(SunstoneConfig::default());
//! let result = scheduler.schedule(&w, &arch)?;
//! println!("EDP = {}, estimated {} mappings", result.report.edp, result.stats.probed);
//!
//! // A session amortizes work across calls: scheduling a whole network
//! // dedups repeated layer shapes and reuses cached estimates.
//! let batch = scheduler.schedule_batch(&[w.clone(), w], &arch)?;
//! assert_eq!(batch.stats.unique_shapes, 1);
//! assert_eq!(batch.stats.dedup_hits, 1);
//! assert_eq!(batch.best(0).report.edp, batch.best(1).report.edp);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//! # Module map
//!
//! * [`session`] — the session API: [`Scheduler`], the shared per-call
//!   [`CallOptions`] embedded in [`ScheduleOptions`] / [`BatchOptions`],
//!   batch dedup + parallel fan-out.
//! * [`search`] — the staged search pipeline: candidate enumeration
//!   (`candidates`), beam dedup/selection (`beam`), memoized parallel
//!   estimation (`estimate`), and the direction-agnostic composition
//!   loop (`compose`, the `LevelPass` trait). [`search::stats`] holds
//!   the per-level, per-principle pruning statistics.
//! * [`ordering`], [`tiling`], [`unrolling`] — the three per-level
//!   enumerators and their pruning principles.
//! * [`fingerprint`] — stable workload/architecture/config fingerprints
//!   (the session cache key and the batch dedup key).
//! * [`progress`] — per-call controls: [`CancelToken`], [`ProgressSink`].
//! * [`factors`] — shared per-dimension factor-vector arithmetic.
//! * [`network`] — the network-level layout-consistency pass.

/// Fires the named failpoint when the `fault-injection` feature is
/// enabled; expands to an empty statement otherwise, so instrumented hot
/// paths cost nothing in normal builds. Defined before the modules so
/// textual macro scoping makes it visible throughout the crate.
macro_rules! faultpoint {
    ($name:literal) => {
        #[cfg(feature = "fault-injection")]
        $crate::faultpoint::hit($name);
    };
}

mod config;
mod constraints;
mod error;
pub mod factors;
#[cfg(feature = "fault-injection")]
pub mod faultpoint;
pub mod fingerprint;
pub mod network;
pub mod ordering;
mod pool;
pub mod progress;
pub mod search;
pub mod session;
pub mod tiling;
pub mod unrolling;

pub use config::{
    Direction, IntraOrder, Objective, PruningFlags, SunstoneConfig, SunstoneConfigBuilder,
};
pub use error::ScheduleError;
pub use ordering::{OrderingCandidate, OrderingTrie, ReuseKind};
pub use progress::{CancelToken, ProgressEvent, ProgressSink};
pub use search::{CacheStats, LevelStats, PruneCounter, SearchStats};
pub use session::{
    BatchOptions, BatchOutcome, BatchResult, BatchStats, CallOptions, ScheduleOptions,
    ScheduleOutcome, ScheduleResult, Scheduler,
};
// The constraint vocabulary lives in `sunstone_mapping` (so
// `ValidationContext::satisfies` can check mappings against it without a
// dependency cycle); re-exported here because the scheduler is where
// constraints are *used*. `DimRole` backs `DimRef::role`.
pub use sunstone_ir::DimRole;
pub use sunstone_mapping::{
    BypassOverride, ConstraintError, DataflowTemplate, DimRef, MappingConstraints, OrderConstraint,
    TileConstraint, UnrollConstraint,
};

/// One-line import of the session API and its supporting types — the
/// single blessed import surface: the session types, the per-call
/// options, the constraint vocabulary, and the statistics structs.
pub mod prelude {
    pub use crate::config::{
        Direction, IntraOrder, Objective, PruningFlags, SunstoneConfig, SunstoneConfigBuilder,
    };
    pub use crate::error::ScheduleError;
    pub use crate::progress::{CancelToken, ProgressEvent, ProgressSink};
    pub use crate::search::{CacheStats, LevelStats, PruneCounter, SearchStats};
    pub use crate::session::{
        BatchOptions, BatchOutcome, BatchResult, BatchStats, CallOptions, ScheduleOptions,
        ScheduleOutcome, ScheduleResult, Scheduler,
    };
    pub use sunstone_ir::DimRole;
    pub use sunstone_mapping::{
        BypassOverride, ConstraintError, DataflowTemplate, DimRef, MappingConstraints,
        OrderConstraint, TileConstraint, UnrollConstraint,
    };
}
