//! Sunstone: a scalable and versatile scheduler for mapping tensor algebra
//! on spatial accelerators.
//!
//! This crate implements the scheduler from the ISPASS 2023 paper. It
//! searches the mapping space level by level — bottom-up from the
//! innermost memory by default — and at each level enumerates only:
//!
//! * **loop orderings** that survive the ordering trie's pruning rules
//!   ([`ordering`], Fig 4 of the paper),
//! * **tiles** that are maximal along the indexing dimensions of the
//!   operand reused by the chosen ordering — the Tiling Principle
//!   ([`tiling`], Fig 5),
//! * **spatial unrollings** that avoid re-reusing the already temporally
//!   reused operand — the Spatial Unrolling Principle ([`unrolling`]),
//!
//! pruning partial mappings whose estimated cost cannot beat the best
//! candidate (alpha-beta style, realized as a beam).
//!
//! All principles are derived from the workload's algebraic reuse
//! structure ([`sunstone_ir::ReuseInfo`]), so the scheduler works on any
//! tensor-algebra workload — convolution, MTTKRP, TTMc, SDDMM, MMc, TCL —
//! and any architecture expressible as [`sunstone_arch::ArchSpec`],
//! including multi-level spatial designs like Simba.
//!
//! # Example
//!
//! ```
//! use sunstone::{Sunstone, SunstoneConfig};
//! use sunstone_arch::presets;
//! use sunstone_ir::Workload;
//!
//! let mut b = Workload::builder("mm");
//! let m = b.dim("M", 64);
//! let n = b.dim("N", 64);
//! let k = b.dim("K", 64);
//! b.input("a", [m.expr(), k.expr()]);
//! b.input("b", [k.expr(), n.expr()]);
//! b.output("out", [m.expr(), n.expr()]);
//! let w = b.build()?;
//!
//! let arch = presets::conventional();
//! let result = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch)?;
//! println!("EDP = {}, evaluated {} mappings", result.report.edp, result.stats.evaluated);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//! # Module map
//!
//! * [`search`] — the staged search pipeline: candidate enumeration
//!   ([`search::candidates`]), beam dedup/selection ([`search::beam`]),
//!   memoized parallel estimation ([`search::estimate`]), and the
//!   direction-agnostic composition loop ([`search::compose`], the
//!   `LevelPass` trait). [`search::stats`] holds the per-level,
//!   per-principle pruning statistics.
//! * [`ordering`], [`tiling`], [`unrolling`] — the three per-level
//!   enumerators and their pruning principles.
//! * [`factors`] — shared per-dimension factor-vector arithmetic.
//! * [`network`] — the network-level layout-consistency pass.

mod config;
mod driver;
pub mod factors;
pub mod network;
pub mod ordering;
pub mod search;
pub mod tiling;
pub mod unrolling;

pub use config::{Direction, IntraOrder, Objective, PruningFlags, SunstoneConfig};
pub use driver::{ScheduleError, ScheduleResult, Sunstone};
pub use ordering::{OrderingCandidate, OrderingTrie, ReuseKind};
pub use search::{LevelStats, PruneCounter, SearchStats};
