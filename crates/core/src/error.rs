//! The scheduler's error type.
//!
//! Every public entry point — [`Scheduler::schedule`](crate::Scheduler::schedule),
//! [`Scheduler::schedule_batch`](crate::Scheduler::schedule_batch),
//! [`network::schedule_chain`](crate::network::schedule_chain), and the
//! one-shot [`Sunstone`](crate::Sunstone) shim — reports failures through
//! [`ScheduleError`]. The enum is `#[non_exhaustive]`: new failure modes
//! may be added without a breaking release, so downstream matches need a
//! wildcard arm.

use std::error::Error;
use std::fmt;

use sunstone_arch::{ArchError, BindingError};

/// Errors from the scheduling entry points.
///
/// The type is `Clone` so batch results can replay one deduped shape's
/// error onto every layer that shares the shape (see
/// [`BatchOutcome`](crate::BatchOutcome)).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The architecture failed validation.
    Arch(ArchError),
    /// Tensors could not be bound to buffers.
    Binding(BindingError),
    /// No valid mapping was found: candidates were enumerated but every
    /// completed mapping failed validation.
    NoValidMapping,
    /// A search stage produced no candidates at all — typically a tensor's
    /// minimal tile exceeds every buffer of the memory decided at `stage`
    /// (stage 0 is the innermost memory in both walk directions).
    InfeasibleLevel {
        /// The stage (memory level, innermost first) that admitted no
        /// candidate.
        stage: usize,
    },
    /// The configuration is invalid (zero beam width, zero enumeration
    /// caps, out-of-range utilization, …).
    InvalidConfig {
        /// Human-readable description of the offending field.
        reason: String,
    },
    /// The mapping constraints are invalid for this workload/architecture
    /// pair — unknown names, contradictory pins, pins that cannot divide
    /// the problem, or restrictions on levels that admit none.
    InvalidConstraints {
        /// Human-readable description of the offending constraint.
        reason: String,
    },
    /// A caller-supplied mapping is invalid for this workload/architecture
    /// pair — wrong level structure, factors that do not cover the
    /// dimension sizes, or capacity/fabric violations. Returned by
    /// [`Scheduler::prime_mapping`](crate::Scheduler::prime_mapping) when
    /// a stored or externally produced mapping fails re-validation.
    InvalidMapping {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The call was cancelled through its
    /// [`CancelToken`](crate::CancelToken).
    Cancelled,
    /// The wall-clock `time_budget` ran out before any valid mapping was
    /// found. When the budget expires *after* at least one stage produced
    /// a valid mapping, the call instead returns
    /// [`ScheduleOutcome::BestSoFar`](crate::ScheduleOutcome::BestSoFar).
    BudgetExhausted,
    /// An internal invariant was violated (a bug, not a property of the
    /// input): the panic-isolation boundary at every public entry point
    /// caught a panic and converted it into this error instead of
    /// unwinding through the API. The session recovers by evicting every
    /// cache entry the faulting call may have half-written
    /// (poison-and-recover), so a follow-up call on the same session
    /// returns results bit-identical to a fresh session's.
    Internal {
        /// The pipeline stage the fault surfaced in (e.g. `"setup"`,
        /// `"search: level 2"`, `"rank"`, `"batch"`).
        stage: String,
        /// The workload name, when the fault occurred inside a per-layer
        /// search.
        layer: Option<String>,
        /// The caught panic message (best effort; non-string payloads are
        /// summarized).
        message: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Arch(e) => write!(f, "invalid architecture: {e}"),
            ScheduleError::Binding(e) => write!(f, "binding failed: {e}"),
            ScheduleError::NoValidMapping => write!(f, "no valid mapping found"),
            ScheduleError::InfeasibleLevel { stage } => {
                write!(f, "no feasible candidate at memory level {stage}")
            }
            ScheduleError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            ScheduleError::InvalidConstraints { reason } => {
                write!(f, "invalid mapping constraints: {reason}")
            }
            ScheduleError::InvalidMapping { reason } => {
                write!(f, "invalid mapping: {reason}")
            }
            ScheduleError::Cancelled => write!(f, "scheduling cancelled"),
            ScheduleError::BudgetExhausted => {
                write!(f, "time budget exhausted before a valid mapping was found")
            }
            ScheduleError::Internal { stage, layer, message } => {
                write!(f, "internal scheduler fault during {stage}")?;
                if let Some(layer) = layer {
                    write!(f, " (layer {layer:?})")?;
                }
                write!(f, ": {message}")
            }
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Arch(e) => Some(e),
            ScheduleError::Binding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ScheduleError {
    fn from(e: ArchError) -> Self {
        ScheduleError::Arch(e)
    }
}

impl From<BindingError> for ScheduleError {
    fn from(e: BindingError) -> Self {
        ScheduleError::Binding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert_eq!(ScheduleError::NoValidMapping.to_string(), "no valid mapping found");
        assert_eq!(
            ScheduleError::InfeasibleLevel { stage: 2 }.to_string(),
            "no feasible candidate at memory level 2"
        );
        assert_eq!(
            ScheduleError::InvalidConfig { reason: "beam width must be positive".into() }
                .to_string(),
            "invalid configuration: beam width must be positive"
        );
        assert_eq!(
            ScheduleError::InvalidConstraints { reason: "unknown level `L9`".into() }.to_string(),
            "invalid mapping constraints: unknown level `L9`"
        );
        assert_eq!(
            ScheduleError::InvalidMapping { reason: "levels do not match".into() }.to_string(),
            "invalid mapping: levels do not match"
        );
        assert_eq!(ScheduleError::Cancelled.to_string(), "scheduling cancelled");
        assert_eq!(
            ScheduleError::BudgetExhausted.to_string(),
            "time budget exhausted before a valid mapping was found"
        );
        assert_eq!(
            ScheduleError::Internal {
                stage: "search: level 1".into(),
                layer: Some("conv3".into()),
                message: "boom".into(),
            }
            .to_string(),
            "internal scheduler fault during search: level 1 (layer \"conv3\"): boom"
        );
        assert_eq!(
            ScheduleError::Internal { stage: "setup".into(), layer: None, message: "x".into() }
                .to_string(),
            "internal scheduler fault during setup: x"
        );
    }

    #[test]
    fn errors_are_cloneable_for_batch_replay() {
        let e = ScheduleError::Internal {
            stage: "batch".into(),
            layer: Some("l".into()),
            message: "m".into(),
        };
        assert_eq!(e.to_string(), e.clone().to_string());
    }

    #[test]
    fn arch_and_binding_errors_carry_a_source() {
        let e = ScheduleError::from(ArchError::NoMemory);
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("invalid architecture:"));
        assert!(ScheduleError::Cancelled.source().is_none());
    }

    #[test]
    fn implements_std_error_object_safely() {
        let boxed: Box<dyn Error> = Box::new(ScheduleError::BudgetExhausted);
        assert!(!boxed.to_string().is_empty());
    }
}
