//! Per-call controls: cooperative cancellation and progress reporting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A cooperative cancellation token.
///
/// Clone the token, hand one copy to
/// [`ScheduleOptions`](crate::ScheduleOptions) /
/// [`BatchOptions`](crate::BatchOptions), and call
/// [`cancel`](CancelToken::cancel) from any thread; the search observes
/// the flag at its stage boundaries and returns
/// [`ScheduleError::Cancelled`](crate::ScheduleError::Cancelled). A token
/// cancelled *before* the call starts fails the call deterministically.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One progress event of a scheduling call.
///
/// Level events come from the per-level walk of a single search; layer
/// events frame each unique shape of a
/// [`schedule_batch`](crate::Scheduler::schedule_batch) call (batch
/// workers run concurrently, so layer events may interleave).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ProgressEvent {
    /// A search stage (one memory level) is starting.
    LevelStarted {
        /// Stage index, innermost memory first.
        stage: usize,
        /// Beam states entering the stage.
        beam: usize,
    },
    /// A search stage finished its expand → dedup → estimate → select
    /// pipeline.
    LevelFinished {
        /// Stage index, innermost memory first.
        stage: usize,
        /// Candidates estimated at this stage.
        candidates: usize,
        /// Beam states surviving the cut.
        beam: usize,
        /// Fraction of this stage's estimates served by the session
        /// estimate cache.
        cache_hit_rate: f64,
        /// Candidates the user constraint filter removed at this stage
        /// (0 on unconstrained calls).
        constraint_filtered: u64,
    },
    /// A batch worker picked up one unique layer shape.
    LayerStarted {
        /// Index into the batch's *unique* shapes (not input positions).
        unique: usize,
        /// Name of the first workload with this shape.
        name: String,
    },
    /// A batch worker finished one unique layer shape.
    LayerFinished {
        /// Index into the batch's unique shapes.
        unique: usize,
        /// Mappings estimated while searching this shape.
        evaluated: u64,
        /// Wall-clock time of this shape's search.
        elapsed: Duration,
    },
    /// The panic-isolation boundary caught an internal fault; the call
    /// returns [`ScheduleError::Internal`](crate::ScheduleError::Internal)
    /// with the same fields after the session has recovered (the faulting
    /// call's cache context is evicted whole).
    Fault {
        /// The pipeline stage the fault surfaced in.
        stage: String,
        /// The workload name, for per-layer faults.
        layer: Option<String>,
        /// The caught panic message.
        message: String,
    },
}

/// Receives [`ProgressEvent`]s during a scheduling call.
///
/// Implementations must be `Send + Sync`: batch scheduling invokes the
/// sink from its worker threads. Callbacks should be cheap — they run on
/// the search's critical path.
pub trait ProgressSink: Send + Sync {
    /// Called once per event, in the emitting worker's order.
    fn on_event(&self, event: &ProgressEvent);
}

/// Convenience: closures are sinks.
impl<F: Fn(&ProgressEvent) + Send + Sync> ProgressSink for F {
    fn on_event(&self, event: &ProgressEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn closures_implement_progress_sink() {
        let events: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let sink = |e: &ProgressEvent| {
            if let ProgressEvent::LevelStarted { stage, .. } = e {
                events.lock().unwrap_or_else(|e| e.into_inner()).push(*stage);
            }
        };
        sink.on_event(&ProgressEvent::LevelStarted { stage: 3, beam: 1 });
        assert_eq!(*events.lock().unwrap_or_else(|e| e.into_inner()), vec![3]);
    }
}
