//! Deterministic fault injection for robustness tests.
//!
//! Compiled only under the `fault-injection` cargo feature; release and
//! default test builds pay nothing (the [`faultpoint!`] macro expands to
//! an empty statement without the feature).
//!
//! The scheduler's hot path is instrumented with **named failpoints**
//! ([`POINTS`]): the start of each estimate round, every pool claim, the
//! locked cache publish, and the per-parent prefix memoization. A test
//! arms a point with [`arm`] to fire a [`FaultAction`] on the Nth hit —
//! panic (exercising the panic-isolation boundary and the session's
//! poison-and-recover protocol), delay (widening race windows), or a
//! spurious [`CancelToken`] fire (exercising bounded-latency
//! cancellation). Arms are one-shot: after firing they disarm
//! themselves, so the recovery call of a soak test runs clean.
//!
//! The registry is a process-wide global; tests that arm failpoints must
//! serialize themselves (e.g. behind a shared `Mutex`) because cargo runs
//! tests of one binary concurrently.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use crate::progress::CancelToken;

/// Every failpoint compiled into the scheduler, in hot-path order:
///
/// * `"estimate.round"` — start of [`estimate_all`], before the probe
///   pass (fires once per search stage with any cache misses or hits);
/// * `"estimate.prefix"` — per miss considered by the bottom-up
///   decided-prefix memoization loop;
/// * `"pool.claim"` — per index claimed in a worker-pool round, on the
///   claiming thread (worker or submitter) *inside* the pool's panic
///   catch, so an injected panic surfaces exactly like a model panic;
/// * `"cache.insert"` — inside the locked publish of an estimate round,
///   while the session-cache mutex is held (exercises lock-poison
///   recovery);
/// * `"warm.store"` — inside the warm-start retention insert at the end
///   of a completed search, while the warm-retention mutex is held (the
///   second held-lock point: a panic here poisons a *different* mutex
///   than `"cache.insert"`, and the next call must still recover).
///
/// [`estimate_all`]: crate::search::estimate
pub const POINTS: &[&str] =
    &["estimate.round", "estimate.prefix", "pool.claim", "cache.insert", "warm.store"];

/// Failpoints owned by the `sunstone-serve` daemon, registered here so
/// every fault-injection test shares one registry (and one typo check):
///
/// * `"serve.handler_spawn"` — first statement of a freshly spawned
///   connection-handler thread, before the first frame is read (a panic
///   here must still unregister the connection and release its
///   admission slot);
/// * `"serve.frame_read"` — top of the per-connection request loop,
///   before each frame read;
/// * `"serve.store_append"` — *mid-write* of a store record, between the
///   two halves of the line, so an injected panic produces a genuine
///   short write (a torn record) on disk;
/// * `"serve.fsync"` — immediately before the store's `sync_data` call;
/// * `"serve.compact_rename"` — between writing a compacted shard's temp
///   file and the atomic rename that commits it.
///
/// These never fire from the scheduling library itself, so they live in
/// their own list: the library soak iterates [`POINTS`] and requires
/// every entry to be hit by a `schedule` call.
pub const SERVE_POINTS: &[&str] = &[
    "serve.handler_spawn",
    "serve.frame_read",
    "serve.store_append",
    "serve.fsync",
    "serve.compact_rename",
];

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Panic with the message `"injected fault at <point>"`.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Fire the given cancellation token, then continue normally.
    Cancel(CancelToken),
}

struct Armed {
    point: &'static str,
    /// Fires when the point's hit counter (reset by [`arm`]) reaches
    /// this 1-based value.
    nth: u64,
    action: FaultAction,
}

#[derive(Default)]
struct Registry {
    armed: Vec<Armed>,
    hits: HashMap<&'static str, u64>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    // An injected panic can unwind while a *different* thread holds this
    // lock mid-delay; recover from poisoning — the registry holds only
    // counters and arms, both valid at every await point.
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Arms `point` to fire `action` on its `nth` hit (1-based), resetting
/// the point's hit counter. One-shot: the arm disarms itself when it
/// fires. Re-arming a point replaces its previous arm.
///
/// # Panics
///
/// Panics if `point` is not one of the registered [`POINTS`] — a typo in
/// a test should fail loudly, not silently never fire.
pub fn arm(point: &'static str, nth: u64, action: FaultAction) {
    assert!(
        POINTS.contains(&point) || SERVE_POINTS.contains(&point),
        "unknown failpoint {point:?} (see faultpoint::POINTS and faultpoint::SERVE_POINTS)"
    );
    assert!(nth >= 1, "failpoints fire on a 1-based hit count");
    let mut reg = registry();
    reg.hits.insert(point, 0);
    reg.armed.retain(|a| a.point != point);
    reg.armed.push(Armed { point, nth, action });
}

/// Disarms every failpoint and clears all hit counters.
pub fn disarm_all() {
    let mut reg = registry();
    reg.armed.clear();
    reg.hits.clear();
}

/// Hits recorded at `point` since it was last armed or cleared.
pub fn hits(point: &str) -> u64 {
    registry().hits.get(point).copied().unwrap_or(0)
}

/// Records a hit at `point` and fires its armed action when the count
/// matches. Called via the `faultpoint!` macro; not meant for direct use.
#[doc(hidden)]
pub fn hit(point: &'static str) {
    let action = {
        let mut reg = registry();
        let count = reg.hits.entry(point).or_insert(0);
        *count += 1;
        let count = *count;
        match reg.armed.iter().position(|a| a.point == point && a.nth == count) {
            // Disarm before acting so a panic cannot re-fire on retry.
            Some(i) => reg.armed.swap_remove(i).action,
            None => return,
        }
    };
    match action {
        FaultAction::Panic => panic!("injected fault at {point}"),
        FaultAction::Delay(d) => std::thread::sleep(d),
        FaultAction::Cancel(token) => token.cancel(),
    }
}
