//! Network-level scheduling: a chain of layers with cross-layer layout
//! consistency.
//!
//! Scheduling each layer independently ignores a real cost: if layer
//! *i*'s output is laid out in DRAM differently from how layer *i+1*'s
//! mapping wants to read it, the activation must be reordered — a full
//! DRAM read+write pass (Section V-D of the paper). [`schedule_chain`]
//! keeps several near-optimal candidates per layer (the surviving beam)
//! and picks, layer by layer, the candidate whose consumption order
//! matches the producer's emission order, falling back to the best
//! standalone candidate when no match exists.
//!
//! Candidate generation rides on the session batch path
//! ([`Scheduler::schedule_batch_with`]): repeated layer shapes are
//! searched once and their candidate lists replayed per occurrence, the
//! unique shapes fan out across worker threads, and the layout pass then
//! selects per *occurrence* — so two occurrences of the same shape may
//! still pick different candidates, as their upstream layouts differ.

use serde::{Deserialize, Serialize};
use sunstone_arch::ArchSpec;
use sunstone_ir::Workload;
use sunstone_mapping::{Mapping, MappingLevel};

use crate::session::{BatchOptions, BatchStats, Scheduler};
use crate::{ScheduleError, ScheduleResult};

/// Options for [`schedule_chain`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainOptions {
    /// How many candidate mappings to keep per layer when looking for a
    /// layout match.
    pub candidates_per_layer: usize,
    /// Name of each layer's consumed activation tensor.
    pub consumer_tensor: String,
    /// Name of each layer's produced activation tensor.
    pub producer_tensor: String,
    /// Dimension renames applied to the producer's signature before
    /// comparison (for convolutions, the producer's `K` is the consumer's
    /// `C`).
    pub renames: Vec<(String, String)>,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            candidates_per_layer: 8,
            consumer_tensor: "ifmap".to_string(),
            producer_tensor: "ofmap".to_string(),
            renames: vec![("K".to_string(), "C".to_string())],
        }
    }
}

/// The result of scheduling a layer chain.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Per-layer schedules, in input order.
    pub layers: Vec<ScheduleResult>,
    /// Layer-to-layer transitions whose layouts matched (no reordering
    /// needed), out of `layers.len() − 1`. The first layer's input
    /// arrives in an external layout and is not counted either way.
    pub matched_transitions: usize,
    /// Activation words requiring a DRAM reordering pass across the whole
    /// chain.
    pub reorder_words: u64,
    /// Dedup/cache/parallelism statistics of the underlying batch call.
    pub batch: BatchStats,
}

impl ChainResult {
    /// Total EDP across the chain (sum of layer EDPs).
    pub fn total_edp(&self) -> f64 {
        self.layers.iter().map(|l| l.report.edp).sum()
    }
}

/// The DRAM-level traversal signature of a tensor under a mapping: the
/// outermost-first order of the dimensions (by name) that index the
/// tensor and iterate at the outermost memory, with `renames` applied.
pub fn layout_signature(
    workload: &Workload,
    mapping: &Mapping,
    tensor: &str,
    renames: &[(String, String)],
) -> Option<Vec<String>> {
    let t = workload.tensor_by_name(tensor)?;
    let indexing = workload.tensor(t).indexing_dims();
    let last = mapping.levels().len() - 1;
    let MappingLevel::Temporal(dram) = &mapping.levels()[last] else {
        return None;
    };
    Some(
        dram.order_outermost_first()
            .into_iter()
            .filter(|d| dram.factors[d.index()] > 1 && indexing.contains(*d))
            .map(|d| {
                let name = workload.dim(d).name();
                renames
                    .iter()
                    .find(|(from, _)| from == name)
                    .map(|(_, to)| to.clone())
                    .unwrap_or_else(|| name.to_string())
            })
            .collect(),
    )
}

/// Schedules a chain of layers with layout consistency; see the
/// [module documentation](self).
///
/// # Errors
///
/// Fails if any layer cannot be scheduled at all.
pub fn schedule_chain(
    scheduler: &Scheduler,
    layers: &[Workload],
    arch: &ArchSpec,
    options: &ChainOptions,
) -> Result<ChainResult, ScheduleError> {
    schedule_chain_with(scheduler, layers, arch, options, &BatchOptions::default())
}

/// [`schedule_chain`] with per-call batch controls (time budget,
/// cancellation, progress); `controls.top_k` is overridden by
/// `options.candidates_per_layer`.
///
/// # Errors
///
/// As [`schedule_chain`], plus cancellation and budget errors as in
/// [`Scheduler::schedule_batch_with`].
pub fn schedule_chain_with(
    scheduler: &Scheduler,
    layers: &[Workload],
    arch: &ArchSpec,
    options: &ChainOptions,
    controls: &BatchOptions,
) -> Result<ChainResult, ScheduleError> {
    let batch_opts = BatchOptions { top_k: options.candidates_per_layer, ..controls.clone() };
    let batch = scheduler.schedule_batch_with(layers, arch, &batch_opts)?;

    let mut results: Vec<ScheduleResult> = Vec::with_capacity(layers.len());
    let mut matched = 0usize;
    let mut reorder_words = 0u64;
    let mut producer_sig: Option<Vec<String>> = None;

    for (workload, candidates) in layers.iter().zip(batch.layers) {
        let pick = producer_sig
            .as_ref()
            .and_then(|sig| {
                candidates.iter().position(|c| {
                    layout_signature(workload, &c.mapping, &options.consumer_tensor, &[]).as_ref()
                        == Some(sig)
                })
            })
            .unwrap_or(0);
        // `pick` is in range whenever the batch upholds its non-empty
        // contract; a violation surfaces as a typed internal fault rather
        // than a panic (the chain is a public entry point).
        let chosen = candidates.into_iter().nth(pick).ok_or_else(|| ScheduleError::Internal {
            stage: "chain: layout selection".into(),
            layer: Some(workload.name().to_string()),
            message: "batch returned an empty candidate list".into(),
        })?;

        // Only layer-to-layer transitions count: the first layer's input
        // arrives in an external layout either way.
        if producer_sig.is_some() {
            let chosen_sig =
                layout_signature(workload, &chosen.mapping, &options.consumer_tensor, &[]);
            if chosen_sig == producer_sig {
                matched += 1;
            } else if let Some(t) = workload.tensor_by_name(&options.consumer_tensor) {
                reorder_words += workload.tensor(t).footprint(&workload.dim_sizes());
            }
        }
        producer_sig =
            layout_signature(workload, &chosen.mapping, &options.producer_tensor, &options.renames);
        results.push(chosen);
    }
    Ok(ChainResult {
        layers: results,
        matched_transitions: matched,
        reorder_words,
        batch: batch.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SunstoneConfig;
    use sunstone_arch::presets;

    fn conv(name: &str, n: u64, k: u64, c: u64, pq: u64) -> Workload {
        let mut b = Workload::builder(name);
        let nn = b.dim("N", n);
        let kk = b.dim("K", k);
        let cc = b.dim("C", c);
        let pp = b.dim("P", pq);
        let qq = b.dim("Q", pq);
        let rr = b.dim("R", 3);
        let ss = b.dim("S", 3);
        b.input("ifmap", [nn.expr(), cc.expr(), pp + rr, qq + ss]);
        b.input("weight", [kk.expr(), cc.expr(), rr.expr(), ss.expr()]);
        b.output("ofmap", [nn.expr(), kk.expr(), pp.expr(), qq.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn chain_scheduling_matches_or_charges_reordering() {
        let arch = presets::conventional();
        let layers =
            vec![conv("l1", 2, 32, 16, 14), conv("l2", 2, 32, 32, 14), conv("l3", 2, 64, 32, 14)];
        let scheduler = Scheduler::new(SunstoneConfig::default());
        let chain = schedule_chain(&scheduler, &layers, &arch, &ChainOptions::default()).unwrap();
        assert_eq!(chain.layers.len(), 3);
        assert!(chain.total_edp() > 0.0);
        assert_eq!(chain.batch.layers, 3);
        assert_eq!(chain.batch.unique_shapes, 3);
        // Either every transition matched (no reorder) or the mismatches
        // were charged.
        assert!(chain.matched_transitions < layers.len());
        if chain.matched_transitions < layers.len() - 1 {
            assert!(chain.reorder_words > 0);
        } else {
            assert_eq!(chain.reorder_words, 0);
        }
    }

    #[test]
    fn chain_never_costs_more_edp_than_independent_plus_tiny_slack() {
        let arch = presets::conventional();
        let layers = vec![conv("l1", 2, 32, 16, 14), conv("l2", 2, 32, 32, 14)];
        let scheduler = Scheduler::new(SunstoneConfig::default());
        let chain = schedule_chain(&scheduler, &layers, &arch, &ChainOptions::default()).unwrap();
        let independent: f64 =
            layers.iter().map(|w| scheduler.schedule(w, &arch).unwrap().report.edp).sum();
        // Layout matching only ever picks among near-optimal candidates.
        assert!(chain.total_edp() <= independent * 1.25, "{} vs {independent}", chain.total_edp());
    }

    #[test]
    fn chain_dedups_repeated_shapes_but_selects_per_occurrence() {
        let arch = presets::conventional();
        // l2 and l3 share a shape (names differ); the batch searches it
        // once and the layout pass still selects per occurrence.
        let layers =
            vec![conv("l1", 2, 32, 16, 14), conv("l2", 2, 32, 32, 14), conv("l3", 2, 32, 32, 14)];
        let scheduler = Scheduler::new(SunstoneConfig::default());
        let chain = schedule_chain(&scheduler, &layers, &arch, &ChainOptions::default()).unwrap();
        assert_eq!(chain.layers.len(), 3);
        assert_eq!(chain.batch.unique_shapes, 2);
        assert_eq!(chain.batch.dedup_hits, 1);
    }

    #[test]
    fn signature_applies_renames() {
        let arch = presets::conventional();
        let w = conv("l", 2, 32, 16, 14);
        let scheduler = Scheduler::new(SunstoneConfig::default());
        let r = scheduler.schedule(&w, &arch).unwrap();
        let sig = layout_signature(&w, &r.mapping, "ofmap", &[("K".to_string(), "C".to_string())])
            .unwrap();
        assert!(!sig.iter().any(|n| n == "K"), "K renamed to C: {sig:?}");
    }
}
