//! Resolving [`MappingConstraints`] against a concrete problem.
//!
//! The public constraint types ([`sunstone_mapping::constraints`]) name
//! levels and dimensions symbolically so one template applies across
//! workloads. The search needs the opposite shape: per architecture
//! *position*, the dimension sets and factor pins as raw indices, checked
//! once up front. [`ResolvedConstraints::resolve`] performs that
//! translation and rejects every statically unsatisfiable set with
//! [`ScheduleError::InvalidConstraints`] — the enumerators then apply the
//! resolved form *inside* enumeration (see [`crate::search`]), before any
//! beam or alpha-beta pruning sees a forbidden candidate.

use sunstone_arch::{ArchSpec, LevelId};
use sunstone_ir::{DimId, DimSet, TensorId, Workload};
use sunstone_mapping::constraints::{resolve_caps, resolve_pins, resolve_union};
use sunstone_mapping::{ConstraintError, MappingConstraints};

use crate::error::ScheduleError;

/// Resolved constraint data of one architecture position (spatial fields
/// for fabrics, tile/order fields for memories), raw-indexed.
#[derive(Debug, Clone)]
pub(crate) struct LevelConstraints {
    /// Fabrics: the only dimensions allowed to unroll here (pins
    /// included); `None` leaves the fabric unconstrained.
    pub(crate) unroll_allow: Option<DimSet>,
    /// Fabrics: exact per-dimension unroll factors.
    pub(crate) unroll_pins: Vec<(usize, u64)>,
    /// The pinned dimensions of `unroll_pins`, as a set.
    pub(crate) unroll_pinned: DimSet,
    /// Product of the pinned unroll factors (1 when nothing is pinned);
    /// validated to not exceed the fabric's unit count.
    pub(crate) unroll_pin_product: u64,
    /// Memories: exact resident-tile extents.
    pub(crate) tile_pins: Vec<(usize, u64)>,
    /// Memories: resident-tile upper bounds.
    pub(crate) tile_caps: Vec<(usize, u64)>,
    /// Memories: forced innermost loop groups (innermost first) plus the
    /// exact flag of [`OrderConstraint`](sunstone_mapping::OrderConstraint).
    pub(crate) order: Option<(Vec<DimSet>, bool)>,
}

impl Default for LevelConstraints {
    fn default() -> Self {
        LevelConstraints {
            unroll_allow: None,
            unroll_pins: Vec::new(),
            unroll_pinned: DimSet::EMPTY,
            unroll_pin_product: 1,
            tile_pins: Vec::new(),
            tile_caps: Vec::new(),
            order: None,
        }
    }
}

/// A constraint set resolved against one (workload, architecture) pair,
/// indexed by architecture position. Statically valid by construction.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedConstraints {
    levels: Vec<LevelConstraints>,
    /// Bypass overrides as `(level, tensor, tensor name)`, applied to the
    /// [`Binding`](sunstone_arch::Binding) before the search starts.
    pub(crate) bypass: Vec<(LevelId, TensorId, String)>,
    empty: bool,
}

/// Shorthand for the typed rejection every resolution failure maps to.
fn invalid(e: ConstraintError) -> ScheduleError {
    ScheduleError::InvalidConstraints { reason: e.to_string() }
}

fn unsat(reason: String) -> ScheduleError {
    invalid(ConstraintError::Unsatisfiable { reason })
}

impl ResolvedConstraints {
    /// Whether the originating constraint set was empty — the fast path
    /// every enumerator checks before touching constraint state.
    pub(crate) fn is_empty(&self) -> bool {
        self.empty
    }

    /// The resolved constraints of the level at architecture position
    /// `pos`.
    pub(crate) fn at(&self, pos: usize) -> &LevelConstraints {
        &self.levels[pos]
    }

    /// Resolves and validates `constraints` for one problem.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConstraints`] for unknown level, dimension
    /// or tensor names, constraints on levels of the wrong kind (unroll on
    /// a memory, tile on a fabric), restrictions the walk cannot honor
    /// (ordering the innermost memory, pinning the outermost memory's
    /// tile, bypassing the outermost memory), and statically unsatisfiable
    /// sets (conflicting or non-dividing pins, over-subscribed fabrics,
    /// overlapping order groups, pins above caps).
    pub(crate) fn resolve(
        constraints: &MappingConstraints,
        workload: &Workload,
        arch: &ArchSpec,
    ) -> Result<Self, ScheduleError> {
        let mut levels: Vec<LevelConstraints> =
            (0..arch.num_levels()).map(|_| LevelConstraints::default()).collect();
        let mut bypass = Vec::new();
        if constraints.is_empty() {
            return Ok(ResolvedConstraints { levels, bypass, empty: true });
        }
        let find = |name: &str| -> Result<usize, ScheduleError> {
            (0..arch.num_levels())
                .find(|&p| arch.level(LevelId(p)).name() == name)
                .ok_or_else(|| invalid(ConstraintError::UnknownLevel { name: name.to_string() }))
        };
        let innermost_mem = arch.memory_levels().next().map(|(id, _)| id.index());
        let outermost_mem = arch.memory_levels().last().map(|(id, _)| id.index());

        for uc in &constraints.unroll {
            let pos = find(&uc.level)?;
            if arch.level(LevelId(pos)).as_spatial().is_none() {
                return Err(invalid(ConstraintError::NotSpatial { level: uc.level.clone() }));
            }
            let pins = resolve_pins(&uc.pins, workload, "unroll", &uc.level).map_err(invalid)?;
            let lc = &mut levels[pos];
            for (d, v) in pins {
                match lc.unroll_pins.iter().find(|(e, _)| *e == d.index()) {
                    Some((_, prev)) if *prev != v => {
                        return Err(unsat(format!(
                            "conflicting unroll pins for dimension `{}` at `{}`: {prev} vs {v}",
                            workload.dim(d).name(),
                            uc.level
                        )));
                    }
                    Some(_) => {}
                    None => lc.unroll_pins.push((d.index(), v)),
                }
            }
            if let Some(refs) = &uc.allow {
                let set = resolve_union(refs, workload).map_err(invalid)?;
                lc.unroll_allow = Some(match lc.unroll_allow {
                    Some(prev) => prev.intersection(set),
                    None => set,
                });
            }
        }
        // Per-fabric pin validation: each pin must divide its dimension,
        // respect the fabric's reduction capability, and jointly fit the
        // fabric; pinned dimensions are implicitly allowed.
        for (pos, lc) in levels.iter_mut().enumerate() {
            if lc.unroll_pins.is_empty() {
                continue;
            }
            let fabric = arch.level(LevelId(pos)).as_spatial().expect("checked spatial above");
            let mut product: u128 = 1;
            for &(d, v) in &lc.unroll_pins {
                let dim = workload.dim(DimId::from_index(d));
                if v == 0 || !dim.size().is_multiple_of(v) {
                    return Err(unsat(format!(
                        "unroll pin {v} for `{}` at `{}` does not divide the extent {}",
                        dim.name(),
                        arch.level(LevelId(pos)).name(),
                        dim.size()
                    )));
                }
                if !fabric.allow_reduction
                    && workload.reduction_dims().contains(DimId::from_index(d))
                    && v > 1
                {
                    return Err(unsat(format!(
                        "unroll pin for reduction dimension `{}` at `{}`, which cannot \
                         spatially reduce",
                        dim.name(),
                        arch.level(LevelId(pos)).name()
                    )));
                }
                product *= u128::from(v);
                lc.unroll_pinned = lc.unroll_pinned.with(DimId::from_index(d));
            }
            if product > u128::from(fabric.units) {
                return Err(unsat(format!(
                    "unroll pins multiply to {product}, exceeding the {} units of `{}`",
                    fabric.units,
                    arch.level(LevelId(pos)).name()
                )));
            }
            lc.unroll_pin_product = product as u64;
            if let Some(a) = lc.unroll_allow {
                lc.unroll_allow = Some(a.union(lc.unroll_pinned));
            }
        }

        for oc in &constraints.order {
            let pos = find(&oc.level)?;
            if arch.level(LevelId(pos)).as_memory().is_none() {
                return Err(invalid(ConstraintError::NotMemory { level: oc.level.clone() }));
            }
            if Some(pos) == innermost_mem {
                return Err(unsat(format!(
                    "the loop order of the innermost memory `{}` is not enumerated and \
                     cannot be constrained",
                    oc.level
                )));
            }
            if levels[pos].order.is_some() {
                return Err(unsat(format!("multiple order constraints on `{}`", oc.level)));
            }
            let mut groups = Vec::with_capacity(oc.inner.len());
            for r in &oc.inner {
                groups.push(r.resolve(workload).map_err(invalid)?);
            }
            for i in 0..groups.len() {
                for j in i + 1..groups.len() {
                    if !groups[i].is_disjoint(groups[j]) {
                        return Err(unsat(format!("overlapping order groups at `{}`", oc.level)));
                    }
                }
            }
            levels[pos].order = Some((groups, oc.exact));
        }

        for tc in &constraints.tile {
            let pos = find(&tc.level)?;
            if arch.level(LevelId(pos)).as_memory().is_none() {
                return Err(invalid(ConstraintError::NotMemory { level: tc.level.clone() }));
            }
            if Some(pos) == outermost_mem {
                return Err(unsat(format!(
                    "the outermost memory `{}` always holds the full problem; its tile \
                     cannot be pinned or capped",
                    tc.level
                )));
            }
            let pins = resolve_pins(&tc.pins, workload, "tile", &tc.level).map_err(invalid)?;
            let caps = resolve_caps(&tc.caps, workload).map_err(invalid)?;
            let lc = &mut levels[pos];
            for (d, v) in pins {
                let dim = workload.dim(d);
                if v == 0 || !dim.size().is_multiple_of(v) {
                    return Err(unsat(format!(
                        "tile pin {v} for `{}` at `{}` does not divide the extent {}",
                        dim.name(),
                        tc.level,
                        dim.size()
                    )));
                }
                match lc.tile_pins.iter().find(|(e, _)| *e == d.index()) {
                    Some((_, prev)) if *prev != v => {
                        return Err(unsat(format!(
                            "conflicting tile pins for dimension `{}` at `{}`: {prev} vs {v}",
                            dim.name(),
                            tc.level
                        )));
                    }
                    Some(_) => {}
                    None => lc.tile_pins.push((d.index(), v)),
                }
            }
            for (d, v) in caps {
                if v == 0 {
                    return Err(unsat(format!(
                        "tile cap 0 for `{}` at `{}` admits no tile",
                        workload.dim(d).name(),
                        tc.level
                    )));
                }
                match lc.tile_caps.iter_mut().find(|(e, _)| *e == d.index()) {
                    Some((_, prev)) => *prev = (*prev).min(v),
                    None => lc.tile_caps.push((d.index(), v)),
                }
            }
            for &(d, pin) in &lc.tile_pins {
                if let Some(&(_, cap)) = lc.tile_caps.iter().find(|(e, _)| *e == d) {
                    if pin > cap {
                        return Err(unsat(format!(
                            "tile pin {pin} exceeds cap {cap} for `{}` at `{}`",
                            workload.dim(DimId::from_index(d)).name(),
                            tc.level
                        )));
                    }
                }
            }
        }
        // Resident tiles nest: a pin at an inner memory must divide any
        // pin — and respect any cap — of every memory above it.
        let mems: Vec<usize> = arch.memory_levels().map(|(id, _)| id.index()).collect();
        for (i, &inner) in mems.iter().enumerate() {
            for &outer in &mems[i + 1..] {
                for &(d, pv) in &levels[inner].tile_pins {
                    if let Some(&(_, ov)) = levels[outer].tile_pins.iter().find(|(e, _)| *e == d) {
                        if ov % pv != 0 {
                            return Err(unsat(format!(
                                "tile pin {pv} at `{}` does not divide pin {ov} at `{}` \
                                 for dimension `{}`",
                                arch.level(LevelId(inner)).name(),
                                arch.level(LevelId(outer)).name(),
                                workload.dim(DimId::from_index(d)).name()
                            )));
                        }
                    }
                    if let Some(&(_, cap)) = levels[outer].tile_caps.iter().find(|(e, _)| *e == d) {
                        if cap < pv {
                            return Err(unsat(format!(
                                "tile pin {pv} at `{}` exceeds cap {cap} at the outer \
                                 memory `{}` for dimension `{}`",
                                arch.level(LevelId(inner)).name(),
                                arch.level(LevelId(outer)).name(),
                                workload.dim(DimId::from_index(d)).name()
                            )));
                        }
                    }
                }
            }
        }

        for b in &constraints.bypass {
            let pos = find(&b.level)?;
            if arch.level(LevelId(pos)).as_memory().is_none() {
                return Err(invalid(ConstraintError::NotMemory { level: b.level.clone() }));
            }
            let tensor = workload.tensor_by_name(&b.tensor).ok_or_else(|| {
                invalid(ConstraintError::UnknownTensor { name: b.tensor.clone() })
            })?;
            if Some(pos) == outermost_mem {
                return Err(unsat(format!(
                    "tensor `{}` cannot bypass the outermost memory `{}`",
                    b.tensor, b.level
                )));
            }
            bypass.push((LevelId(pos), tensor, b.tensor.clone()));
        }

        Ok(ResolvedConstraints { levels, bypass, empty: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;
    use sunstone_mapping::DimRef;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn empty_resolves_empty() {
        let w = conv1d();
        let arch = presets::conventional();
        let r = ResolvedConstraints::resolve(&MappingConstraints::default(), &w, &arch).unwrap();
        assert!(r.is_empty());
        assert!(r.bypass.is_empty());
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let w = conv1d();
        let arch = presets::conventional();
        for c in [
            MappingConstraints::new().allow_unroll("nope", [DimRef::named("C")]),
            MappingConstraints::new().allow_unroll("pe_grid", [DimRef::named("Z")]),
            MappingConstraints::new().bypass("L1", "bias"),
        ] {
            let err = ResolvedConstraints::resolve(&c, &w, &arch).unwrap_err();
            assert!(matches!(err, ScheduleError::InvalidConstraints { .. }), "{err}");
        }
    }

    #[test]
    fn wrong_level_kinds_are_rejected() {
        let w = conv1d();
        let arch = presets::conventional();
        for c in [
            MappingConstraints::new().allow_unroll("L1", [DimRef::named("C")]),
            MappingConstraints::new().pin_tile("pe_grid", DimRef::named("C"), 2),
            MappingConstraints::new().order_inner("pe_grid", [DimRef::named("C")]),
        ] {
            assert!(ResolvedConstraints::resolve(&c, &w, &arch).is_err());
        }
    }

    #[test]
    fn non_dividing_and_oversubscribed_pins_are_unsatisfiable() {
        let w = conv1d();
        let arch = presets::conventional();
        let nondiv = MappingConstraints::new().pin_unroll("pe_grid", DimRef::named("C"), 3);
        assert!(ResolvedConstraints::resolve(&nondiv, &w, &arch).is_err());
        let conflict = MappingConstraints::new()
            .pin_unroll("pe_grid", DimRef::named("C"), 2)
            .pin_unroll("pe_grid", DimRef::named("C"), 4);
        assert!(ResolvedConstraints::resolve(&conflict, &w, &arch).is_err());
    }

    #[test]
    fn innermost_order_and_outermost_tile_are_rejected() {
        let w = conv1d();
        let arch = presets::conventional();
        let inner = arch.memory_levels().next().unwrap().1.name.clone();
        let outer = arch.memory_levels().last().unwrap().1.name.clone();
        let c = MappingConstraints::new().order_inner(inner, [DimRef::named("C")]);
        assert!(ResolvedConstraints::resolve(&c, &w, &arch).is_err());
        let c = MappingConstraints::new().pin_tile(outer.clone(), DimRef::named("C"), 2);
        assert!(ResolvedConstraints::resolve(&c, &w, &arch).is_err());
        let c = MappingConstraints::new().bypass(outer, "weight");
        assert!(ResolvedConstraints::resolve(&c, &w, &arch).is_err());
    }

    #[test]
    fn valid_set_resolves_per_position() {
        let w = conv1d();
        let arch = presets::conventional();
        let c = w.dim_by_name("C").unwrap();
        let k = w.dim_by_name("K").unwrap();
        let set = MappingConstraints::new()
            .allow_unroll("pe_grid", [DimRef::named("C"), DimRef::named("K")])
            .pin_unroll("pe_grid", DimRef::named("C"), 4)
            .cap_tile("L1", DimRef::named("P"), 7);
        let r = ResolvedConstraints::resolve(&set, &w, &arch).unwrap();
        assert!(!r.is_empty());
        let grid =
            (0..arch.num_levels()).find(|&p| arch.level(LevelId(p)).name() == "pe_grid").unwrap();
        let lc = r.at(grid);
        assert_eq!(lc.unroll_allow, Some(DimSet::EMPTY.with(c).with(k)));
        assert_eq!(lc.unroll_pins, vec![(c.index(), 4)]);
        assert_eq!(lc.unroll_pin_product, 4);
        let l1 = (0..arch.num_levels()).find(|&p| arch.level(LevelId(p)).name() == "L1").unwrap();
        assert_eq!(r.at(l1).tile_caps, vec![(w.dim_by_name("P").unwrap().index(), 7)]);
    }
}
