//! A session-persistent worker pool for the estimate and batch fan-outs.
//!
//! The search previously spawned a fresh `std::thread::scope` per
//! estimate round — thousands of OS thread spawns per schedule call. The
//! [`WorkerPool`] keeps `threads − 1` long-lived workers alive for the
//! whole [`Scheduler`](crate::Scheduler) session; a round becomes one
//! queue push plus atomic index claiming.
//!
//! Design invariants:
//!
//! * **Caller participation** — [`WorkerPool::run`] claims indices on the
//!   submitting thread too, so a pool with zero workers degenerates to a
//!   plain sequential loop, and *nested* `run` calls (a batch-layer task
//!   driving its own estimate rounds) always make progress: every caller
//!   drives its own job to completion regardless of what the workers are
//!   busy with.
//! * **Deterministic write-back** — work items are identified by index;
//!   tasks write results into index-disjoint slots (see [`SliceWriter`]),
//!   so results are bit-identical for any thread count.
//! * **Panic safety** — a panicking task marks the job and the panic is
//!   re-raised on the submitting thread after the round drains; workers
//!   survive (the panic is caught at the claim loop).

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued fan-out: `total` indices to feed to `task`, claimed in
/// contiguous ranges of `chunk` indices at a time.
struct Job {
    /// The task closure, lifetime-erased. Soundness: `WorkerPool::run`
    /// does not return before `pending` hits zero, and after that no
    /// thread dereferences the pointer again (every claim checks the
    /// bound *before* calling the task), so the borrow outlives every
    /// call through it.
    task: *const (dyn Fn(std::ops::Range<usize>) + Sync),
    total: usize,
    /// Indices claimed per atomic grab; 1 reproduces per-index claiming.
    chunk: usize,
    /// Next index to claim (may grow past `total`; claims re-check).
    next: AtomicUsize,
    /// Indices claimed but not yet completed, plus those never claimed.
    pending: AtomicUsize,
    /// Some task panicked; the submitter re-raises after the drain.
    panicked: AtomicBool,
    /// The first caught panic's message, so the submitter's re-raise (and
    /// ultimately [`ScheduleError::Internal`](crate::ScheduleError)) can
    /// report the original fault instead of a generic pool message.
    panic_note: Mutex<Option<String>>,
    done: Mutex<()>,
    done_cv: Condvar,
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`/`assert!`/`expect`; anything else is
/// summarized).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// SAFETY: `task` is only called while the submitting thread keeps the
// underlying closure alive (see the field comment); the closure itself is
// `Sync`, and all other fields are atomics or sync primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs index ranges until the job is exhausted. Returns
    /// once no range is left to claim (other claimants may still be
    /// running).
    fn drain(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.total {
                return;
            }
            let end = (start + self.chunk).min(self.total);
            // SAFETY: `start < total`, so `pending > 0` and the submitter
            // is still inside `run`, keeping the closure alive.
            let task = unsafe { &*self.task };
            // The claim failpoint fires *inside* the catch: an injected
            // panic must surface exactly like a task panic (marking the
            // job, never killing the claiming worker thread).
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                faultpoint!("pool.claim");
                task(start..end)
            }));
            if let Err(payload) = outcome {
                self.panicked.store(true, Ordering::Relaxed);
                // Poison recovery: the note mutex holds a plain Option,
                // valid at every point, so a poisoned lock is harmless.
                let mut note = self.panic_note.lock().unwrap_or_else(|e| e.into_inner());
                if note.is_none() {
                    *note = Some(panic_message(payload.as_ref()));
                }
            }
            if self.pending.fetch_sub(end - start, Ordering::AcqRel) == end - start {
                // Lock-bridge the notification so the submitter is either
                // before its re-check (and sees zero) or parked (and woken).
                // The mutex guards no data (`()`), so poisoning — possible
                // if the submitter's re-raise unwinds while parked — is
                // recoverable by definition.
                let _g = self.done.lock().unwrap_or_else(|e| e.into_inner());
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }
}

struct Shared {
    queue: Mutex<State>,
    work_cv: Condvar,
}

struct State {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

/// A fixed-size pool of long-lived worker threads executing indexed
/// fan-outs. See the module docs for the invariants.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Fan-out rounds executed (including inline ones).
    rounds: AtomicU64,
    /// Thread spawns a per-round `std::thread::scope` would have paid.
    spawns_avoided: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` background threads (0 is valid: every
    /// `run` then executes inline on the submitting thread).
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { jobs: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sunstone-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            rounds: AtomicU64::new(0),
            spawns_avoided: AtomicU64::new(0),
        }
    }

    /// Number of background workers (the submitting thread adds one more
    /// claimant to every round).
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `task(i)` for every `i in 0..total`, distributed over the
    /// workers and the calling thread, and returns when all are done.
    /// Panics (on the calling thread) if any task panicked.
    pub(crate) fn run(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        self.run_chunked(total, 1, &|range: std::ops::Range<usize>| {
            for i in range {
                task(i);
            }
        });
    }

    /// Runs `task(start..end)` over every contiguous `chunk`-sized range
    /// of `0..total` (the final range may be shorter), distributed over
    /// the workers and the calling thread, and returns when all are done.
    /// Claimants grab whole ranges with one atomic op, so tasks that
    /// batch-process their range amortize both the claim and any
    /// per-dispatch setup. Panics (on the calling thread) if any task
    /// panicked.
    pub(crate) fn run_chunked(
        &self,
        total: usize,
        chunk: usize,
        task: &(dyn Fn(std::ops::Range<usize>) + Sync),
    ) {
        if total == 0 {
            return;
        }
        let chunk = chunk.max(1);
        let n_chunks = total.div_ceil(chunk);
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.spawns_avoided
            .fetch_add((self.workers.len() + 1).min(n_chunks) as u64, Ordering::Relaxed);
        if self.workers.is_empty() {
            let mut start = 0;
            while start < total {
                let end = (start + chunk).min(total);
                // Mirror the worker claim loop's failpoint so fault tests
                // behave identically with an inline (zero-worker) pool; an
                // injected panic propagates directly on the caller.
                faultpoint!("pool.claim");
                task(start..end);
                start = end;
            }
            return;
        }
        // SAFETY: erase the borrow's lifetime; `run_chunked` keeps the
        // closure alive until `pending == 0` (see `Job::task`).
        let task: *const (dyn Fn(std::ops::Range<usize>) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(std::ops::Range<usize>) + Sync),
                &'static (dyn Fn(std::ops::Range<usize>) + Sync),
            >(task)
        };
        let job = Arc::new(Job {
            task,
            total,
            chunk,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(total),
            panicked: AtomicBool::new(false),
            panic_note: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        {
            let mut st = lock_queue(&self.shared);
            st.jobs.push_back(Arc::clone(&job));
        }
        self.shared.work_cv.notify_all();
        job.drain();
        // Poison recovery throughout the drain protocol: the `done` mutex
        // guards no data and the queue state is a plain job list, both
        // valid at every unwind point. A panic anywhere in the session
        // (injected faults included) must degrade to a caught error on the
        // submitter, never to a poisoned-mutex abort of a later round.
        let mut g = job.done.lock().unwrap_or_else(|e| e.into_inner());
        while job.pending.load(Ordering::Acquire) > 0 {
            g = job.done_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        drop(g);
        {
            // Drop our queue entry eagerly so the erased pointer never
            // outlives this call in the shared state.
            let mut st = lock_queue(&self.shared);
            st.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        }
        if job.panicked.load(Ordering::Relaxed) {
            let note = job
                .panic_note
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .unwrap_or_else(|| "unknown".to_string());
            panic!("worker pool task panicked: {note}");
        }
    }

    /// Fan-out rounds executed so far.
    pub(crate) fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Thread spawns avoided so far versus a per-round `thread::scope`.
    pub(crate) fn spawns_avoided(&self) -> u64 {
        self.spawns_avoided.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_queue(&self.shared);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Locks the pool's queue state, recovering from poisoning. The state is
/// a plain job list plus a shutdown flag — valid at every unwind point —
/// and the queue must stay usable after a panic unwound through a lock
/// holder (shutdown in particular must always be deliverable, or `Drop`
/// would deadlock the workers).
fn lock_queue(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.queue.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = lock_queue(shared);
            loop {
                if st.shutdown {
                    return;
                }
                // Pop exhausted fronts left over from completed rounds.
                while st.jobs.front().is_some_and(|j| j.exhausted()) {
                    st.jobs.pop_front();
                }
                if let Some(job) = st.jobs.front() {
                    break Arc::clone(job);
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.drain();
    }
}

/// Shared-slice writer for index-disjoint result write-back: each task
/// writes only its own slot, so no synchronization is needed and the
/// result layout is independent of scheduling order.
pub(crate) struct SliceWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: tasks write disjoint indices (caller contract of `write`).
unsafe impl<T: Send> Send for SliceWriter<'_, T> {}
unsafe impl<T: Send> Sync for SliceWriter<'_, T> {}

impl<'a, T> SliceWriter<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        SliceWriter { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// Each index must be written by at most one task per round (no two
    /// concurrent writers to the same slot).
    pub(crate) unsafe fn write(&self, i: usize, value: T) {
        // True invariant (the pool only feeds indices `< len`), kept as a
        // hard assert because an out-of-bounds write would be UB — there
        // is no graceful degradation from memory corruption.
        assert!(i < self.len);
        // SAFETY: in-bounds (asserted) and index-disjoint (caller contract).
        unsafe { *self.ptr.add(i) = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let mut out = vec![0usize; 17];
        let w = SliceWriter::new(&mut out);
        pool.run(17, &|i| unsafe { w.write(i, i * 2) });
        assert_eq!(out, (0..17).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.rounds(), 1);
    }

    #[test]
    fn pool_covers_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..50 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 50));
        assert_eq!(pool.rounds(), 50);
        assert_eq!(pool.spawns_avoided(), 50 * 4);
    }

    #[test]
    fn chunked_run_covers_every_index_in_contiguous_ranges() {
        for workers in [0, 3] {
            let pool = WorkerPool::new(workers);
            for (total, chunk) in [(1000, 32), (17, 5), (8, 64), (64, 64), (9, 1)] {
                let hits: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
                pool.run_chunked(total, chunk, &|range| {
                    assert!(range.start % chunk == 0, "ranges start on chunk boundaries");
                    assert!(range.len() <= chunk);
                    assert!(range.end == range.start + chunk || range.end == total);
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "workers={workers} total={total} chunk={chunk}: some index missed or doubled"
                );
            }
        }
    }

    #[test]
    fn chunked_spawns_avoided_counts_claimants_not_indices() {
        let pool = WorkerPool::new(3);
        // 100 indices in chunks of 50 → only 2 chunks → 2 claimants max.
        pool.run_chunked(100, 50, &|_| {});
        assert_eq!(pool.spawns_avoided(), 2);
        assert_eq!(pool.rounds(), 1);
    }

    #[test]
    fn chunked_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_chunked(64, 8, &|range| {
                if range.contains(&19) {
                    panic!("chunk exploded");
                }
            });
        }))
        .expect_err("panic propagates");
        assert!(panic_message(caught.as_ref()).contains("chunk exploded"));
        // The pool survives and keeps working.
        let n = AtomicU32::new(0);
        pool.run_chunked(8, 4, &|range| {
            n.fetch_add(range.len() as u32, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_runs_complete() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = AtomicU32::new(0);
        let inner_pool = Arc::clone(&pool);
        pool.run(4, &|_| {
            inner_pool.run(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn pool_panic_carries_original_message() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 3 {
                    panic!("model exploded");
                }
            });
        }))
        .expect_err("panic propagates");
        assert!(panic_message(caught.as_ref()).contains("model exploded"));
    }

    #[test]
    fn pool_task_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool survives and keeps working.
        let n = AtomicU32::new(0);
        pool.run(8, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }
}
