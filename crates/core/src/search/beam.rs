//! Beam maintenance: duplicate elimination and the alpha-beta-style cut.

use sunstone_ir::FxHashSet;
use sunstone_mapping::{Mapping, MappingLevel};

use super::stats::SearchStats;
use super::PartialState;

/// A mapping's search identity: every level's factors plus each temporal
/// level's loop order. Two mappings with equal keys are the same point in
/// the space — the key drives both candidate dedup and the estimate
/// cache.
pub(crate) fn mapping_key(m: &Mapping) -> Vec<u64> {
    let mut key = Vec::with_capacity(key_capacity(m));
    write_key(m, usize::MAX, &[], &mut key);
    key
}

/// Writes into `key` what [`mapping_key`] would return for the mapping
/// *as completed*: the temporal level at `complete_at` with its factors
/// multiplied by the remaining `quotas`. Lets the estimate cache probe a
/// candidate without cloning and completing the whole mapping first.
pub(crate) fn completed_key(m: &Mapping, complete_at: usize, quotas: &[u64], key: &mut Vec<u64>) {
    key.clear();
    key.reserve(key_capacity(m));
    write_key(m, complete_at, quotas, key);
}

fn key_capacity(m: &Mapping) -> usize {
    // Factors per level, plus as many order entries for temporal levels.
    m.levels().iter().map(|l| l.factors().len() * 2).sum()
}

fn write_key(m: &Mapping, complete_at: usize, quotas: &[u64], key: &mut Vec<u64>) {
    for (p, level) in m.levels().iter().enumerate() {
        if p == complete_at {
            key.extend(level.factors().iter().zip(quotas).map(|(f, q)| f * q));
        } else {
            key.extend_from_slice(level.factors());
        }
        if let MappingLevel::Temporal(t) = level {
            key.extend(t.order.iter().map(|d| d.index() as u64));
        }
    }
}

/// Removes duplicate partial mappings, returning how many were dropped:
/// different enumeration paths (e.g. the principled and relaxed unroll
/// passes) can emit identical candidates, and estimating each copy is
/// pure waste.
pub(crate) fn dedup(candidates: &mut Vec<PartialState>) -> usize {
    let before = candidates.len();
    let mut seen: FxHashSet<Vec<u64>> =
        FxHashSet::with_capacity_and_hasher(before, Default::default());
    candidates.retain(|c| seen.insert(mapping_key(&c.mapping)));
    before - candidates.len()
}

/// Keeps the `beam_width` best-estimated candidates, recording the cut in
/// the stage's beam counter. The sort is stable and the estimates are
/// totally ordered, so the survivors do not depend on thread count or
/// enumeration accidents beyond the (deterministic) candidate order.
pub(crate) fn select(
    candidates: &mut Vec<PartialState>,
    beam_width: usize,
    stage: usize,
    stats: &mut SearchStats,
) {
    let considered = candidates.len() as u64;
    candidates.sort_by(|a, b| a.estimate.total_cmp(&b.estimate));
    candidates.truncate(beam_width.max(1));
    stats.level_mut(stage).beam.record(considered, candidates.len() as u64);
}
