//! Beam maintenance: duplicate elimination and the alpha-beta-style cut.

use std::collections::HashSet;

use sunstone_mapping::{Mapping, MappingLevel};

use super::stats::SearchStats;
use super::PartialState;

/// A mapping's search identity: every level's factors plus each temporal
/// level's loop order. Two mappings with equal keys are the same point in
/// the space — the key drives both candidate dedup and the estimate
/// cache.
pub(crate) fn mapping_key(m: &Mapping) -> Vec<u64> {
    let mut key = Vec::new();
    for level in m.levels() {
        key.extend_from_slice(level.factors());
        if let MappingLevel::Temporal(t) = level {
            key.extend(t.order.iter().map(|d| d.index() as u64));
        }
    }
    key
}

/// Removes duplicate partial mappings, returning how many were dropped:
/// different enumeration paths (e.g. the principled and relaxed unroll
/// passes) can emit identical candidates, and estimating each copy is
/// pure waste.
pub(crate) fn dedup(candidates: &mut Vec<PartialState>) -> usize {
    let before = candidates.len();
    let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(before);
    candidates.retain(|c| seen.insert(mapping_key(&c.mapping)));
    before - candidates.len()
}

/// Keeps the `beam_width` best-estimated candidates, recording the cut in
/// the stage's beam counter. The sort is stable and the estimates are
/// totally ordered, so the survivors do not depend on thread count or
/// enumeration accidents beyond the (deterministic) candidate order.
pub(crate) fn select(
    candidates: &mut Vec<PartialState>,
    beam_width: usize,
    stage: usize,
    stats: &mut SearchStats,
) {
    let considered = candidates.len() as u64;
    candidates.sort_by(|a, b| a.estimate.total_cmp(&b.estimate));
    candidates.truncate(beam_width.max(1));
    stats.level_mut(stage).beam.record(considered, candidates.len() as u64);
}
