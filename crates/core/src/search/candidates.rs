//! Per-level candidate enumeration: the orderings × tiles × unrollings
//! each stage admits, under the paper's pruning principles.
//!
//! Every enumerator reports into the stage's [`LevelStats`] record:
//! the ordering trie (Ordering Principles 1–3 + sibling dominance), the
//! tiling tree (Tiling Principle), and the spatial unrolling enumeration
//! (Spatial Unrolling Principle) each get a considered/kept counter.
//!
//! [`LevelStats`]: super::stats::LevelStats

use sunstone_arch::LevelId;
use sunstone_ir::{DimId, DimSet, DimVec};
use sunstone_mapping::MappingLevel;

use crate::factors::{divide, multiply, quot, sorted_divisors};
use crate::ordering::OrderingCandidate;
use crate::tiling::enumerate_tiles_cached;
use crate::unrolling::{enumerate_unrollings_cached, principle_excluded_dims};
use crate::IntraOrder;

use super::estimate;
use super::stats::SearchStats;
use super::{PartialState, SearchContext};

/// One bottom-up stage: unrollings below memory `stage`, tile at memory
/// `stage`, ordering at memory `stage + 1`.
pub(crate) fn bottom_up_expand(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    stage: usize,
    out: &mut Vec<PartialState>,
    stats: &mut SearchStats,
) {
    let mem_pos = ctx.mems[stage];
    let last_stage = stage == ctx.mems.len() - 1;
    let ndims = ctx.workload.num_dims();
    let base = state.mapping.resident_tile(mem_pos, ndims);

    let orderings: Vec<Option<OrderingCandidate>> = if last_stage {
        // The outermost memory has no level above to order.
        vec![None]
    } else {
        orderings_for(ctx, in_play_dims(ctx, state), stage, stats).into_iter().map(Some).collect()
    };

    match ctx.config.intra_order {
        IntraOrder::OrderTileUnroll => {
            let reserve = spatial_reserve(ctx, stage, true, &state.quotas);
            for ordering in &orderings {
                let tiles =
                    tiles_for(ctx, state, stage, &base, &state.quotas, reserve, ordering, stats);
                for tile in &tiles {
                    let growth = quot(tile, &base);
                    let tile_quotas = divide(&state.quotas, &growth);
                    let unrolls = unrolls_for(ctx, state, stage, tile, &tile_quotas, stats);
                    for u in &unrolls {
                        out.push(make_child(ctx, state, stage, &growth, u, ordering));
                    }
                }
            }
        }
        IntraOrder::UnrollTileOrder => {
            let reserve = spatial_reserve(ctx, stage, false, &state.quotas);
            let unrolls = unrolls_for(ctx, state, stage, &base, &state.quotas, stats);
            for u in &unrolls {
                let u_quotas = divide(&state.quotas, u);
                let base_u = multiply(&base, u);
                for ordering in &orderings {
                    let tiles =
                        tiles_for(ctx, state, stage, &base_u, &u_quotas, reserve, ordering, stats);
                    for tile in &tiles {
                        let growth = quot(tile, &base_u);
                        out.push(make_child(ctx, state, stage, &growth, u, ordering));
                    }
                }
            }
        }
        IntraOrder::TileUnrollOrder => {
            // Tiling before ordering: allow the union of every candidate
            // ordering's growth dimensions.
            let reserve = spatial_reserve(ctx, stage, true, &state.quotas);
            let union_allowed = orderings
                .iter()
                .flatten()
                .map(|o| tile_allowed_dims(ctx, o))
                .fold(DimSet::EMPTY, DimSet::union);
            let tiles = tiles_with_allowed(
                ctx,
                stage,
                &base,
                &state.quotas,
                reserve,
                union_allowed,
                DimSet::first_n(ndims),
                stats,
            );
            for tile in &tiles {
                let growth = quot(tile, &base);
                let tile_quotas = divide(&state.quotas, &growth);
                let unrolls = unrolls_for(ctx, state, stage, tile, &tile_quotas, stats);
                for u in &unrolls {
                    for ordering in &orderings {
                        out.push(make_child(ctx, state, stage, &growth, u, ordering));
                    }
                }
            }
        }
    }
}

/// One top-down stage: ordering at memory `stage + 1`, unrolls in the gap
/// below it, resident tile at memory `stage`.
pub(crate) fn top_down_expand(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    stage: usize,
    out: &mut Vec<PartialState>,
    stats: &mut SearchStats,
) {
    let ndims = ctx.workload.num_dims();
    let orderings = orderings_for(ctx, in_play_dims(ctx, state), stage, stats);
    for ordering in orderings {
        let gap = &ctx.lower_spatial[stage + 1];
        let unrolls = top_down_unrolls(ctx, gap, &ordering, state, stage, stats);
        for u in &unrolls {
            let mut q = divide(&state.quotas, u);
            let mut allowed = tile_allowed_dims(ctx, &ordering);
            // User tile pins on this memory seed the enumeration base,
            // exactly as in `tiles_with_allowed` on the bottom-up path.
            let lc = ctx.constraints.at(ctx.mems[stage]);
            if lc.tile_pins.iter().any(|&(d, v)| !q[d].is_multiple_of(v)) {
                stats.level_mut(stage).constraint.record(1, 0);
                continue;
            }
            let mut tile_base = DimVec::ones(ndims);
            for &(d, v) in &lc.tile_pins {
                q[d] /= v;
                tile_base[d] = v;
                allowed = allowed.without(DimId::from_index(d));
            }
            let outcome = enumerate_tiles_cached(
                &tile_base,
                &q,
                allowed,
                // Bounded-latency cancellation (see `tiles_with_allowed`);
                // the top-down path never memoizes this enumeration.
                |tile| {
                    !ctx.cancelled()
                        && lc.tile_caps.iter().all(|&(d, cap)| tile[d] <= cap)
                        && ctx.fits_mem(ctx.mems[stage], tile)
                },
                ctx.config.pruning.tiling_maximal,
                &ctx.ladders,
            );
            stats.nodes_explored += outcome.explored as u64;
            stats.tiles += outcome.tiles.len() as u64;
            stats
                .level_mut(stage)
                .tiling
                .record(outcome.explored as u64, outcome.tiles.len() as u64);
            // Fabrics below this memory still need parallelism out of the
            // tile; drop tiles too small to feed them (keep everything if
            // none qualifies).
            let mut below: u128 = 1;
            for (pos, s) in ctx.arch.spatial_levels() {
                if pos.index() < ctx.mems[stage] {
                    below *= u128::from(s.units);
                }
            }
            let reserve = ((below as f64) * ctx.config.min_spatial_utilization).ceil() as u128;
            let mut tiles: Vec<&DimVec> =
                outcome.tiles.iter().filter(|t| t.volume() >= reserve).collect();
            if tiles.is_empty() {
                tiles = outcome.tiles.iter().collect();
            }
            for tile in tiles {
                out.push(make_top_down_child(ctx, state, stage, tile, u, &ordering));
            }
        }
    }
}

/// Dimensions with remaining quota — the only ones worth ordering.
fn in_play_dims(ctx: &SearchContext<'_>, state: &PartialState) -> DimSet {
    ctx.workload.dim_ids().filter(|d| state.quotas[d.index()] > 1).collect()
}

/// Ordering candidates for one stage, with the trie's pruning attributed
/// per principle in the stage's stats. A user order constraint on the
/// level being ordered (memory `stage + 1`, in both directions) filters
/// the enumeration here — before dedup and beam selection — and always
/// re-adds the constraint's canonical completion so a satisfiable
/// constraint can never strand the stage without candidates.
fn orderings_for(
    ctx: &SearchContext<'_>,
    in_play: DimSet,
    stage: usize,
    stats: &mut SearchStats,
) -> Vec<OrderingCandidate> {
    let mut cands = if ctx.config.pruning.ordering_trie {
        let outcome = ctx.trie.candidates_detailed(in_play);
        stats.nodes_explored += outcome.explored as u64;
        stats.orderings += outcome.candidates.len() as u64;
        let level = stats.level_mut(stage);
        level.ordering.record(outcome.explored as u64, outcome.candidates.len() as u64);
        level.ordering_no_reuse += outcome.rejected_no_reuse as u64;
        level.ordering_dominated += outcome.dominated as u64;
        outcome.candidates
    } else {
        let cands = ctx.trie.all_permutations(in_play);
        stats.orderings += cands.len() as u64;
        stats.level_mut(stage).ordering.record(cands.len() as u64, cands.len() as u64);
        cands
    };
    if let Some((groups, exact)) = &ctx.constraints.at(ctx.mems[stage + 1]).order {
        let considered = cands.len() as u64 + 1;
        if *exact {
            // An exact constraint admits one order per in-play set: the
            // forced completion below.
            cands.clear();
        } else {
            cands.retain(|c| order_satisfies(&c.order, groups, in_play));
        }
        let forced = ctx.trie.forced_prefix(groups, in_play);
        if !cands.iter().any(|c| c.order == forced.order) {
            cands.push(forced);
        }
        stats.level_mut(stage).constraint.record(considered, cands.len() as u64);
    }
    cands
}

/// Does `order` (innermost-first) keep the constraint groups as its
/// innermost run, group sequence respected? Judged over `scope` — the
/// dimensions this stage still has in play; out-of-scope dims carry
/// factor 1 here, so their placement is meaningless.
fn order_satisfies(order: &[DimId], groups: &[DimSet], scope: DimSet) -> bool {
    let seq: Vec<DimId> = order.iter().copied().filter(|&d| scope.contains(d)).collect();
    let mut idx = 0usize;
    for g in groups {
        let g = g.intersection(scope);
        let need = g.len();
        if need == 0 {
            continue;
        }
        if idx + need > seq.len() {
            return false;
        }
        let window: DimSet = seq[idx..idx + need].iter().copied().collect();
        if window != g {
            return false;
        }
        idx += need;
    }
    true
}

/// The parallelism budget a tile must leave unconsumed: the product of
/// all spatial fabric sizes the tile has not yet passed (scaled by the
/// utilization floor, capped by what the problem can offer). This is the
/// "high throughput" constraint of Table I: a tile that swallows the
/// quota the fabrics need would force an under-utilized — and therefore
/// dominated — mapping.
fn spatial_reserve(
    ctx: &SearchContext<'_>,
    stage: usize,
    include_gap: bool,
    quotas: &[u64],
) -> u64 {
    let m = ctx.mems[stage];
    let mut units: u128 = 1;
    for (pos, s) in ctx.arch.spatial_levels() {
        if pos.index() > m {
            units *= u128::from(s.units);
        }
    }
    if include_gap {
        for &p in &ctx.lower_spatial[stage] {
            if let Some(s) = ctx.arch.level(LevelId(p)).as_spatial() {
                units *= u128::from(s.units);
            }
        }
    }
    let want = ((units as f64) * ctx.config.min_spatial_utilization).ceil() as u128;
    let avail: u128 = quotas.iter().map(|&q| u128::from(q)).product();
    want.min(avail).max(1) as u64
}

/// Tile candidates for one ordering at the stage's memory level.
#[allow(clippy::too_many_arguments)]
fn tiles_for(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    stage: usize,
    base: &[u64],
    quotas: &[u64],
    reserve: u64,
    ordering: &Option<OrderingCandidate>,
    stats: &mut SearchStats,
) -> Vec<DimVec> {
    if stage == ctx.mems.len() - 1 {
        // DRAM: the remainder is placed by `make_child`; the "tile" is the
        // base itself.
        return vec![DimVec::from_slice(base)];
    }
    let all = DimSet::first_n(ctx.workload.num_dims());
    let allowed = match ordering {
        Some(o) => tile_allowed_dims(ctx, o),
        None => all,
    };
    // The parallelism reserve is measured over the dimensions the fabrics
    // may actually unroll. When this stage has a fabric in its own gap,
    // that fabric pairs with the ordering chosen at the *previous* stage
    // (`state.ordering_here`); otherwise the nearest future fabric pairs
    // with the ordering being chosen now.
    let governing = if ctx.lower_spatial[stage].is_empty() {
        ordering.as_ref()
    } else {
        state.ordering_here.as_ref()
    };
    let mut unrollable = match governing {
        Some(o) => all.difference(unroll_excluded(ctx, o)),
        None => all,
    };
    // Mirror the high-throughput fallback of `unrolls_for`: when the
    // principled dimensions cannot reach the utilization floor, the
    // fabrics will unroll any dimension, so the reserve must guard them
    // all.
    let avail: u128 = unrollable.iter().map(|d| u128::from(quotas[d.index()])).product();
    if avail < u128::from(reserve) {
        unrollable = all;
    }
    tiles_with_allowed(ctx, stage, base, quotas, reserve, allowed, unrollable, stats)
}

/// Tile enumeration with an explicit growth set. The parallelism reserve
/// is measured over `unrollable` — the dimensions the Spatial Unrolling
/// Principle will actually let the fabrics consume — so a tile cannot
/// swallow the quota the unrollings need.
#[allow(clippy::too_many_arguments)]
fn tiles_with_allowed(
    ctx: &SearchContext<'_>,
    stage: usize,
    base: &[u64],
    quotas: &[u64],
    reserve: u64,
    allowed: DimSet,
    unrollable: DimSet,
    stats: &mut SearchStats,
) -> Vec<DimVec> {
    let mem_pos = ctx.mems[stage];
    let lc = ctx.constraints.at(mem_pos);
    // User tile pins seed the enumeration base: the pinned extent becomes
    // the starting tile and the dimension leaves the growth set, so every
    // enumerated tile carries exactly the pinned factor. A pin the parent
    // state cannot reach (base already past it, or quota not divisible)
    // kills this expansion — other beam parents may still satisfy it.
    let mut base = DimVec::from_slice(base);
    let mut quotas = DimVec::from_slice(quotas);
    let mut allowed = allowed;
    for &(d, v) in &lc.tile_pins {
        if !v.is_multiple_of(base[d]) || !quotas[d].is_multiple_of(v / base[d]) {
            stats.level_mut(stage).constraint.record(1, 0);
            return Vec::new();
        }
        quotas[d] /= v / base[d];
        base[d] = v;
        allowed = allowed.without(DimId::from_index(d));
    }
    // Session memo: beam states frequently reach the same (base, quota)
    // frontier, and repeated calls on the same shape replay the entire
    // enumeration. The memo stores the *kept* tiles plus the explored
    // count so the stats below replay identically on a hit. The key is
    // taken after pin seeding; caps need no slot because the constraint
    // set is fixed per cache context.
    let memo_key = estimate::TileKey {
        mem_pos,
        base: base.clone(),
        quotas: quotas.clone(),
        reserve,
        allowed,
        unrollable,
    };
    if let Some(hit) = ctx.cache.tiles_lookup(&memo_key) {
        stats.nodes_explored += hit.explored as u64;
        stats.tiles += hit.tiles.len() as u64;
        stats.level_mut(stage).tiling.record(hit.explored as u64, hit.tiles.len() as u64);
        return hit.tiles;
    }
    let outcome = enumerate_tiles_cached(
        &base,
        &quotas,
        allowed,
        |tile| {
            // Bounded-latency cancellation inside the enumeration tree:
            // rejecting every probe prunes the tree to nothing in O(depth)
            // steps once the token fires (the truncated result is then
            // reported as Cancelled by the composition loop, and the memo
            // insert below is suppressed so the session cache never holds
            // a truncated enumeration).
            if ctx.cancelled() {
                return false;
            }
            let headroom: u128 = unrollable
                .iter()
                .map(|d| {
                    let i = d.index();
                    u128::from(quotas[i] / (tile[i] / base[i]))
                })
                .product();
            headroom
                >= u128::from(reserve)
                    .min(unrollable.iter().map(|d| u128::from(quotas[d.index()])).product())
                && lc.tile_caps.iter().all(|&(d, cap)| tile[d] <= cap)
                && ctx.fits_mem(mem_pos, tile)
        },
        ctx.config.pruning.tiling_maximal,
        &ctx.ladders,
    );
    stats.nodes_explored += outcome.explored as u64;
    let mut tiles = outcome.tiles;
    if tiles.len() > ctx.config.max_tiles_per_enum {
        // Keep the largest tiles: maximal-frontier members with the
        // biggest iteration volume capture the most reuse.
        tiles.sort_by_key(|t| std::cmp::Reverse(t.volume()));
        tiles.truncate(ctx.config.max_tiles_per_enum);
    }
    stats.tiles += tiles.len() as u64;
    stats.level_mut(stage).tiling.record(outcome.explored as u64, tiles.len() as u64);
    // Never memoize an enumeration a cancel may have truncated: the memo
    // outlives this call, and a later (uncancelled) call must re-derive
    // the full result to stay bit-identical to a fresh session.
    if !ctx.cancelled() {
        ctx.cache.tiles_insert(
            memo_key,
            estimate::TileMemo { tiles: tiles.clone(), explored: outcome.explored },
        );
    }
    tiles
}

/// Dimensions the Unrolling Principle forbids for fabrics paired with
/// this ordering.
fn unroll_excluded(ctx: &SearchContext<'_>, ordering: &OrderingCandidate) -> DimSet {
    if !ctx.config.pruning.unrolling_principle {
        return DimSet::EMPTY;
    }
    principle_excluded_dims(
        ordering.fully_reused().map(|t| ctx.workload.reuse_info().of(t).full_reuse),
    )
}

/// Growth dimensions permitted by the Tiling Principle for an ordering:
/// the indexing dimensions of every fully reused tensor (all dimensions
/// when the principle is disabled or nothing is reused).
fn tile_allowed_dims(ctx: &SearchContext<'_>, ordering: &OrderingCandidate) -> DimSet {
    let all = DimSet::first_n(ctx.workload.num_dims());
    if !ctx.config.pruning.tiling_reuse_dims {
        return all;
    }
    let mut allowed = DimSet::EMPTY;
    let mut any = false;
    for t in ordering.fully_reused() {
        allowed = allowed.union(ctx.workload.tensor(t).indexing_dims());
        any = true;
    }
    if any {
        allowed
    } else {
        all
    }
}

/// Unrolling candidates for the spatial levels directly below the stage's
/// memory, as a combined per-level factor assignment. Returns vectors of
/// per-dimension factors per spatial position, flattened to a single
/// product vector (our architectures have at most one fabric per gap).
fn unrolls_for(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    stage: usize,
    resident_with_tile: &[u64],
    quotas: &[u64],
    stats: &mut SearchStats,
) -> Vec<DimVec> {
    let spatial_positions = &ctx.lower_spatial[stage];
    if spatial_positions.is_empty() {
        return vec![DimVec::ones(ctx.workload.num_dims())];
    }
    // The presets have at most one fabric per gap; for generality, nest
    // the enumeration over each fabric sequentially.
    let mut results: Vec<DimVec> = vec![DimVec::ones(ctx.workload.num_dims())];
    for &pos in spatial_positions {
        let fabric = ctx.arch.level(LevelId(pos)).as_spatial().expect("spatial level");
        let mut excluded = DimSet::EMPTY;
        if ctx.config.pruning.unrolling_principle {
            if let Some(o) = &state.ordering_here {
                excluded = principle_excluded_dims(
                    o.fully_reused().map(|t| ctx.workload.reuse_info().of(t).full_reuse),
                );
            }
        }
        let hard_excluded =
            if fabric.allow_reduction { DimSet::EMPTY } else { ctx.workload.reduction_dims() };
        let all = DimSet::first_n(ctx.workload.num_dims());
        let mut principled = all.difference(excluded.union(hard_excluded));
        let mut relaxed = all.difference(hard_excluded);
        // User constraints on this fabric: an allow-list intersects both
        // the principled and the relaxed (high-throughput fallback) sets;
        // pinned dimensions are seeded — their factors leave the
        // enumeration entirely and the fabric's unit budget shrinks by the
        // pinned product.
        let lc = ctx.constraints.at(pos);
        let before = relaxed.len() as u64;
        if let Some(allow) = lc.unroll_allow {
            principled = principled.intersection(allow);
            relaxed = relaxed.intersection(allow);
        }
        principled = principled.difference(lc.unroll_pinned);
        relaxed = relaxed.difference(lc.unroll_pinned);
        if lc.unroll_allow.is_some() || !lc.unroll_pins.is_empty() {
            // Attribute the allow-list/pin restriction: dimension slots the
            // fabric would have unrolled freely vs. what the constraint
            // leaves open (pinned dims count as removed — they are fixed,
            // not searched).
            stats.level_mut(stage).constraint.record(before, relaxed.len() as u64);
        }
        let units = fabric.units / lc.unroll_pin_product;
        let mut pin_vec = DimVec::ones(ctx.workload.num_dims());
        for &(d, v) in &lc.unroll_pins {
            pin_vec[d] = v;
        }
        let mem_pos = ctx.mems[stage];
        let mut next = Vec::new();
        for prev in &results {
            let q = divide(quotas, prev);
            // A pin the remaining quota cannot honor (an inner level
            // already consumed part of the pinned factor) kills this
            // branch; other beam parents may still satisfy it.
            if lc.unroll_pins.iter().any(|&(d, v)| !q[d].is_multiple_of(v)) {
                stats.level_mut(stage).constraint.record(1, 0);
                continue;
            }
            let prev_eff =
                if lc.unroll_pins.is_empty() { prev.clone() } else { multiply(prev, &pin_vec) };
            let q = if lc.unroll_pins.is_empty() { q } else { divide(&q, &pin_vec) };
            // Session memo: the whole per-fabric block (principled pass,
            // relaxed fallback, truncation) is keyed by its exact inputs;
            // `combined` folds the resident tile and the inner fabrics'
            // unrolls into the base the capacity probe inflates. Stats are
            // replayed from the memo so counters match an uncached run.
            let memo_key = estimate::UnrollKey {
                pos,
                quotas: q.clone(),
                principled,
                combined: resident_with_tile
                    .iter()
                    .zip(prev_eff.iter())
                    .map(|(t, a)| t * a)
                    .collect(),
            };
            if let Some(hit) = ctx.cache.unrolls_lookup(&memo_key) {
                stats.nodes_explored += hit.explored as u64;
                stats.unrollings += hit.unrollings.len() as u64;
                stats
                    .level_mut(stage)
                    .unrolling
                    .record(hit.explored as u64, hit.unrollings.len() as u64);
                for u in &hit.unrollings {
                    next.push(multiply(&prev_eff, u));
                }
                continue;
            }
            let fits = |u: &[u64]| {
                // Bounded-latency cancellation (see `tiles_with_allowed`).
                if ctx.cancelled() {
                    return false;
                }
                // The unroll inflates the resident tile of the memory
                // above the fabric (the stage's memory); `prev_eff` folds
                // the pinned factors in so the probe sees the full tile.
                let combined: DimVec = resident_with_tile
                    .iter()
                    .zip(prev_eff.iter().zip(u))
                    .map(|(t, (a, b))| t * a * b)
                    .collect();
                ctx.fits_mem(mem_pos, &combined)
            };
            let mut outcome = enumerate_unrollings_cached(
                &q,
                principled,
                units,
                fits,
                ctx.config.min_spatial_utilization,
                ctx.config.pruning.unrolling_principle,
                &ctx.ladders,
            );
            // The high-throughput constraint dominates the Unrolling
            // Principle: when the principled dimensions cannot keep the
            // fabric busy, widen to every dimension the hardware permits.
            // Utilization is judged over the full fabric, pins included.
            let floor = ctx.config.min_spatial_utilization * fabric.units as f64;
            let best = outcome
                .unrollings
                .iter()
                .map(|u| (u.iter().product::<u64>().saturating_mul(lc.unroll_pin_product)) as f64)
                .fold(0.0f64, f64::max);
            if best < floor && principled != relaxed {
                let wide = enumerate_unrollings_cached(
                    &q,
                    relaxed,
                    units,
                    fits,
                    ctx.config.min_spatial_utilization,
                    ctx.config.pruning.unrolling_principle,
                    &ctx.ladders,
                );
                outcome.explored += wide.explored;
                outcome.unrollings.extend(wide.unrollings);
            }
            stats.nodes_explored += outcome.explored as u64;
            let mut unrollings = outcome.unrollings;
            if unrollings.len() > ctx.config.max_unrolls_per_enum {
                unrollings.sort_by_key(|u| std::cmp::Reverse(u.volume()));
                unrollings.truncate(ctx.config.max_unrolls_per_enum);
            }
            stats.unrollings += unrollings.len() as u64;
            stats
                .level_mut(stage)
                .unrolling
                .record(outcome.explored as u64, unrollings.len() as u64);
            // As with tiles: a cancel-truncated enumeration must not be
            // memoized past this call.
            if !ctx.cancelled() {
                ctx.cache.unrolls_insert(
                    memo_key,
                    estimate::UnrollMemo {
                        unrollings: unrollings.clone(),
                        explored: outcome.explored,
                    },
                );
            }
            for u in unrollings {
                next.push(multiply(&prev_eff, &u));
            }
        }
        results = next;
    }
    results
}

fn top_down_unrolls(
    ctx: &SearchContext<'_>,
    gap: &[usize],
    ordering: &OrderingCandidate,
    state: &PartialState,
    stage: usize,
    stats: &mut SearchStats,
) -> Vec<DimVec> {
    let ndims = ctx.workload.num_dims();
    if gap.is_empty() {
        return vec![DimVec::ones(ndims)];
    }
    let mut results: Vec<DimVec> = vec![DimVec::ones(ndims)];
    for &pos in gap {
        let fabric = ctx.arch.level(LevelId(pos)).as_spatial().expect("spatial level");
        let mut excluded = DimSet::EMPTY;
        if ctx.config.pruning.unrolling_principle {
            excluded = principle_excluded_dims(
                ordering.fully_reused().map(|t| ctx.workload.reuse_info().of(t).full_reuse),
            );
        }
        if !fabric.allow_reduction {
            excluded = excluded.union(ctx.workload.reduction_dims());
        }
        let mut allowed = DimSet::first_n(ndims).difference(excluded);
        // User constraints on this fabric (see `unrolls_for`): allow-list
        // intersection plus pin seeding against the shrunken unit budget.
        let lc = ctx.constraints.at(pos);
        let before = allowed.len() as u64;
        if let Some(allow) = lc.unroll_allow {
            allowed = allowed.intersection(allow);
        }
        allowed = allowed.difference(lc.unroll_pinned);
        if lc.unroll_allow.is_some() || !lc.unroll_pins.is_empty() {
            stats.level_mut(stage).constraint.record(before, allowed.len() as u64);
        }
        let units = fabric.units / lc.unroll_pin_product;
        let mut pin_vec = DimVec::ones(ndims);
        for &(d, v) in &lc.unroll_pins {
            pin_vec[d] = v;
        }
        let mut next = Vec::new();
        for prev in &results {
            let q = divide(&state.quotas, prev);
            if lc.unroll_pins.iter().any(|&(d, v)| !q[d].is_multiple_of(v)) {
                stats.level_mut(stage).constraint.record(1, 0);
                continue;
            }
            let prev_eff =
                if lc.unroll_pins.is_empty() { prev.clone() } else { multiply(prev, &pin_vec) };
            let q = if lc.unroll_pins.is_empty() { q } else { divide(&q, &pin_vec) };
            let outcome = enumerate_unrollings_cached(
                &q,
                allowed,
                units,
                |_| true,
                ctx.config.min_spatial_utilization,
                ctx.config.pruning.unrolling_principle,
                &ctx.ladders,
            );
            stats.nodes_explored += outcome.explored as u64;
            let mut unrollings = outcome.unrollings;
            if unrollings.len() > ctx.config.max_unrolls_per_enum {
                unrollings.sort_by_key(|u| std::cmp::Reverse(u.volume()));
                unrollings.truncate(ctx.config.max_unrolls_per_enum);
            }
            stats.unrollings += unrollings.len() as u64;
            stats
                .level_mut(stage)
                .unrolling
                .record(outcome.explored as u64, unrollings.len() as u64);
            for u in unrollings {
                next.push(multiply(&prev_eff, &u));
            }
        }
        results = next;
    }
    results
}

/// Builds the child state for one (growth, unroll, ordering) choice;
/// `growth` is the vector of temporal tiling factors for this stage's
/// memory (the tile divided by everything below it, unroll included).
fn make_child(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    stage: usize,
    growth: &[u64],
    unroll: &[u64],
    ordering: &Option<OrderingCandidate>,
) -> PartialState {
    let mem_pos = ctx.mems[stage];
    let last_stage = stage == ctx.mems.len() - 1;
    let ndims = ctx.workload.num_dims();
    let mut mapping = state.mapping.clone();
    // Distribute the unroll over the gap's fabrics. With a single fabric
    // this is a direct assignment; with several, factors go to the
    // innermost fabric first, capped by its unit count.
    let mut remaining_unroll = DimVec::from_slice(unroll);
    for &pos in &ctx.lower_spatial[stage] {
        let fabric = ctx.arch.level(LevelId(pos)).as_spatial().expect("spatial level");
        let mut assigned = DimVec::ones(ndims);
        let mut used = 1u64;
        for d in 0..ndims {
            let mut f = remaining_unroll[d];
            while f > 1 && used * f > fabric.units {
                // Peel the largest divisor that still fits. Unroll factors
                // divide the dimension extent, so the precomputed ladder
                // applies; fall back to trial division off the table.
                let peel = |divs: &[u64]| {
                    divs.iter().copied().filter(|&c| used * c <= fabric.units).max().unwrap_or(1)
                };
                f = match ctx.ladders.of(d, f) {
                    Some(divs) => peel(divs),
                    None => peel(&sorted_divisors(f)),
                };
                if f == 1 {
                    break;
                }
            }
            assigned[d] = f;
            used *= f;
            remaining_unroll[d] /= f;
        }
        if let MappingLevel::Spatial(s) = &mut mapping.levels_mut()[pos] {
            s.factors = assigned.to_vec();
        }
    }
    // Temporal factors at this memory: tile growth over the base, divided
    // by the unroll placed below this memory.
    let mut quotas = state.quotas.clone();
    if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[mem_pos] {
        for d in 0..ndims {
            let f = if last_stage { state.quotas[d] / unroll[d] } else { growth[d] };
            t.factors[d] = f;
            quotas[d] /= f * unroll[d];
        }
    }
    // Apply the ordering for the next memory level.
    if let Some(o) = ordering {
        let next_mem = ctx.mems[stage + 1];
        if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[next_mem] {
            t.order = o.order.clone();
        }
    }
    PartialState {
        mapping,
        quotas,
        ordering_here: ordering.clone(),
        estimate: f64::INFINITY,
        parent: 0,
    }
}

fn make_top_down_child(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    stage: usize,
    tile: &[u64],
    unroll: &[u64],
    ordering: &OrderingCandidate,
) -> PartialState {
    let ndims = ctx.workload.num_dims();
    let mut mapping = state.mapping.clone();
    let upper_mem = ctx.mems[stage + 1];
    // Factors at the upper memory = remaining / (tile × unroll).
    if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[upper_mem] {
        for d in 0..ndims {
            t.factors[d] = state.quotas[d] / (tile[d] * unroll[d]);
        }
        t.order = ordering.order.clone();
    }
    // Unrolls in the gap.
    for &pos in &ctx.lower_spatial[stage + 1] {
        if let MappingLevel::Spatial(s) = &mut mapping.levels_mut()[pos] {
            s.factors = unroll.to_vec();
        }
    }
    PartialState {
        mapping,
        quotas: DimVec::from_slice(tile),
        ordering_here: Some(ordering.clone()),
        estimate: f64::INFINITY,
        parent: 0,
    }
}
