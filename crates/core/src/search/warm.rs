//! Cross-layer warm starts: seeding a new search from the retained best
//! mappings of a structurally similar layer scheduled earlier in the
//! session (same dimension roles and tensor structure, nearby factor
//! multisets — think ResNet stages that halve P/Q and double K).
//!
//! # Result neutrality, by construction
//!
//! Seeding never touches the beam. A retained mapping is *translated*
//! onto the new layer's dimension sizes and its bottom-up search
//! trajectory — the partial state the composition loop would hold after
//! each stage, completed the way estimation completes it — is
//! **pre-priced into the estimate cache** ([`EstimateCache::warm_insert_with`]).
//! The search itself runs exactly as it would cold: same candidates, same
//! ordering, same beam cuts. The only effect is that probes along the
//! seeded trajectory hit memoized reports instead of running the model.
//! Cached reports are bit-identical to what the round would compute
//! (scalar, prefixed, and SoA-batch evaluation all agree to the bit — see
//! the `prefix` and `batch` property tests), so a seeded search returns
//! results bit-identical to an unseeded one. Seeding can accelerate; it
//! cannot prune, re-rank, or displace.
//!
//! [`EstimateCache::warm_insert_with`]: super::estimate::EstimateCache::warm_insert_with

use sunstone_mapping::{Mapping, MappingLevel};
use sunstone_model::EvalScratch;

use super::beam::completed_key;
use super::stats::SearchStats;
use super::SearchContext;

/// Maximum prime-factor multiset distance
/// ([`crate::fingerprint::factor_multiset_distance`]) between the
/// retained layer's dimension sizes and the new layer's for seeding to
/// engage. Beyond this the shapes tile too differently for a translated
/// trajectory to coincide with the new search's candidates, and the seed
/// evaluations would be pure overhead.
pub(crate) const MAX_SEED_DISTANCE: u32 = 8;

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Translates a mapping retained from a similar layer onto this
/// workload's dimension sizes.
///
/// Walking levels innermost to outermost, each factor is clamped to
/// `gcd(seed factor, remaining quotient)` — factors only ever *shrink*,
/// so spatial fabrics stay within their unit counts and resident tiles
/// only get smaller (capacity bounds that held for the seed keep
/// holding). Whatever quotient the walk leaves undistributed is
/// multiplied into the outermost temporal level, exactly where the
/// search's completion step puts it. Temporal loop orders carry over
/// verbatim (the layers share a shape class, so dimension ids line up).
///
/// Returns `None` when the seed's level structure does not match this
/// architecture (stale entry after an arch change mid-session — the warm
/// key should prevent this, but translation is the backstop).
pub(crate) fn translate_seed(ctx: &SearchContext<'_>, seed: &Mapping) -> Option<Mapping> {
    let ndims = ctx.workload.num_dims();
    if seed.levels().len() != ctx.arch.num_levels()
        || seed.levels().iter().any(|l| l.factors().len() != ndims)
    {
        return None;
    }
    let mut remaining = ctx.workload.dim_sizes();
    let mut out = super::streaming_base(ctx.workload, ctx.arch);
    for (pos, level) in seed.levels().iter().enumerate() {
        match (&mut out.levels_mut()[pos], level) {
            (MappingLevel::Temporal(t), MappingLevel::Temporal(s)) => {
                clamp_factors(&mut t.factors, &s.factors, &mut remaining);
                t.order = s.order.clone();
            }
            (MappingLevel::Spatial(t), MappingLevel::Spatial(s)) => {
                clamp_factors(&mut t.factors, &s.factors, &mut remaining);
            }
            _ => return None,
        }
    }
    let outer = *ctx.mems.last().expect("at least one memory");
    if let MappingLevel::Temporal(t) = &mut out.levels_mut()[outer] {
        for (f, r) in t.factors.iter_mut().zip(&remaining) {
            // Invariant: the clamp only ever *divides* the remaining
            // quotient, so `f · r` is bounded by the original dimension
            // size and cannot overflow — but seeds can come from a
            // persistent store, and a corrupt entry must degrade to "no
            // seed", never to wrapped factors (2^40-scale dims leave no
            // headroom for a second fault). Checked, like the PR 5 sweep.
            *f = f.checked_mul(*r)?;
        }
    }
    Some(out)
}

/// Per-dimension gcd clamp of one level's factors against the remaining
/// quotient, dividing what was placed out of the quotient.
///
/// `gcd(s, r)` always divides `r`, so the quotient division is exact; the
/// `max(1)` guards the `s = r = 0` corner (a zero-sized dimension cannot
/// reach a validated workload, but a stale or store-loaded seed must not
/// turn it into a divide-by-zero panic).
fn clamp_factors(dst: &mut [u64], seed: &[u64], remaining: &mut [u64]) {
    for ((d, &s), r) in dst.iter_mut().zip(seed).zip(remaining) {
        let f = gcd(s, *r).max(1);
        *d = f;
        *r /= f;
    }
}

/// Pre-prices every bottom-up stage of each translated seed into the
/// estimate cache.
///
/// For stage `i`, the truncation reconstructs the partial mapping the
/// composition loop would hold had it followed the seed's decisions:
/// the seed's temporal factors at memories `0..=i`, its spatial factors
/// at the fabrics below each of those memories, and its loop orders at
/// memories `1..=i+1` (stage `i` fixes the *next* memory's order) — with
/// everything above left at the streaming-base defaults and the
/// remaining quotient folded into the outermost memory at key time,
/// exactly as [`estimate::complete`](super::estimate::complete) does.
/// The resulting cache key is therefore the very key the free search
/// probes for its own candidate at that stage, whenever the enumeration
/// reproduces the seed's choice.
///
/// Already-present keys are skipped without evaluating (seeds sharing
/// inner levels collapse onto one entry), and
/// [`warm_insert_with`](super::estimate::EstimateCache::warm_insert_with)
/// bypasses the hit/miss counters so probe statistics stay comparable
/// with and without seeding.
///
/// Seeding observes the call's deadline and cancellation token between
/// stage evaluations: pre-pricing is pure acceleration, so cutting it
/// short is result-neutral by construction, and a few-millisecond
/// `time_budget` must not be swallowed whole by the seeding pass before
/// the search proper even starts.
pub(crate) fn warm_seed_trajectories(
    ctx: &SearchContext<'_>,
    seeds: &[Mapping],
    stats: &mut SearchStats,
) {
    let ndims = ctx.workload.num_dims();
    let sizes = ctx.workload.dim_sizes();
    let outer = *ctx.mems.last().expect("at least one memory");
    let base = super::streaming_base(ctx.workload, ctx.arch);
    let mut key: Vec<u64> = Vec::new();
    let mut scratch = EvalScratch::default();
    stats.seeds += seeds.len() as u64;
    'seeds: for seed in seeds {
        let mut truncated = base.clone();
        let mut quotas = sizes.clone();
        for stage in 0..ctx.mems.len() {
            if ctx.cancelled() || ctx.past_deadline() {
                return;
            }
            let mem_pos = ctx.mems[stage];
            // Extend the truncation by this stage's decisions: the gap
            // fabrics below the memory, then the memory itself.
            for &pos in ctx.lower_spatial[stage].iter().chain([&mem_pos]) {
                let src = seed.level(pos).factors();
                for d in 0..ndims {
                    // Translated seeds divide the quotas exactly by
                    // construction; a seed that doesn't (a corrupt store
                    // entry slipping past translation) is skipped rather
                    // than priced at a wrong key or divided by zero.
                    if src[d] == 0 || !quotas[d].is_multiple_of(src[d]) {
                        continue 'seeds;
                    }
                    quotas[d] /= src[d];
                }
                match &mut truncated.levels_mut()[pos] {
                    MappingLevel::Temporal(t) => t.factors.copy_from_slice(src),
                    MappingLevel::Spatial(s) => s.factors.copy_from_slice(src),
                }
            }
            // Stage `i` also fixes the next memory's loop order.
            if stage + 1 < ctx.mems.len() {
                let next = ctx.mems[stage + 1];
                if let (MappingLevel::Temporal(t), MappingLevel::Temporal(s)) =
                    (&mut truncated.levels_mut()[next], seed.level(next))
                {
                    t.order = s.order.clone();
                }
            }
            completed_key(&truncated, outer, &quotas, &mut key);
            let ran = ctx.cache.warm_insert_with(std::mem::take(&mut key), || {
                let mut completed = truncated.clone();
                if let MappingLevel::Temporal(t) = &mut completed.levels_mut()[outer] {
                    for (f, q) in t.factors.iter_mut().zip(&quotas) {
                        *f *= q;
                    }
                }
                ctx.model.evaluate_unchecked_with(&completed, &mut scratch)
            });
            if ran {
                stats.seed_evals += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::gcd;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(64, 48), 16);
    }
}
