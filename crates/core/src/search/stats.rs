//! Structured search statistics: per-level, per-principle pruning counts
//! plus the flat totals the experiment binaries aggregate.
//!
//! Every pruning technique the paper describes reports into one
//! [`PruneCounter`] per stage: how many raw candidates its enumerator
//! visited (`considered`) and how many survived (`kept`). The
//! `prune_stats` bench binary prints these directly — no experiment needs
//! to re-run an enumerator just to count what it pruned — and later
//! performance work reports its wins against the same counters.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Candidates visited vs. kept by one pruning principle at one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneCounter {
    /// Raw candidates the enumerator visited.
    pub considered: u64,
    /// Candidates that survived the principle.
    pub kept: u64,
}

impl PruneCounter {
    /// Candidates the principle removed.
    pub fn pruned(&self) -> u64 {
        self.considered.saturating_sub(self.kept)
    }

    /// Fraction of considered candidates removed (0 when nothing was
    /// considered).
    pub fn pruned_fraction(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.considered as f64
        }
    }

    /// Records one enumeration.
    pub fn record(&mut self, considered: u64, kept: u64) {
        self.considered += considered;
        self.kept += kept;
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: &PruneCounter) {
        self.considered += other.considered;
        self.kept += other.kept;
    }
}

/// Pruning breakdown of one search stage (one memory level).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelStats {
    /// Stage index: position in the per-level walk, with 0 the innermost
    /// memory (both directions index the same way).
    pub level: usize,
    /// Loop orderings: trie nodes explored vs. candidates kept (Ordering
    /// Principles 1–3 plus sibling dominance).
    pub ordering: PruneCounter,
    /// Suffix extensions the trie rejected for adding no further reuse
    /// (Ordering Principle 3).
    pub ordering_no_reuse: u64,
    /// Enumerated suffixes dropped by sibling dominance over the
    /// Principle 1–2 reuse scores.
    pub ordering_dominated: u64,
    /// Tiles: tiling-tree nodes explored vs. maximal-frontier tiles kept
    /// (Tiling Principle; the cap on tiles per enumeration also lands
    /// here).
    pub tiling: PruneCounter,
    /// Spatial unrollings: combinations explored vs. principled,
    /// high-utilization unrollings kept (Spatial Unrolling Principle).
    pub unrolling: PruneCounter,
    /// Candidates removed by the user constraint filter: orderings
    /// rejected against an order constraint, and pin-infeasible tile or
    /// unroll enumerations. Zero when the call carries no constraints.
    pub constraint: PruneCounter,
    /// Identical partial mappings removed before estimation.
    pub dedup_removed: u64,
    /// Beam: candidates estimated vs. survivors after the alpha-beta-style
    /// cut. `considered` sums to [`SearchStats::probed`] across levels.
    pub beam: PruneCounter,
    /// Estimates answered by the memoized estimate cache at this stage.
    pub cache_hits: u64,
    /// Estimates that required a cost-model evaluation at this stage.
    pub cache_misses: u64,
}

/// Search statistics of one scheduling run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Complete mappings whose estimate the search requested (the
    /// optimization space actually visited — comparable across tools in
    /// Table I). Split from the former `evaluated` counter: `probed`
    /// counts estimate requests, [`modeled`](Self::modeled) the subset
    /// that actually ran the analytic model.
    pub probed: u64,
    /// Estimate probes that missed every cache and ran the cost model
    /// (`probed − modeled` were served memoized).
    pub modeled: u64,
    /// Model evaluations that reused a memoized decided-prefix cost
    /// (prefix-incremental estimation) instead of re-deriving every
    /// level's access counts from scratch.
    pub prefix_hits: u64,
    /// SoA batch dispatches: contiguous same-prefix candidate runs priced
    /// through the structure-of-arrays evaluator in one call.
    #[serde(default)]
    pub batches: u64,
    /// Model evaluations priced inside an SoA batch (the remainder of
    /// [`modeled`](Self::modeled) went through the scalar path).
    #[serde(default)]
    pub batched: u64,
    /// Cross-layer warm-start seeds this call was primed with (retained
    /// mappings from a structurally similar layer, translated onto this
    /// layer's dimension sizes). Zero when warm starts are off or no
    /// similar layer was retained.
    #[serde(default)]
    pub seeds: u64,
    /// Model evaluations spent pre-pricing seed trajectories into the
    /// estimate cache before the search started. These are *extra*
    /// evaluations on top of [`modeled`](Self::modeled); the search
    /// recoups them as cache hits along the seeded trajectory.
    #[serde(default)]
    pub seed_evals: u64,
    /// Parallel fan-out rounds dispatched to the session worker pool.
    pub rounds: u64,
    /// OS thread spawns avoided versus the former per-round
    /// `std::thread::scope` fan-out.
    pub spawns_avoided: u64,
    /// Loop orderings considered across all stages.
    pub orderings: u64,
    /// Tiles considered across all stages.
    pub tiles: u64,
    /// Spatial unrollings considered across all stages.
    pub unrollings: u64,
    /// Trie / tree nodes explored while enumerating.
    pub nodes_explored: u64,
    /// Estimates served from the memoized estimate cache (including the
    /// final top-k re-evaluation).
    pub cache_hits: u64,
    /// Estimates that had to run the analytic model.
    pub cache_misses: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// Per-level, per-principle pruning breakdown, indexed by stage.
    pub levels: Vec<LevelStats>,
}

impl SearchStats {
    /// The per-level record for `stage`, growing the vector as stages are
    /// first touched.
    pub(crate) fn level_mut(&mut self, stage: usize) -> &mut LevelStats {
        while self.levels.len() <= stage {
            let level = self.levels.len();
            self.levels.push(LevelStats { level, ..LevelStats::default() });
        }
        &mut self.levels[stage]
    }

    /// Total candidates the beam cut across all stages.
    pub fn beam_cut(&self) -> u64 {
        self.levels.iter().map(|l| l.beam.pruned()).sum()
    }

    /// Aggregate of one principle across all levels.
    pub fn total_of(&self, principle: impl Fn(&LevelStats) -> PruneCounter) -> PruneCounter {
        let mut total = PruneCounter::default();
        for l in &self.levels {
            total.merge(&principle(l));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_counter_arithmetic() {
        let mut c = PruneCounter::default();
        c.record(10, 3);
        c.record(6, 1);
        assert_eq!(c.considered, 16);
        assert_eq!(c.kept, 4);
        assert_eq!(c.pruned(), 12);
        assert!((c.pruned_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_has_zero_fraction() {
        assert_eq!(PruneCounter::default().pruned_fraction(), 0.0);
    }

    #[test]
    fn level_mut_grows_and_labels() {
        let mut stats = SearchStats::default();
        stats.level_mut(2).beam.record(5, 2);
        assert_eq!(stats.levels.len(), 3);
        assert_eq!(stats.levels[2].level, 2);
        assert_eq!(stats.levels[0].level, 0);
        assert_eq!(stats.beam_cut(), 3);
    }

    #[test]
    fn totals_aggregate_across_levels() {
        let mut stats = SearchStats::default();
        stats.level_mut(0).tiling.record(8, 2);
        stats.level_mut(1).tiling.record(4, 1);
        let total = stats.total_of(|l| l.tiling);
        assert_eq!(total.considered, 12);
        assert_eq!(total.kept, 3);
    }
}
