//! Candidate estimation: completion of partial mappings, the memoized
//! estimate cache, and parallel cost-model evaluation.

use std::collections::HashMap;
use std::sync::Mutex;

use sunstone_mapping::{Mapping, MappingLevel};
use sunstone_model::CostReport;

use super::beam::mapping_key;
use super::stats::SearchStats;
use super::{PartialState, SearchContext};
use crate::Direction;

/// Memoized cost estimates keyed by completed-mapping fingerprint.
///
/// Distinct beam states frequently complete to the same mapping — the
/// remainder placement collapses states that differ only in undecided
/// levels — and the final top-k re-evaluation always repeats the last
/// stage's estimates, so memoization skips real model work. The map is
/// shared across worker threads; entries are inserted after the parallel
/// evaluation round, so the lock is never contended inside the model.
pub(crate) struct EstimateCache {
    enabled: bool,
    map: Mutex<HashMap<Vec<u64>, CostReport>>,
}

impl EstimateCache {
    pub(crate) fn new(enabled: bool) -> Self {
        EstimateCache { enabled, map: Mutex::new(HashMap::new()) }
    }

    fn lookup(&self, key: &[u64]) -> Option<CostReport> {
        if !self.enabled {
            return None;
        }
        self.map.lock().expect("cache lock").get(key).cloned()
    }

    fn insert(&self, key: Vec<u64>, report: CostReport) {
        if self.enabled {
            self.map.lock().expect("cache lock").insert(key, report);
        }
    }
}

/// Completes a partial state into a structurally valid mapping: bottom-up
/// places the remaining quotient at the outermost memory; top-down places
/// the unresolved resident tile at the innermost memory.
pub(crate) fn complete(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    direction: Direction,
) -> Mapping {
    let mut m = state.mapping.clone();
    let pos = match direction {
        Direction::BottomUp => *ctx.mems.last().expect("at least one memory"),
        Direction::TopDown => ctx.mems[0],
    };
    if let MappingLevel::Temporal(t) = &mut m.levels_mut()[pos] {
        for (f, q) in t.factors.iter_mut().zip(&state.quotas) {
            *f *= q;
        }
    }
    m
}

/// Completes and estimates every candidate.
///
/// The cache is probed on the calling thread; only the misses go through
/// the model, chunked over the configured worker threads via
/// `std::thread::scope`. Results are written back by candidate index, so
/// the outcome is identical for any thread count.
pub(crate) fn estimate_all(
    ctx: &SearchContext<'_>,
    direction: Direction,
    candidates: &mut [PartialState],
    stage: usize,
    stats: &mut SearchStats,
) {
    stats.evaluated += candidates.len() as u64;
    let objective = ctx.config.objective;
    let mut hits = 0u64;
    // (candidate index, cache key, completed mapping) per cache miss.
    let mut misses: Vec<(usize, Vec<u64>, Mapping)> = Vec::new();
    for (i, state) in candidates.iter_mut().enumerate() {
        let completed = complete(ctx, state, direction);
        let key = mapping_key(&completed);
        if let Some(report) = ctx.cache.lookup(&key) {
            state.estimate = objective.of(&report);
            hits += 1;
        } else {
            misses.push((i, key, completed));
        }
    }

    let mut reports: Vec<Option<CostReport>> = vec![None; misses.len()];
    if !misses.is_empty() {
        let threads = ctx.config.effective_threads().min(misses.len());
        let chunk = misses.len().div_ceil(threads.max(1)).max(1);
        let model = &ctx.model;
        std::thread::scope(|scope| {
            for (m_part, r_part) in misses.chunks(chunk).zip(reports.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for ((_, _, mapping), slot) in m_part.iter().zip(r_part) {
                        *slot = Some(model.evaluate_unchecked(mapping));
                    }
                });
            }
        });
    }

    let miss_count = misses.len() as u64;
    for ((i, key, _), report) in misses.into_iter().zip(reports) {
        let report = report.expect("every miss is evaluated");
        candidates[i].estimate = objective.of(&report);
        ctx.cache.insert(key, report);
    }

    let level = stats.level_mut(stage);
    level.cache_hits += hits;
    level.cache_misses += miss_count;
    stats.cache_hits += hits;
    stats.cache_misses += miss_count;
}

/// Evaluates a complete mapping through the estimate cache (the final
/// top-k re-evaluation: the last stage already estimated these mappings,
/// so with the cache enabled this is a pure lookup).
pub(crate) fn evaluate_cached(
    ctx: &SearchContext<'_>,
    mapping: &Mapping,
    stats: &mut SearchStats,
) -> CostReport {
    let key = mapping_key(mapping);
    if let Some(report) = ctx.cache.lookup(&key) {
        stats.cache_hits += 1;
        return report;
    }
    stats.cache_misses += 1;
    let report = ctx.model.evaluate_unchecked(mapping);
    ctx.cache.insert(key, report.clone());
    report
}
