//! Candidate estimation: completion of partial mappings, the
//! session-lifetime memoized estimate cache, prefix-incremental cost
//! evaluation, and parallel execution on the session worker pool.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use sunstone_ir::{DimSet, DimVec, FxHashMap};
use sunstone_mapping::{Mapping, MappingLevel};
use sunstone_model::{BatchEvalScratch, CostReport, EvalScratch, MappingPrefix};

use super::beam::{completed_key, mapping_key};
use super::stats::SearchStats;
use super::{PartialState, SearchContext};
use crate::pool::SliceWriter;
use crate::Direction;

/// Cumulative statistics of a session's estimate cache and worker pool
/// ([`Scheduler::cache_stats`](crate::Scheduler::cache_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Estimates served from the cache since the session was created.
    pub hits: u64,
    /// Estimates that had to run the analytic model.
    pub misses: u64,
    /// Cost reports currently retained (bounded by
    /// [`SunstoneConfig::max_cache_entries`](crate::SunstoneConfig::max_cache_entries)).
    pub entries: usize,
    /// Model evaluations that reused a memoized decided-prefix cost
    /// instead of re-deriving every level from scratch.
    pub prefix_hits: u64,
    /// SoA batch dispatches: contiguous same-prefix candidate runs priced
    /// through the structure-of-arrays evaluator in one call.
    pub batches: u64,
    /// Model evaluations priced inside an SoA batch (the rest went
    /// through the scalar path: no shared prefix, or a run of one).
    pub batched: u64,
    /// Searches that were warm-started: a structurally similar layer's
    /// retained mappings were translated and pre-evaluated into this
    /// search's cache context before the level walk.
    pub seed_probes: u64,
    /// Warm-started searches whose final best mapping equals one of the
    /// translated seeds (the neighbor's optimum carried over).
    pub seed_hits: u64,
    /// Fan-out rounds the session worker pool has executed.
    pub pool_rounds: u64,
    /// OS thread spawns avoided versus a per-round `std::thread::scope`.
    pub spawns_avoided: u64,
}

impl CacheStats {
    /// Fraction of probes served from the cache (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }

    /// Fraction of model evaluations that reused a memoized prefix
    /// (0 when the model never ran).
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.misses as f64
        }
    }

    /// Mean number of candidates priced per SoA batch dispatch (0 when no
    /// batch ever ran).
    pub fn avg_batch_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched as f64 / self.batches as f64
        }
    }

    /// Fraction of model evaluations priced through the SoA batch path
    /// (0 when the model never ran).
    pub fn batched_fraction(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.batched as f64 / self.misses as f64
        }
    }

    /// Fraction of warm-started searches whose final best mapping was a
    /// translated seed (0 when no search was ever warm-started).
    pub fn seed_hit_rate(&self) -> f64 {
        if self.seed_probes == 0 {
            0.0
        } else {
            self.seed_hits as f64 / self.seed_probes as f64
        }
    }
}

/// Memoized tile enumeration: the kept tiles plus the enumeration stats
/// to replay, so cached and uncached searches report identical counters.
#[derive(Debug, Clone)]
pub(crate) struct TileMemo {
    pub(crate) tiles: Vec<DimVec>,
    pub(crate) explored: usize,
}

/// Key of one tile enumeration; together with the context fingerprint
/// this covers every input of `tiles_with_allowed` (the ladders, pruning
/// flags, caps, and the capacity plan of `mem_pos` are all functions of
/// the context).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct TileKey {
    pub(crate) mem_pos: usize,
    pub(crate) base: DimVec,
    pub(crate) quotas: DimVec,
    pub(crate) reserve: u64,
    pub(crate) allowed: DimSet,
    pub(crate) unrollable: DimSet,
}

/// Memoized unrolling enumeration (one fabric, one accumulated prefix).
#[derive(Debug, Clone)]
pub(crate) struct UnrollMemo {
    pub(crate) unrollings: Vec<DimVec>,
    pub(crate) explored: usize,
}

/// Key of one per-fabric unrolling enumeration. `combined` is the
/// resident tile already multiplied by the unrolls accumulated from
/// inner fabrics — the exact base the capacity probe inflates — so the
/// key covers the whole fits closure.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct UnrollKey {
    pub(crate) pos: usize,
    pub(crate) quotas: DimVec,
    pub(crate) principled: DimSet,
    pub(crate) combined: DimVec,
}

/// Everything the session retains for one context fingerprint: memoized
/// cost reports plus the tile/unrolling enumeration memos, and the LRU
/// stamp the cache bound evicts by.
#[derive(Debug, Default)]
pub(crate) struct CtxEntry {
    reports: FxHashMap<Vec<u64>, CostReport>,
    tiles: FxHashMap<TileKey, TileMemo>,
    unrolls: FxHashMap<UnrollKey, UnrollMemo>,
    /// Logical timestamp of the last estimation round that used this
    /// context (whole-context LRU eviction granularity).
    last_used: u64,
}

/// The session-lifetime estimate cache: memoized cost reports keyed by
/// *(context fingerprint, completed-mapping fingerprint)*, plus the
/// per-context enumeration memos.
///
/// The context fingerprint condenses *(workload, architecture, search
/// configuration)* ([`crate::fingerprint`]), so one map safely serves
/// every call a [`Scheduler`](crate::Scheduler) session makes: repeated
/// calls on the same layer, repeated layer shapes inside a batch, and the
/// candidate re-evaluations of the network pass all hit entries written by
/// earlier work. Within one search, distinct beam states frequently
/// complete to the same mapping — the remainder placement collapses
/// states that differ only in undecided levels — so the cache saves real
/// model work even on the first call.
///
/// The map is shared across worker threads; entries are inserted after
/// each parallel evaluation round, so the lock is never contended inside
/// the model. Retained cost reports are bounded by
/// [`SunstoneConfig::max_cache_entries`](crate::SunstoneConfig::max_cache_entries):
/// when an insert pushes past the bound, the least-recently-used context
/// fingerprints are evicted whole (never the context that just inserted).
/// Everything retained for one warm-start slot: the source layer's
/// dimension sizes (the similarity gate compares prime-factor multisets
/// against them) and its best final mappings, plus the exact context that
/// produced them (so eviction of a poisoned context also drops its warm
/// entry, and a layer never seeds itself).
#[derive(Debug, Clone)]
pub(crate) struct WarmEntry {
    /// Dimension sizes of the retained layer.
    pub(crate) dims: Vec<u64>,
    /// Best final mappings of the retained search, objective-best first.
    pub(crate) mappings: Vec<Mapping>,
    /// Context fingerprint of the search that produced the entry.
    pub(crate) ctx_fp: u64,
}

#[derive(Debug, Default)]
pub(crate) struct SessionCache {
    map: Mutex<FxHashMap<u64, CtxEntry>>,
    /// Warm-start retention, keyed by the *(shape class, arch, config,
    /// constraints)* fingerprint ([`crate::fingerprint::warm_fingerprint`]).
    /// One slot per key, latest completed search wins.
    warm: Mutex<FxHashMap<u64, WarmEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Retained cost reports, maintained on insert/evict/clear so
    /// [`stats`](Self::stats) never walks the map under the lock.
    entries: AtomicUsize,
    /// Logical clock behind every `CtxEntry::last_used` stamp.
    tick: AtomicU64,
    prefix_hits: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    seed_probes: AtomicU64,
    seed_hits: AtomicU64,
}

impl SessionCache {
    pub(crate) fn new() -> Self {
        SessionCache::default()
    }

    /// Locks the cache map, recovering from mutex poisoning. A panic can
    /// only unwind while the lock is held *between* map operations (each
    /// individual insert/remove leaves the map structurally valid), so
    /// the data under a poisoned lock is a valid map whose *contents* may
    /// be half-published — and the fault boundary follows every caught
    /// panic with [`evict_context`](Self::evict_context), which drops
    /// exactly that context. Propagating the poison instead would turn
    /// one recovered fault into a permanently broken session.
    fn lock_map(&self) -> MutexGuard<'_, FxHashMap<u64, CtxEntry>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Poison-and-recover: drops everything retained for `fp` — cost
    /// reports, tile/unroll enumeration memos, the LRU stamp — and
    /// recomputes the retained-report counter from the surviving
    /// contexts. Called by the panic-isolation boundary after a caught
    /// fault: the faulting call may have died mid-publish (reports
    /// inserted but the counter not yet bumped, or vice versa), so the
    /// counter is rebuilt rather than adjusted. Runs under the map lock,
    /// and every publisher updates the counter while holding the same
    /// lock, so the recount is exact even with concurrent batch workers.
    pub(crate) fn evict_context(&self, fp: u64) {
        let mut map = self.lock_map();
        map.remove(&fp);
        let total = map.values().map(|e| e.reports.len()).sum();
        self.entries.store(total, Ordering::Relaxed);
        drop(map);
        // Warm entries produced by the poisoned context go with it: a
        // fault mid-retention could have published a half-written entry.
        self.lock_warm().retain(|_, e| e.ctx_fp != fp);
    }

    /// Locks the warm-start retention map (poison-recovering, like
    /// [`lock_map`](Self::lock_map): every individual map operation leaves
    /// it structurally valid, and [`evict_context`](Self::evict_context)
    /// drops any entry a caught fault may have half-published).
    fn lock_warm(&self) -> MutexGuard<'_, FxHashMap<u64, WarmEntry>> {
        self.warm.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Retains a completed search's best mappings for future warm starts
    /// (one slot per warm key; the latest search wins).
    pub(crate) fn warm_store(&self, warm_fp: u64, entry: WarmEntry) {
        let mut guard = self.lock_warm();
        // Held-lock failpoint: fires while the warm mutex is held, so a
        // fault-injection test can pin that a panic here poisons the lock
        // and the next call still recovers (via `lock_warm` +
        // `evict_context`) instead of aborting.
        faultpoint!("warm.store");
        guard.insert(warm_fp, entry);
    }

    /// The retained warm-start entry for `warm_fp`, if any.
    pub(crate) fn warm_lookup(&self, warm_fp: u64) -> Option<WarmEntry> {
        self.lock_warm().get(&warm_fp).cloned()
    }

    /// Records one warm-started search and whether a seed won.
    pub(crate) fn record_seeding(&self, hit: bool) {
        self.seed_probes.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.seed_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            seed_probes: self.seed_probes.load(Ordering::Relaxed),
            seed_hits: self.seed_hits.load(Ordering::Relaxed),
            // Pool counters are filled in by the scheduler, which owns
            // the pool.
            pool_rounds: 0,
            spawns_avoided: 0,
        }
    }

    pub(crate) fn clear(&self) {
        self.lock_map().clear();
        self.lock_warm().clear();
        self.entries.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.prefix_hits.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batched.store(0, Ordering::Relaxed);
        self.seed_probes.store(0, Ordering::Relaxed);
        self.seed_hits.store(0, Ordering::Relaxed);
    }

    /// Evicts whole least-recently-used contexts (never `keep`) until the
    /// retained reports fit `max` again or only `keep` is left.
    fn evict_lru(&self, map: &mut FxHashMap<u64, CtxEntry>, max: usize, keep: u64) {
        while self.entries.load(Ordering::Relaxed) > max {
            let victim = map
                .iter()
                .filter(|(fp, e)| **fp != keep && !e.reports.is_empty())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            let Some(fp) = victim else { break };
            if let Some(e) = map.remove(&fp) {
                self.entries.fetch_sub(e.reports.len(), Ordering::Relaxed);
            }
        }
    }
}

/// One search's view of the [`SessionCache`]: the context fingerprint is
/// fixed, so lookups cannot cross workloads, architectures, or
/// configurations.
pub(crate) struct EstimateCache<'s> {
    enabled: bool,
    ctx_fp: u64,
    max_entries: usize,
    session: &'s SessionCache,
}

impl<'s> EstimateCache<'s> {
    pub(crate) fn new(
        enabled: bool,
        ctx_fp: u64,
        max_entries: usize,
        session: &'s SessionCache,
    ) -> Self {
        EstimateCache { enabled, ctx_fp, max_entries, session }
    }

    fn lookup(&self, key: &[u64]) -> Option<CostReport> {
        if !self.enabled {
            return None;
        }
        let found =
            self.session.lock_map().get(&self.ctx_fp).and_then(|e| e.reports.get(key)).cloned();
        match &found {
            Some(_) => self.session.hits.fetch_add(1, Ordering::Relaxed),
            None => self.session.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: Vec<u64>, report: CostReport) {
        if !self.enabled {
            return;
        }
        let mut guard = self.session.lock_map();
        let tick = self.session.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let e = guard.entry(self.ctx_fp).or_default();
        e.last_used = tick;
        if e.reports.insert(key, report).is_none() {
            let total = self.session.entries.fetch_add(1, Ordering::Relaxed) + 1;
            if total > self.max_entries {
                self.session.evict_lru(&mut guard, self.max_entries, self.ctx_fp);
            }
        }
    }

    /// Pre-evaluates `key` into the cache if absent (warm-start seeding).
    /// Returns whether the model ran. Deliberately bypasses the hit/miss
    /// counters: seeding is bookkept by the seed counters, and mixing it
    /// into the probe statistics would make `hits`/`misses` depend on
    /// which layers happened to be retained first.
    pub(crate) fn warm_insert_with(
        &self,
        key: Vec<u64>,
        eval: impl FnOnce() -> CostReport,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        {
            let guard = self.session.lock_map();
            if guard.get(&self.ctx_fp).is_some_and(|e| e.reports.contains_key(&key)) {
                return false;
            }
        }
        // Evaluate outside the lock — the model walk is the expensive part.
        let report = eval();
        self.insert(key, report);
        true
    }

    /// Memoized tile enumeration for this context, if already recorded.
    pub(crate) fn tiles_lookup(&self, key: &TileKey) -> Option<TileMemo> {
        if !self.enabled {
            return None;
        }
        self.session.lock_map().get(&self.ctx_fp).and_then(|e| e.tiles.get(key)).cloned()
    }

    pub(crate) fn tiles_insert(&self, key: TileKey, memo: TileMemo) {
        if self.enabled {
            self.session.lock_map().entry(self.ctx_fp).or_default().tiles.insert(key, memo);
        }
    }

    /// Memoized unrolling enumeration for this context, if already
    /// recorded.
    pub(crate) fn unrolls_lookup(&self, key: &UnrollKey) -> Option<UnrollMemo> {
        if !self.enabled {
            return None;
        }
        self.session.lock_map().get(&self.ctx_fp).and_then(|e| e.unrolls.get(key)).cloned()
    }

    pub(crate) fn unrolls_insert(&self, key: UnrollKey, memo: UnrollMemo) {
        if self.enabled {
            self.session.lock_map().entry(self.ctx_fp).or_default().unrolls.insert(key, memo);
        }
    }
}

/// The memory position where [`complete`] places a state's remainder.
fn completion_pos(ctx: &SearchContext<'_>, direction: Direction) -> usize {
    match direction {
        Direction::BottomUp => *ctx.mems.last().expect("at least one memory"),
        Direction::TopDown => ctx.mems[0],
    }
}

/// Completes a partial state into a structurally valid mapping: bottom-up
/// places the remaining quotient at the outermost memory; top-down places
/// the unresolved resident tile at the innermost memory.
pub(crate) fn complete(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    direction: Direction,
) -> Mapping {
    let mut m = state.mapping.clone();
    let pos = completion_pos(ctx, direction);
    if let MappingLevel::Temporal(t) = &mut m.levels_mut()[pos] {
        for (f, q) in t.factors.iter_mut().zip(&state.quotas) {
            *f *= q;
        }
    }
    m
}

thread_local! {
    /// Per-worker evaluation scratch, reused across rounds and calls (the
    /// pool threads are session-lived, so the buffers stay warm).
    static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::default());
    /// Per-worker SoA batch scratch, likewise session-lived.
    static BATCH_SCRATCH: RefCell<BatchEvalScratch> = RefCell::new(BatchEvalScratch::default());
}

/// Indices per pool claim in the estimate round. One atomic claim covers
/// a contiguous candidate range, and every maximal same-prefix run inside
/// the range is priced through the SoA batch evaluator in one call — the
/// chunk bounds the batch width, so the per-candidate SoA tables stay in
/// cache while still amortizing claim and dispatch overhead. Kept small
/// enough that modest rounds (a few hundred misses) still split into more
/// claims than the pool has claimants.
const ESTIMATE_CHUNK: usize = 16;

/// When an estimation round may observe the wall-clock deadline.
///
/// Historically the first stage skipped the deadline entirely so a zero
/// budget still produced a usable mapping. With warm starts, a seeded
/// first stage can do non-trivial work (the seeding pass plus a large
/// first round), so a budget of a few milliseconds could overshoot by the
/// whole first stage. [`AfterFirstClaim`](DeadlinePolicy::AfterFirstClaim)
/// is the repaired contract: the first claim chunk always runs — so even
/// a zero budget evaluates *some* candidates and the best-so-far
/// completion stays usable — and every claim after it observes the
/// deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeadlinePolicy {
    /// First stage: the deadline engages once at least one claim chunk
    /// has completed (the zero-budget contract keeps one chunk of work).
    AfterFirstClaim,
    /// Later stages: every claim observes the deadline.
    Always,
}

/// Why an estimation round ended; anything but `Done` aborts the stage
/// (the composition loop returns the *previous* beam, which is what the
/// best-so-far deadline contract completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundStatus {
    /// Every miss was evaluated; the candidates carry real estimates.
    Done,
    /// The cancellation token fired mid-round; remaining evaluations were
    /// skipped (bounded-latency cancellation).
    Cancelled,
    /// The wall-clock deadline passed mid-round; remaining evaluations
    /// were skipped.
    DeadlineReached,
}

/// Completes and estimates every candidate.
///
/// The cache is probed on the calling thread with a reused scratch key
/// computed straight from the partial state — no clone-and-complete per
/// probe. Only the misses materialize a completed mapping and go through
/// the model, distributed over the session's persistent worker pool (no
/// per-round thread spawns; each worker reuses one evaluation scratch).
///
/// Bottom-up stages past the first price each miss *prefix-incrementally*:
/// all candidates expanded from one beam state share the decided levels
/// `0..=mems[stage − 1]`, so that prefix's per-level cost contribution is
/// built once per parent ([`CostModel::prefix_of`]) and each candidate
/// only derives the delta of its frontier and completion levels. The
/// composition is bit-identical to the monolithic evaluation (see the
/// `prefix` property tests), so cached reports are unaffected.
///
/// The pool claims contiguous *chunks* of misses ([`ESTIMATE_CHUNK`] per
/// atomic claim), and every maximal same-prefix run inside a claim is
/// priced through the structure-of-arrays batch evaluator
/// ([`CostModel::evaluate_prefixed_batch`]) in one call — branch-free
/// inner loops over per-candidate columns instead of a full per-candidate
/// model walk. The batch evaluator is bit-identical to the scalar path
/// (see the `batch` property tests), so the dispatch choice never changes
/// a result.
///
/// Results are written back by candidate index, so the outcome is
/// identical for any thread count.
///
/// Cancellation and the deadline are checked *per pool claim*, so a
/// mid-round stop is observed within a bounded number of evaluations: at
/// most one in-flight evaluation per claimant finishes after the token
/// fires. The [`DeadlinePolicy`] decides when the deadline engages: the
/// first stage uses [`DeadlinePolicy::AfterFirstClaim`] (the first claim
/// chunk always runs, so a zero budget still yields a usable best-so-far
/// mapping, but a seeded first stage can no longer overshoot a
/// few-millisecond budget by a whole stage), later stages
/// [`DeadlinePolicy::Always`]. A stopped round leaves the skipped
/// candidates at `f64::INFINITY` and returns the stop reason; completed
/// evaluations are still published to the cache (they are correct and
/// deterministic, so later calls may reuse them).
///
/// [`CostModel::prefix_of`]: sunstone_model::CostModel::prefix_of
/// [`CostModel::evaluate_prefixed_batch`]: sunstone_model::CostModel::evaluate_prefixed_batch
pub(crate) fn estimate_all(
    ctx: &SearchContext<'_>,
    direction: Direction,
    candidates: &mut [PartialState],
    stage: usize,
    deadline: DeadlinePolicy,
    stats: &mut SearchStats,
) -> RoundStatus {
    faultpoint!("estimate.round");
    stats.probed += candidates.len() as u64;
    let objective = ctx.config.objective;
    let pos = completion_pos(ctx, direction);
    let cache = &ctx.cache;
    let mut hits = 0u64;
    // (candidate index, cache key) per cache miss.
    let mut misses: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut key = Vec::new();
    {
        // One lock acquisition covers every probe of the round, and hits
        // read the memoized report in place — no per-probe clone.
        let guard = cache.enabled.then(|| cache.session.lock_map());
        let per_ctx = guard.as_ref().and_then(|g| g.get(&cache.ctx_fp));
        for (i, state) in candidates.iter_mut().enumerate() {
            completed_key(&state.mapping, pos, &state.quotas, &mut key);
            match per_ctx.and_then(|e| e.reports.get(key.as_slice())) {
                Some(report) => {
                    state.estimate = objective.of(report);
                    hits += 1;
                }
                None => misses.push((i, std::mem::take(&mut key))),
            }
        }
    }
    if cache.enabled {
        cache.session.hits.fetch_add(hits, Ordering::Relaxed);
        cache.session.misses.fetch_add(misses.len() as u64, Ordering::Relaxed);
    }
    let completed: Vec<Mapping> =
        misses.iter().map(|&(i, _)| complete(ctx, &candidates[i], direction)).collect();

    // Prefix memoization: bottom-up, every candidate of one parent shares
    // the levels up to the previous stage's memory, and completion only
    // touches the outermost level — strictly above that boundary. Misses
    // preserve candidate order and candidates are expanded parent by
    // parent, so each parent's run of misses is contiguous.
    let boundary = (direction == Direction::BottomUp && stage >= 1).then(|| ctx.mems[stage - 1]);
    let mut prefixes: Vec<MappingPrefix> = Vec::new();
    let mut group_of: Vec<u32> = Vec::new();
    if let Some(b) = boundary {
        let mut last_parent = usize::MAX;
        for (k, &(i, _)) in misses.iter().enumerate() {
            faultpoint!("estimate.prefix");
            let parent = candidates[i].parent;
            if prefixes.is_empty() || parent != last_parent {
                prefixes.push(ctx.model.prefix_of(&completed[k], b));
                last_parent = parent;
            }
            group_of.push((prefixes.len() - 1) as u32);
        }
        let reused = (misses.len() - prefixes.len()) as u64;
        stats.prefix_hits += reused;
        cache.session.prefix_hits.fetch_add(reused, Ordering::Relaxed);
    }

    let mut reports: Vec<Option<CostReport>> = vec![None; misses.len()];
    let round_cancelled = AtomicBool::new(false);
    let round_deadlined = AtomicBool::new(false);
    let round_batches = AtomicU64::new(0);
    let round_batched = AtomicU64::new(0);
    // Claim chunks fully evaluated so far; under `AfterFirstClaim` the
    // deadline only engages once this is nonzero, so every round keeps at
    // least one chunk of real estimates (the zero-budget contract).
    let claims_done = AtomicUsize::new(0);
    if !misses.is_empty() {
        stats.rounds += 1;
        let n_claims = misses.len().div_ceil(ESTIMATE_CHUNK);
        stats.spawns_avoided += ((ctx.pool.workers() + 1).min(n_claims)) as u64;
        let model = &ctx.model;
        let writer = SliceWriter::new(&mut reports);
        let (prefixes, group_of, completed) = (&prefixes, &group_of, &completed);
        let (round_cancelled, round_deadlined) = (&round_cancelled, &round_deadlined);
        let (round_batches, round_batched) = (&round_batches, &round_batched);
        let claims_done = &claims_done;
        ctx.pool.run_chunked(misses.len(), ESTIMATE_CHUNK, &|range| {
            // Bounded-latency stop checks, per claim: the cancel check is
            // one atomic load and the deadline one clock read, and a claim
            // covers at most `ESTIMATE_CHUNK` evaluations. Once a stop is
            // observed every remaining claim returns immediately, so at
            // most one in-flight claim per claimant outlives the stop.
            if round_cancelled.load(Ordering::Relaxed) || ctx.cancelled() {
                round_cancelled.store(true, Ordering::Relaxed);
                return;
            }
            let enforce = match deadline {
                DeadlinePolicy::Always => true,
                DeadlinePolicy::AfterFirstClaim => claims_done.load(Ordering::Relaxed) > 0,
            };
            if enforce && (round_deadlined.load(Ordering::Relaxed) || ctx.past_deadline()) {
                round_deadlined.store(true, Ordering::Relaxed);
                return;
            }
            SCRATCH.with(|cell| {
                BATCH_SCRATCH.with(|bcell| {
                    let mut scratch = cell.borrow_mut();
                    let mut bscratch = bcell.borrow_mut();
                    let mut k = range.start;
                    while k < range.end {
                        let Some(&g) = group_of.get(k) else {
                            // No shared prefix this stage: scalar path.
                            let report = model.evaluate_unchecked_with(&completed[k], &mut scratch);
                            // SAFETY: claims are disjoint ranges and every
                            // index is written by its claimant only.
                            unsafe { writer.write(k, Some(report)) };
                            k += 1;
                            continue;
                        };
                        // Maximal same-prefix run inside this claim.
                        let mut end = k + 1;
                        while end < range.end && group_of[end] == g {
                            end += 1;
                        }
                        if end - k >= 2 {
                            round_batches.fetch_add(1, Ordering::Relaxed);
                            round_batched.fetch_add((end - k) as u64, Ordering::Relaxed);
                            model.evaluate_prefixed_batch(
                                &prefixes[g as usize],
                                &completed[k..end],
                                &mut bscratch,
                                |j, report| {
                                    // SAFETY: disjoint claims; `k + j`
                                    // stays inside this run.
                                    unsafe { writer.write(k + j, Some(report)) };
                                },
                            );
                        } else {
                            let report = model.evaluate_prefixed_with(
                                &prefixes[g as usize],
                                &completed[k],
                                &mut scratch,
                            );
                            // SAFETY: disjoint claims (see above).
                            unsafe { writer.write(k, Some(report)) };
                        }
                        k = end;
                    }
                });
            });
            claims_done.fetch_add(1, Ordering::Relaxed);
        });
    }

    let miss_count = misses.len() as u64;
    stats.modeled += reports.iter().filter(|r| r.is_some()).count() as u64;
    let (round_batches, round_batched) = (round_batches.into_inner(), round_batched.into_inner());
    stats.batches += round_batches;
    stats.batched += round_batched;
    cache.session.batches.fetch_add(round_batches, Ordering::Relaxed);
    cache.session.batched.fetch_add(round_batched, Ordering::Relaxed);
    {
        // Publish every new report under a single lock acquisition, stamp
        // the context's LRU clock, and enforce the cache bound.
        let mut guard = cache.enabled.then(|| cache.session.lock_map());
        let mut per_ctx = guard.as_deref_mut().map(|g| {
            let tick = cache.session.tick.fetch_add(1, Ordering::Relaxed) + 1;
            let e = g.entry(cache.ctx_fp).or_default();
            e.last_used = tick;
            e
        });
        let mut inserted = 0usize;
        for ((i, key), report) in misses.into_iter().zip(reports) {
            match report {
                Some(report) => {
                    candidates[i].estimate = objective.of(&report);
                    if let Some(e) = per_ctx.as_deref_mut() {
                        faultpoint!("cache.insert");
                        if e.reports.insert(key, report).is_none() {
                            inserted += 1;
                        }
                    }
                }
                // Skipped by a mid-round stop: never evaluated, never
                // published. The caller discards the stage, so the
                // placeholder estimate is never ranked against real ones.
                None => candidates[i].estimate = f64::INFINITY,
            }
        }
        if inserted > 0 {
            let total = cache.session.entries.fetch_add(inserted, Ordering::Relaxed) + inserted;
            if total > cache.max_entries {
                if let Some(g) = guard.as_deref_mut() {
                    cache.session.evict_lru(g, cache.max_entries, cache.ctx_fp);
                }
            }
        }
    }

    let level = stats.level_mut(stage);
    level.cache_hits += hits;
    level.cache_misses += miss_count;
    stats.cache_hits += hits;
    stats.cache_misses += miss_count;

    if round_cancelled.into_inner() || ctx.cancelled() {
        RoundStatus::Cancelled
    } else if round_deadlined.into_inner() {
        RoundStatus::DeadlineReached
    } else {
        RoundStatus::Done
    }
}

/// Evaluates a complete mapping through the estimate cache (the final
/// top-k re-evaluation: the last stage already estimated these mappings,
/// so with the cache enabled this is a pure lookup).
pub(crate) fn evaluate_cached(
    ctx: &SearchContext<'_>,
    mapping: &Mapping,
    stats: &mut SearchStats,
) -> CostReport {
    let key = mapping_key(mapping);
    if let Some(report) = ctx.cache.lookup(&key) {
        stats.cache_hits += 1;
        return report;
    }
    stats.cache_misses += 1;
    let report = ctx.model.evaluate_unchecked(mapping);
    ctx.cache.insert(key, report.clone());
    report
}
