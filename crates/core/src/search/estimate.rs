//! Candidate estimation: completion of partial mappings, the
//! session-lifetime memoized estimate cache, and parallel cost-model
//! evaluation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sunstone_ir::FxHashMap;
use sunstone_mapping::{Mapping, MappingLevel};
use sunstone_model::CostReport;

use super::beam::{completed_key, mapping_key};
use super::stats::SearchStats;
use super::{PartialState, SearchContext};
use crate::Direction;

/// Cumulative statistics of a session's estimate cache
/// ([`Scheduler::cache_stats`](crate::Scheduler::cache_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Estimates served from the cache since the session was created.
    pub hits: u64,
    /// Estimates that had to run the analytic model.
    pub misses: u64,
    /// Cost reports currently retained.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of probes served from the cache (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

/// The session-lifetime estimate cache: memoized cost reports keyed by
/// *(context fingerprint, completed-mapping fingerprint)*.
///
/// The context fingerprint condenses *(workload, architecture, search
/// configuration)* ([`crate::fingerprint`]), so one map safely serves
/// every call a [`Scheduler`](crate::Scheduler) session makes: repeated
/// calls on the same layer, repeated layer shapes inside a batch, and the
/// candidate re-evaluations of the network pass all hit entries written by
/// earlier work. Within one search, distinct beam states frequently
/// complete to the same mapping — the remainder placement collapses
/// states that differ only in undecided levels — so the cache saves real
/// model work even on the first call.
///
/// The map is shared across worker threads; entries are inserted after
/// each parallel evaluation round, so the lock is never contended inside
/// the model.
#[derive(Debug, Default)]
pub(crate) struct SessionCache {
    /// Outer key: context fingerprint; inner key: completed-mapping key.
    /// The two-level shape lets the hot path probe with a borrowed
    /// `&[u64]` scratch key instead of allocating a tuple per lookup.
    map: Mutex<FxHashMap<u64, FxHashMap<Vec<u64>, CostReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SessionCache {
    pub(crate) fn new() -> Self {
        SessionCache::default()
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache lock").values().map(FxHashMap::len).sum(),
        }
    }

    pub(crate) fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// One search's view of the [`SessionCache`]: the context fingerprint is
/// fixed, so lookups cannot cross workloads, architectures, or
/// configurations.
pub(crate) struct EstimateCache<'s> {
    enabled: bool,
    ctx_fp: u64,
    session: &'s SessionCache,
}

impl<'s> EstimateCache<'s> {
    pub(crate) fn new(enabled: bool, ctx_fp: u64, session: &'s SessionCache) -> Self {
        EstimateCache { enabled, ctx_fp, session }
    }

    fn lookup(&self, key: &[u64]) -> Option<CostReport> {
        if !self.enabled {
            return None;
        }
        let found = self
            .session
            .map
            .lock()
            .expect("cache lock")
            .get(&self.ctx_fp)
            .and_then(|per_ctx| per_ctx.get(key))
            .cloned();
        match &found {
            Some(_) => self.session.hits.fetch_add(1, Ordering::Relaxed),
            None => self.session.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: Vec<u64>, report: CostReport) {
        if self.enabled {
            self.session
                .map
                .lock()
                .expect("cache lock")
                .entry(self.ctx_fp)
                .or_default()
                .insert(key, report);
        }
    }
}

/// The memory position where [`complete`] places a state's remainder.
fn completion_pos(ctx: &SearchContext<'_>, direction: Direction) -> usize {
    match direction {
        Direction::BottomUp => *ctx.mems.last().expect("at least one memory"),
        Direction::TopDown => ctx.mems[0],
    }
}

/// Completes a partial state into a structurally valid mapping: bottom-up
/// places the remaining quotient at the outermost memory; top-down places
/// the unresolved resident tile at the innermost memory.
pub(crate) fn complete(
    ctx: &SearchContext<'_>,
    state: &PartialState,
    direction: Direction,
) -> Mapping {
    let mut m = state.mapping.clone();
    let pos = completion_pos(ctx, direction);
    if let MappingLevel::Temporal(t) = &mut m.levels_mut()[pos] {
        for (f, q) in t.factors.iter_mut().zip(&state.quotas) {
            *f *= q;
        }
    }
    m
}

/// Completes and estimates every candidate.
///
/// The cache is probed on the calling thread with a reused scratch key
/// computed straight from the partial state — no clone-and-complete per
/// probe. Only the misses materialize a completed mapping and go through
/// the model, chunked over the configured worker threads via
/// `std::thread::scope` (each worker reuses one evaluation scratch).
/// Results are written back by candidate index, so the outcome is
/// identical for any thread count.
pub(crate) fn estimate_all(
    ctx: &SearchContext<'_>,
    direction: Direction,
    candidates: &mut [PartialState],
    stage: usize,
    stats: &mut SearchStats,
) {
    stats.evaluated += candidates.len() as u64;
    let objective = ctx.config.objective;
    let pos = completion_pos(ctx, direction);
    let cache = &ctx.cache;
    let mut hits = 0u64;
    // (candidate index, cache key) per cache miss.
    let mut misses: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut key = Vec::new();
    {
        // One lock acquisition covers every probe of the round, and hits
        // read the memoized report in place — no per-probe clone.
        let guard = cache.enabled.then(|| cache.session.map.lock().expect("cache lock"));
        let per_ctx = guard.as_ref().and_then(|g| g.get(&cache.ctx_fp));
        for (i, state) in candidates.iter_mut().enumerate() {
            completed_key(&state.mapping, pos, &state.quotas, &mut key);
            match per_ctx.and_then(|m| m.get(key.as_slice())) {
                Some(report) => {
                    state.estimate = objective.of(report);
                    hits += 1;
                }
                None => misses.push((i, std::mem::take(&mut key))),
            }
        }
    }
    if cache.enabled {
        cache.session.hits.fetch_add(hits, Ordering::Relaxed);
        cache.session.misses.fetch_add(misses.len() as u64, Ordering::Relaxed);
    }
    let completed: Vec<Mapping> =
        misses.iter().map(|&(i, _)| complete(ctx, &candidates[i], direction)).collect();

    let mut reports: Vec<Option<CostReport>> = vec![None; misses.len()];
    if !misses.is_empty() {
        let threads = ctx.config.effective_threads().min(misses.len());
        let chunk = misses.len().div_ceil(threads.max(1)).max(1);
        let model = &ctx.model;
        std::thread::scope(|scope| {
            for (m_part, r_part) in completed.chunks(chunk).zip(reports.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let mut scratch = model.scratch();
                    for (mapping, slot) in m_part.iter().zip(r_part) {
                        *slot = Some(model.evaluate_unchecked_with(mapping, &mut scratch));
                    }
                });
            }
        });
    }

    let miss_count = misses.len() as u64;
    {
        // Publish every new report under a single lock acquisition.
        let mut guard = cache.enabled.then(|| cache.session.map.lock().expect("cache lock"));
        let mut per_ctx = guard.as_mut().map(|g| g.entry(cache.ctx_fp).or_default());
        for ((i, key), report) in misses.into_iter().zip(reports) {
            let report = report.expect("every miss is evaluated");
            candidates[i].estimate = objective.of(&report);
            if let Some(m) = per_ctx.as_deref_mut() {
                m.insert(key, report);
            }
        }
    }

    let level = stats.level_mut(stage);
    level.cache_hits += hits;
    level.cache_misses += miss_count;
    stats.cache_hits += hits;
    stats.cache_misses += miss_count;
}

/// Evaluates a complete mapping through the estimate cache (the final
/// top-k re-evaluation: the last stage already estimated these mappings,
/// so with the cache enabled this is a pure lookup).
pub(crate) fn evaluate_cached(
    ctx: &SearchContext<'_>,
    mapping: &Mapping,
    stats: &mut SearchStats,
) -> CostReport {
    let key = mapping_key(mapping);
    if let Some(report) = ctx.cache.lookup(&key) {
        stats.cache_hits += 1;
        return report;
    }
    stats.cache_misses += 1;
    let report = ctx.model.evaluate_unchecked(mapping);
    ctx.cache.insert(key, report.clone());
    report
}
