//! The staged search pipeline (Section III-C / V-A of the paper).
//!
//! The scheduler walks the memory hierarchy one level at a time; each
//! stage runs the same four-step pipeline over the surviving beam:
//!
//! 1. **expand** (`candidates`) — per partial mapping, enumerate the
//!    orderings × tiles × unrollings the pruning principles admit,
//! 2. **dedup** (`beam`) — drop candidates whose mapping an earlier
//!    enumeration path already produced,
//! 3. **estimate** (`estimate`) — complete each candidate and evaluate
//!    the analytic model, memoized by completed-mapping fingerprint and
//!    parallelized over the configured worker threads,
//! 4. **select** (`beam`) — keep the best `beam_width` candidates (the
//!    alpha-beta-style cut).
//!
//! The walk direction is a `compose::LevelPass`: `compose::BottomUpPass`
//! (the paper's default) starts at the innermost memory, where partial
//! costs track final costs closely and the beam cuts early;
//! `compose::TopDownPass` (Table VI) starts at DRAM. Both share the
//! composition loop in `compose::run_level_search`.
//!
//! Every pruning decision is recorded in the structured [`SearchStats`]:
//! per level and per principle, how many candidates were considered and
//! how many survived.

pub mod stats;

pub(crate) mod beam;
pub(crate) mod candidates;
pub(crate) mod compose;
pub(crate) mod estimate;
pub(crate) mod warm;

use std::time::Instant;

use sunstone_arch::{ArchSpec, Binding, Capacity, Level, LevelId};
use sunstone_ir::{DimVec, TensorDesc, Workload};
use sunstone_mapping::{Mapping, MappingLevel};
use sunstone_model::CostModel;

use crate::constraints::ResolvedConstraints;
use crate::factors::DivisorLadders;
use crate::ordering::{OrderingCandidate, OrderingTrie};
use crate::pool::WorkerPool;
use crate::progress::{CancelToken, ProgressSink};
use crate::SunstoneConfig;

use estimate::EstimateCache;

pub use estimate::CacheStats;
pub use stats::{LevelStats, PruneCounter, SearchStats};

/// Per-call controls threaded through the level walk: the wall-clock
/// deadline, the cooperative cancellation token, and the progress sink.
/// All optional; a default value runs the search to completion silently.
#[derive(Default)]
pub(crate) struct CallControls<'a> {
    /// Absolute deadline derived from the call's `time_budget`.
    pub(crate) deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked at stage boundaries.
    pub(crate) cancel: Option<&'a CancelToken>,
    /// Progress callback for level started/finished events.
    pub(crate) progress: Option<&'a dyn ProgressSink>,
}

impl CallControls<'_> {
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    pub(crate) fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Everything the pipeline stages share for one scheduling run: the
/// problem, the derived level structure, the enumeration trie, the cost
/// model, and the memoized estimate cache.
/// The capacity-check plan of one memory: each partition's capacity and
/// the tensors bound to it with their per-word byte widths.
type FitPlan<'a> = Vec<(Capacity, Vec<(&'a TensorDesc, u64)>)>;

pub(crate) struct SearchContext<'a> {
    pub(crate) workload: &'a Workload,
    pub(crate) arch: &'a ArchSpec,
    pub(crate) config: &'a SunstoneConfig,
    /// The call's cancellation token, if any: checked not only at stage
    /// boundaries but per pool claim and inside the enumeration fits
    /// closures, so cancellation latency is bounded by a handful of
    /// model evaluations, not a whole stage.
    pub(crate) cancel: Option<&'a CancelToken>,
    /// The call's absolute deadline, if any (checked inside estimate
    /// rounds past the first stage; see [`CallControls`]).
    pub(crate) deadline: Option<Instant>,
    pub(crate) model: CostModel<'a>,
    pub(crate) trie: OrderingTrie<'a>,
    /// Memory level positions, innermost first.
    pub(crate) mems: Vec<usize>,
    /// `lower_spatial[i]`: spatial positions between memory `i − 1` and
    /// memory `i` (for `i = 0`: below the innermost memory).
    pub(crate) lower_spatial: Vec<Vec<usize>>,
    /// This search's view of the session estimate cache.
    pub(crate) cache: EstimateCache<'a>,
    /// The session's persistent worker pool (estimate rounds fan out over
    /// it instead of spawning threads per round).
    pub(crate) pool: &'a WorkerPool,
    /// Precomputed sorted divisor ladders for every quota the search can
    /// produce (quotas only shrink by division, so they stay divisors of
    /// the dimension extents).
    pub(crate) ladders: DivisorLadders,
    /// Per architecture position: the capacity-check plan of the memory
    /// at that position (`None` for spatial levels). Each partition lists
    /// the tensors bound to it with their per-word byte widths, so a
    /// capacity probe is pure arithmetic — no binding lookups, no
    /// allocation.
    mem_fits: Vec<Option<FitPlan<'a>>>,
    /// The call's user constraints, resolved to per-architecture-position
    /// form. Empty (the common case) adds one cheap `is_empty` branch per
    /// enumeration; the free search path is otherwise untouched.
    pub(crate) constraints: ResolvedConstraints,
}

impl<'a> SearchContext<'a> {
    // Internal constructor with one call site; the per-call knobs
    // (cancel, deadline) are deliberately separate from the session
    // state, not worth an options struct.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workload: &'a Workload,
        arch: &'a ArchSpec,
        binding: &'a Binding,
        config: &'a SunstoneConfig,
        cache: EstimateCache<'a>,
        pool: &'a WorkerPool,
        cancel: Option<&'a CancelToken>,
        deadline: Option<Instant>,
        constraints: ResolvedConstraints,
    ) -> Self {
        let mems: Vec<usize> = arch.memory_levels().map(|(id, _)| id.index()).collect();
        let mut lower_spatial: Vec<Vec<usize>> = Vec::with_capacity(mems.len());
        let mut prev: i64 = -1;
        for &m in &mems {
            let gap: Vec<usize> = ((prev + 1) as usize..m)
                .filter(|&p| matches!(arch.level(LevelId(p)), Level::Spatial(_)))
                .collect();
            lower_spatial.push(gap);
            prev = m as i64;
        }
        let mem_fits = (0..arch.num_levels())
            .map(|pos| {
                let mem = arch.level(LevelId(pos)).as_memory()?;
                let mut parts: FitPlan<'a> =
                    mem.partitions.iter().map(|p| (p.capacity, Vec::new())).collect();
                for t in workload.tensor_ids() {
                    if let Some(pid) = binding.partition_of(LevelId(pos), t) {
                        let tensor = workload.tensor(t);
                        parts[pid.0].1.push((tensor, u64::from(tensor.bits()).div_ceil(8)));
                    }
                }
                Some(parts)
            })
            .collect();
        SearchContext {
            workload,
            arch,
            config,
            cancel,
            deadline,
            model: CostModel::new(workload, arch, binding),
            trie: OrderingTrie::new(workload),
            mems,
            lower_spatial,
            cache,
            pool,
            ladders: DivisorLadders::new(&workload.dim_sizes()),
            mem_fits,
            constraints,
        }
    }

    /// Does the resident tile fit every partition of the memory at `pos`?
    ///
    /// The footprint sum saturates instead of wrapping: degenerate inputs
    /// (huge dimension extents) can overflow `u64`, and saturation is the
    /// conservative direction — a saturated footprint can never fit a
    /// bounded partition, so no invalid tile is ever admitted.
    pub(crate) fn fits_mem(&self, pos: usize, tile: &[u64]) -> bool {
        let Some(parts) = &self.mem_fits[pos] else {
            return true;
        };
        parts.iter().all(|(capacity, tensors)| {
            let needed: u64 = tensors.iter().fold(0u64, |acc, (t, bytes)| {
                acc.saturating_add(t.footprint(tile).saturating_mul(*bytes))
            });
            capacity.fits(needed)
        })
    }

    /// Whether the call's cancellation token has fired (one atomic load).
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Whether the call's wall-clock deadline has passed.
    pub(crate) fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// One partial mapping alive in the beam.
#[derive(Debug, Clone)]
pub(crate) struct PartialState {
    pub(crate) mapping: Mapping,
    /// Remaining per-dimension quotient.
    pub(crate) quotas: DimVec,
    /// Ordering chosen for the *current frontier* memory (bottom-up: set
    /// by the previous stage; governs this stage's unrolling principle).
    pub(crate) ordering_here: Option<OrderingCandidate>,
    /// Objective estimate of the completed mapping.
    pub(crate) estimate: f64,
    /// Index of the beam state this candidate was expanded from (set by
    /// the composition loop). Candidates of one parent share every level
    /// decided before the current stage, which is what lets estimation
    /// memoize the decided-prefix cost per parent.
    pub(crate) parent: usize,
}

impl PartialState {
    /// The search starting point: nothing decided, the whole problem
    /// still to distribute.
    pub(crate) fn root(ctx: &SearchContext<'_>) -> Self {
        PartialState {
            mapping: streaming_base(ctx.workload, ctx.arch),
            quotas: DimVec::from(ctx.workload.dim_sizes()),
            ordering_here: None,
            estimate: f64::INFINITY,
            parent: 0,
        }
    }
}

/// A mapping with all factors 1 — `Mapping::streaming` puts the problem
/// at DRAM, which the search does itself at completion time.
pub(crate) fn streaming_base(workload: &Workload, arch: &ArchSpec) -> Mapping {
    let mut m = Mapping::streaming(workload, arch);
    let last = arch.num_levels() - 1;
    if let MappingLevel::Temporal(t) = &mut m.levels_mut()[last] {
        t.factors = vec![1; workload.num_dims()];
    }
    m
}
