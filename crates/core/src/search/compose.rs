//! The shared composition loop: expand → dedup → estimate → select, one
//! pass per memory level, with the walk direction abstracted as a
//! [`LevelPass`].

use sunstone_mapping::MappingLevel;

use super::stats::SearchStats;
use super::{beam, candidates, estimate, CallControls, PartialState, SearchContext};
use crate::progress::ProgressEvent;
use crate::Direction;

/// A direction of the level-by-level walk (Table VI of the paper). Both
/// directions share [`run_level_search`]; a pass only decides the stage
/// order, how one beam state expands, and how the final beam turns into
/// complete mappings.
pub(crate) trait LevelPass {
    /// Direction used when completing partial mappings for estimation.
    fn direction(&self) -> Direction;

    /// Stage indices in visit order (stage `i` decides memory `mems[i]`).
    fn stages(&self, n_mem: usize) -> Vec<usize>;

    /// Expands one beam state at `stage` into candidate children.
    fn expand(
        &self,
        ctx: &SearchContext<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    );

    /// Turns the surviving beam into complete mappings after the last
    /// stage.
    fn finalize(&self, ctx: &SearchContext<'_>, beam: &mut [PartialState]);
}

/// The paper's default: innermost memory outward. Partial costs track
/// final costs closely (reuse is resolved where most traffic lives), so
/// the beam cuts early and the explored space stays small.
pub(crate) struct BottomUpPass;

impl LevelPass for BottomUpPass {
    fn direction(&self) -> Direction {
        Direction::BottomUp
    }

    fn stages(&self, n_mem: usize) -> Vec<usize> {
        (0..n_mem).collect()
    }

    fn expand(
        &self,
        ctx: &SearchContext<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    ) {
        candidates::bottom_up_expand(ctx, state, stage, out, stats);
    }

    fn finalize(&self, _ctx: &SearchContext<'_>, _beam: &mut [PartialState]) {
        // The last stage already placed the remainder; quotas are all 1.
    }
}

/// DRAM inward (the Table VI study). Estimates of partial mappings are
/// far from final costs — the inner levels are undecided — so pruning
/// bites late and the explored space is much larger.
pub(crate) struct TopDownPass;

impl LevelPass for TopDownPass {
    fn direction(&self) -> Direction {
        Direction::TopDown
    }

    fn stages(&self, n_mem: usize) -> Vec<usize> {
        // Stage `i` decides the ordering at `mems[i + 1]`, the gap's
        // unrolls, and the resident tile at `mems[i]`; the innermost
        // memory's own loops are placed by `finalize`.
        (0..n_mem - 1).rev().collect()
    }

    fn expand(
        &self,
        ctx: &SearchContext<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    ) {
        candidates::top_down_expand(ctx, state, stage, out, stats);
    }

    fn finalize(&self, ctx: &SearchContext<'_>, beam: &mut [PartialState]) {
        // The frontier resident tile becomes the innermost memory's own
        // loops.
        let m0 = ctx.mems[0];
        let ndims = ctx.workload.num_dims();
        for s in beam {
            if let MappingLevel::Temporal(t) = &mut s.mapping.levels_mut()[m0] {
                t.factors = s.quotas.to_vec();
                s.quotas = sunstone_ir::DimVec::ones(ndims);
            }
        }
    }
}

/// Why [`run_level_search`] stopped walking the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SearchStop {
    /// Every stage ran; the beam is finalized.
    Completed,
    /// A stage produced no candidates (the workload cannot be placed at
    /// that memory level).
    Infeasible { stage: usize },
    /// The cancellation token fired.
    Cancelled,
    /// The wall-clock deadline passed; the beam holds the best partial
    /// states decided so far (completable via [`estimate::complete`]).
    DeadlineReached,
}

/// The outcome of the level walk: the surviving beam plus why it stopped.
pub(crate) struct SearchRun {
    pub(crate) beam: Vec<PartialState>,
    pub(crate) stop: SearchStop,
}

/// Runs the staged search: for each stage of the pass, expand every beam
/// state, dedup, estimate (memoized, parallel), and keep the
/// `beam_width` best. Returns the surviving beam best-estimate first,
/// finalized when the walk completed.
///
/// Cancellation is checked before every stage, between parent expansions,
/// inside the enumeration fits closures, and per claim inside the
/// estimate round (a pre-cancelled token stops the search before any
/// work, and a mid-stage cancel is observed within a bounded number of
/// evaluations). The deadline is checked at the same points, with one
/// first-stage concession: the first estimate round always completes its
/// first claim chunk before the deadline engages
/// ([`estimate::DeadlinePolicy::AfterFirstClaim`]), so a zero time budget
/// still yields a usable best-so-far mapping while a seeded first stage
/// can no longer overshoot a few-millisecond budget by a whole stage —
/// the graceful-degradation contract of
/// [`ScheduleOptions::time_budget`](crate::ScheduleOptions).
/// A stage aborted mid-round returns the previous beam, which the caller
/// completes under the best-so-far contract.
pub(crate) fn run_level_search(
    ctx: &SearchContext<'_>,
    pass: &dyn LevelPass,
    stats: &mut SearchStats,
    controls: &CallControls<'_>,
) -> SearchRun {
    let mut beam_states = vec![PartialState::root(ctx)];
    for (i, stage) in pass.stages(ctx.mems.len()).into_iter().enumerate() {
        // Breadcrumb for the panic-isolation boundary: a fault caught
        // while this stage runs reports `search: level <stage>`.
        crate::session::fault_stage::set(&format!("search: level {stage}"));
        if controls.cancelled() {
            return SearchRun { beam: beam_states, stop: SearchStop::Cancelled };
        }
        if i > 0 && controls.past_deadline() {
            return SearchRun { beam: beam_states, stop: SearchStop::DeadlineReached };
        }
        if let Some(sink) = controls.progress {
            sink.on_event(&ProgressEvent::LevelStarted { stage, beam: beam_states.len() });
        }
        let mut cands: Vec<PartialState> = Vec::new();
        for parent in 0..beam_states.len() {
            // Bounded-latency controls between parent expansions (a
            // single expansion is bounded by the enumeration caps; the
            // fits closures additionally observe cancellation inside the
            // enumeration trees). The deadline keeps the first-stage
            // exemption of the zero-budget contract.
            if controls.cancelled() {
                return SearchRun { beam: beam_states, stop: SearchStop::Cancelled };
            }
            if i > 0 && controls.past_deadline() {
                return SearchRun { beam: beam_states, stop: SearchStop::DeadlineReached };
            }
            let from = cands.len();
            pass.expand(ctx, &beam_states[parent], stage, &mut cands, stats);
            // Stamp each child with its parent index: estimation memoizes
            // the decided-prefix cost once per parent, and relies on one
            // parent's children being contiguous (dedup keeps order).
            for c in &mut cands[from..] {
                c.parent = parent;
            }
        }
        // A cancel that fired inside the enumeration closures can truncate
        // the candidate set; report it as a cancel, never as infeasibility.
        if controls.cancelled() {
            return SearchRun { beam: beam_states, stop: SearchStop::Cancelled };
        }
        if cands.is_empty() {
            return SearchRun { beam: Vec::new(), stop: SearchStop::Infeasible { stage } };
        }
        let removed = beam::dedup(&mut cands);
        stats.level_mut(stage).dedup_removed += removed as u64;
        let before = cands.len();
        let deadline = if i > 0 {
            estimate::DeadlinePolicy::Always
        } else {
            estimate::DeadlinePolicy::AfterFirstClaim
        };
        match estimate::estimate_all(ctx, pass.direction(), &mut cands, stage, deadline, stats) {
            estimate::RoundStatus::Done => {}
            estimate::RoundStatus::Cancelled => {
                return SearchRun { beam: beam_states, stop: SearchStop::Cancelled };
            }
            estimate::RoundStatus::DeadlineReached => {
                return SearchRun { beam: beam_states, stop: SearchStop::DeadlineReached };
            }
        }
        beam::select(&mut cands, ctx.config.beam_width, stage, stats);
        if let Some(sink) = controls.progress {
            let level = &stats.levels[stage];
            let probes = level.cache_hits + level.cache_misses;
            sink.on_event(&ProgressEvent::LevelFinished {
                stage,
                candidates: before,
                beam: cands.len(),
                cache_hit_rate: if probes == 0 {
                    0.0
                } else {
                    level.cache_hits as f64 / probes as f64
                },
                constraint_filtered: level.constraint.pruned(),
            });
        }
        beam_states = cands;
    }
    pass.finalize(ctx, &mut beam_states);
    SearchRun { beam: beam_states, stop: SearchStop::Completed }
}
