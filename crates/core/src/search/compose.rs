//! The shared composition loop: expand → dedup → estimate → select, one
//! pass per memory level, with the walk direction abstracted as a
//! [`LevelPass`].

use sunstone_mapping::MappingLevel;

use super::stats::SearchStats;
use super::{beam, candidates, estimate, PartialState, SearchContext};
use crate::Direction;

/// A direction of the level-by-level walk (Table VI of the paper). Both
/// directions share [`run_level_search`]; a pass only decides the stage
/// order, how one beam state expands, and how the final beam turns into
/// complete mappings.
pub(crate) trait LevelPass {
    /// Direction used when completing partial mappings for estimation.
    fn direction(&self) -> Direction;

    /// Stage indices in visit order (stage `i` decides memory `mems[i]`).
    fn stages(&self, n_mem: usize) -> Vec<usize>;

    /// Expands one beam state at `stage` into candidate children.
    fn expand(
        &self,
        ctx: &SearchContext<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    );

    /// Turns the surviving beam into complete mappings after the last
    /// stage.
    fn finalize(&self, ctx: &SearchContext<'_>, beam: &mut [PartialState]);
}

/// The paper's default: innermost memory outward. Partial costs track
/// final costs closely (reuse is resolved where most traffic lives), so
/// the beam cuts early and the explored space stays small.
pub(crate) struct BottomUpPass;

impl LevelPass for BottomUpPass {
    fn direction(&self) -> Direction {
        Direction::BottomUp
    }

    fn stages(&self, n_mem: usize) -> Vec<usize> {
        (0..n_mem).collect()
    }

    fn expand(
        &self,
        ctx: &SearchContext<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    ) {
        candidates::bottom_up_expand(ctx, state, stage, out, stats);
    }

    fn finalize(&self, _ctx: &SearchContext<'_>, _beam: &mut [PartialState]) {
        // The last stage already placed the remainder; quotas are all 1.
    }
}

/// DRAM inward (the Table VI study). Estimates of partial mappings are
/// far from final costs — the inner levels are undecided — so pruning
/// bites late and the explored space is much larger.
pub(crate) struct TopDownPass;

impl LevelPass for TopDownPass {
    fn direction(&self) -> Direction {
        Direction::TopDown
    }

    fn stages(&self, n_mem: usize) -> Vec<usize> {
        // Stage `i` decides the ordering at `mems[i + 1]`, the gap's
        // unrolls, and the resident tile at `mems[i]`; the innermost
        // memory's own loops are placed by `finalize`.
        (0..n_mem - 1).rev().collect()
    }

    fn expand(
        &self,
        ctx: &SearchContext<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    ) {
        candidates::top_down_expand(ctx, state, stage, out, stats);
    }

    fn finalize(&self, ctx: &SearchContext<'_>, beam: &mut [PartialState]) {
        // The frontier resident tile becomes the innermost memory's own
        // loops.
        let m0 = ctx.mems[0];
        let ndims = ctx.workload.num_dims();
        for s in beam {
            if let MappingLevel::Temporal(t) = &mut s.mapping.levels_mut()[m0] {
                t.factors = s.quotas.clone();
                s.quotas = vec![1; ndims];
            }
        }
    }
}

/// Runs the staged search: for each stage of the pass, expand every beam
/// state, dedup, estimate (memoized, parallel), and keep the
/// `beam_width` best. Returns the finalized beam, best-estimate first —
/// empty when some stage produced no candidates.
pub(crate) fn run_level_search(
    ctx: &SearchContext<'_>,
    pass: &dyn LevelPass,
    stats: &mut SearchStats,
) -> Vec<PartialState> {
    let mut beam_states = vec![PartialState::root(ctx)];
    for stage in pass.stages(ctx.mems.len()) {
        let mut cands: Vec<PartialState> = Vec::new();
        for state in &beam_states {
            pass.expand(ctx, state, stage, &mut cands, stats);
        }
        if cands.is_empty() {
            return Vec::new();
        }
        let removed = beam::dedup(&mut cands);
        stats.level_mut(stage).dedup_removed += removed as u64;
        estimate::estimate_all(ctx, pass.direction(), &mut cands, stage, stats);
        beam::select(&mut cands, ctx.config.beam_width, stage, stats);
        beam_states = cands;
    }
    pass.finalize(ctx, &mut beam_states);
    beam_states
}
