//! The level-by-level scheduling driver (Section III-C / V-A of the
//! paper).
//!
//! Bottom-up (the default), the driver walks the memory hierarchy from the
//! innermost level outward. At each stage it enumerates, per surviving
//! partial mapping:
//!
//! * spatial unrollings for the fabric directly below the current memory
//!   (paired with the ordering chosen for this memory at the previous
//!   stage, per the Unrolling Principle),
//! * loop orderings for the *next* memory level (the ordering trie),
//! * tiles for the current memory that are maximal along the reused
//!   operand's indexing dimensions (the Tiling Principle),
//!
//! then estimates each candidate by completing it (remaining loops at
//! DRAM) and evaluating the analytic model, and keeps the best
//! `beam_width` candidates — the alpha-beta-style pruning the paper
//! describes: partial costs are close to final costs when reuse is
//! resolved bottom-up, so weak branches are cut early.
//!
//! The top-down direction (Table VI) runs the same machinery from DRAM
//! inward; its estimates are far from final costs, so pruning bites later
//! and the explored space is much larger.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sunstone_arch::{ArchError, ArchSpec, Binding, BindingError, Level, LevelId};
use sunstone_ir::{DimSet, Workload};
use sunstone_mapping::{Mapping, MappingLevel, ValidationContext};
use sunstone_model::{CostModel, CostReport};

use crate::ordering::{OrderingCandidate, OrderingTrie};
use crate::tiling::enumerate_tiles;
use crate::unrolling::{enumerate_unrollings, principle_excluded_dims};
use crate::{Direction, IntraOrder, SunstoneConfig};

/// Errors from [`Sunstone::schedule`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The architecture failed validation.
    Arch(ArchError),
    /// Tensors could not be bound to buffers.
    Binding(BindingError),
    /// No valid mapping was found (e.g. a tensor's minimal tile exceeds
    /// some buffer).
    NoValidMapping,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Arch(e) => write!(f, "invalid architecture: {e}"),
            ScheduleError::Binding(e) => write!(f, "binding failed: {e}"),
            ScheduleError::NoValidMapping => write!(f, "no valid mapping found"),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Arch(e) => Some(e),
            ScheduleError::Binding(e) => Some(e),
            ScheduleError::NoValidMapping => None,
        }
    }
}

impl From<ArchError> for ScheduleError {
    fn from(e: ArchError) -> Self {
        ScheduleError::Arch(e)
    }
}

impl From<BindingError> for ScheduleError {
    fn from(e: BindingError) -> Self {
        ScheduleError::Binding(e)
    }
}

/// Search statistics of one scheduling run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Complete mappings evaluated with the cost model (the optimization
    /// space actually visited — comparable across tools in Table I).
    pub evaluated: u64,
    /// Loop orderings considered across all stages.
    pub orderings: u64,
    /// Tiles considered across all stages.
    pub tiles: u64,
    /// Spatial unrollings considered across all stages.
    pub unrollings: u64,
    /// Trie / tree nodes explored while enumerating.
    pub nodes_explored: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// The result of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cost report (energy, delay, EDP, per-level breakdown).
    pub report: CostReport,
    /// Search statistics.
    pub stats: SearchStats,
}

/// The Sunstone scheduler. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Sunstone {
    config: SunstoneConfig,
}

/// One partial mapping alive in the beam.
#[derive(Debug, Clone)]
struct PartialState {
    mapping: Mapping,
    /// Remaining per-dimension quotient.
    quotas: Vec<u64>,
    /// Ordering chosen for the *current frontier* memory (bottom-up: set
    /// by the previous stage; governs this stage's unrolling principle).
    ordering_here: Option<OrderingCandidate>,
    /// EDP estimate of the completed mapping.
    estimate: f64,
}

struct Env<'a> {
    workload: &'a Workload,
    arch: &'a ArchSpec,
    binding: &'a Binding,
    model: CostModel<'a>,
    trie: OrderingTrie<'a>,
    /// Memory level positions, innermost first.
    mems: Vec<usize>,
    /// `lower_spatial[i]`: spatial positions between memory `i − 1` and
    /// memory `i` (for `i = 0`: below the innermost memory).
    lower_spatial: Vec<Vec<usize>>,
}

impl Sunstone {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SunstoneConfig) -> Self {
        Sunstone { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SunstoneConfig {
        &self.config
    }

    /// Finds the best mapping of `workload` onto `arch`.
    ///
    /// # Errors
    ///
    /// Fails if the architecture is invalid, tensors cannot be bound, or
    /// no valid mapping exists.
    pub fn schedule(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
    ) -> Result<ScheduleResult, ScheduleError> {
        self.schedule_top_k(workload, arch, 1)?
            .into_iter()
            .next()
            .ok_or(ScheduleError::NoValidMapping)
    }

    /// Finds the `k` best distinct mappings, best first (the survivors of
    /// the final beam). Used by the network-level layout-consistency pass
    /// ([`crate::network::schedule_chain`]).
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule); an `Ok` result contains at least
    /// one mapping.
    pub fn schedule_top_k(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        k: usize,
    ) -> Result<Vec<ScheduleResult>, ScheduleError> {
        let start = Instant::now();
        arch.validate()?;
        let binding = Binding::resolve(arch, workload)?;
        let env = Env::new(workload, arch, &binding);
        let mut stats = SearchStats::default();

        let finals = match self.config.direction {
            Direction::BottomUp => self.run_bottom_up(&env, &mut stats),
            Direction::TopDown => self.run_top_down(&env, &mut stats),
        };

        let ctx = ValidationContext::new(workload, arch, &binding);
        let mut valid: Vec<(Mapping, CostReport)> = finals
            .into_iter()
            .filter(|state| ctx.validate(&state.mapping).is_ok())
            .map(|state| {
                let report = env.model.evaluate_unchecked(&state.mapping);
                (state.mapping, report)
            })
            .collect();
        valid.sort_by(|a, b| {
            self.config.objective.of(&a.1).total_cmp(&self.config.objective.of(&b.1))
        });
        valid.dedup_by(|a, b| a.0 == b.0);
        valid.truncate(k.max(1));
        stats.elapsed = start.elapsed();
        if valid.is_empty() {
            return Err(ScheduleError::NoValidMapping);
        }
        Ok(valid
            .into_iter()
            .map(|(mapping, report)| ScheduleResult { mapping, report, stats: stats.clone() })
            .collect())
    }

    fn run_bottom_up(&self, env: &Env<'_>, stats: &mut SearchStats) -> Vec<PartialState> {
        let n_mem = env.mems.len();
        let mut beam = vec![PartialState {
            mapping: Mapping::streaming_base(env.workload, env.arch),
            quotas: env.workload.dim_sizes(),
            ordering_here: None,
            estimate: f64::INFINITY,
        }];
        for stage in 0..n_mem {
            let mut candidates: Vec<PartialState> = Vec::new();
            for state in &beam {
                self.bottom_up_stage(env, state, stage, &mut candidates, stats);
            }
            if candidates.is_empty() {
                return Vec::new();
            }
            dedup_candidates(&mut candidates);
            self.estimate_all(env, &mut candidates, stats);
            candidates.sort_by(|a, b| a.estimate.total_cmp(&b.estimate));
            candidates.truncate(self.config.beam_width);
            beam = candidates;
        }
        // Completion: the final stage already placed the remainder.
        beam
    }

    /// One bottom-up stage: unrollings below memory `stage`, tile at
    /// memory `stage`, ordering at memory `stage + 1`.
    fn bottom_up_stage(
        &self,
        env: &Env<'_>,
        state: &PartialState,
        stage: usize,
        out: &mut Vec<PartialState>,
        stats: &mut SearchStats,
    ) {
        let mem_pos = env.mems[stage];
        let last_stage = stage == env.mems.len() - 1;
        let ndims = env.workload.num_dims();
        let base = state.mapping.resident_tile(mem_pos, ndims);

        // --- Component enumerators -------------------------------------
        let in_play: DimSet = env
            .workload
            .dim_ids()
            .filter(|d| state.quotas[d.index()] > 1)
            .collect();

        let orderings: Vec<Option<OrderingCandidate>> = if last_stage {
            vec![None]
        } else if self.config.pruning.ordering_trie {
            let (cands, explored) = env.trie.candidates(in_play);
            stats.nodes_explored += explored as u64;
            stats.orderings += cands.len() as u64;
            cands.into_iter().map(Some).collect()
        } else {
            let cands = env.trie.all_permutations(in_play);
            stats.orderings += cands.len() as u64;
            cands.into_iter().map(Some).collect()
        };

        match self.config.intra_order {
            IntraOrder::OrderTileUnroll => {
                let reserve = self.spatial_reserve(env, stage, true, &state.quotas);
                for ordering in &orderings {
                    let tiles = self.tiles_for(
                        env, state, stage, &base, &state.quotas, reserve, ordering, stats,
                    );
                    for tile in &tiles {
                        let growth = quot(tile, &base);
                        let tile_quotas = divide(&state.quotas, &growth);
                        let unrolls =
                            self.unrolls_for(env, state, stage, tile, &tile_quotas, stats);
                        for u in &unrolls {
                            out.push(self.make_child(env, state, stage, &growth, u, ordering));
                        }
                    }
                }
            }
            IntraOrder::UnrollTileOrder => {
                let reserve = self.spatial_reserve(env, stage, false, &state.quotas);
                let unrolls = self.unrolls_for(env, state, stage, &base, &state.quotas, stats);
                for u in &unrolls {
                    let u_quotas = divide(&state.quotas, u);
                    let base_u: Vec<u64> =
                        base.iter().zip(u).map(|(b, f)| b * f).collect();
                    for ordering in &orderings {
                        let tiles = self.tiles_for(
                            env, state, stage, &base_u, &u_quotas, reserve, ordering, stats,
                        );
                        for tile in &tiles {
                            let growth = quot(tile, &base_u);
                            out.push(self.make_child(env, state, stage, &growth, u, ordering));
                        }
                    }
                }
            }
            IntraOrder::TileUnrollOrder => {
                // Tiling before ordering: allow the union of every
                // candidate ordering's growth dimensions.
                let reserve = self.spatial_reserve(env, stage, true, &state.quotas);
                let union_allowed = orderings
                    .iter()
                    .flatten()
                    .map(|o| self.tile_allowed_dims(env, o))
                    .fold(DimSet::EMPTY, DimSet::union);
                let tiles = self.tiles_with_allowed(
                    env,
                    stage,
                    &base,
                    &state.quotas,
                    reserve,
                    union_allowed,
                    DimSet::first_n(env.workload.num_dims()),
                    stats,
                );
                for tile in &tiles {
                    let growth = quot(tile, &base);
                    let tile_quotas = divide(&state.quotas, &growth);
                    let unrolls = self.unrolls_for(env, state, stage, tile, &tile_quotas, stats);
                    for u in &unrolls {
                        for ordering in &orderings {
                            out.push(self.make_child(env, state, stage, &growth, u, ordering));
                        }
                    }
                }
            }
        }
    }

    /// The parallelism budget a tile must leave unconsumed: the product of
    /// all spatial fabric sizes the tile has not yet passed (scaled by the
    /// utilization floor, capped by what the problem can offer). This is
    /// the "high throughput" constraint of Table I: a tile that swallows
    /// the quota the fabrics need would force an under-utilized — and
    /// therefore dominated — mapping.
    fn spatial_reserve(
        &self,
        env: &Env<'_>,
        stage: usize,
        include_gap: bool,
        quotas: &[u64],
    ) -> u64 {
        let m = env.mems[stage];
        let mut units: u128 = 1;
        for (pos, s) in env.arch.spatial_levels() {
            if pos.index() > m {
                units *= u128::from(s.units);
            }
        }
        if include_gap {
            for &p in &env.lower_spatial[stage] {
                if let Some(s) = env.arch.level(LevelId(p)).as_spatial() {
                    units *= u128::from(s.units);
                }
            }
        }
        let want = ((units as f64) * self.config.min_spatial_utilization).ceil() as u128;
        let avail: u128 = quotas.iter().map(|&q| u128::from(q)).product();
        want.min(avail).max(1) as u64
    }

    /// Tile candidates for one ordering at the stage's memory level.
    #[allow(clippy::too_many_arguments)]
    fn tiles_for(
        &self,
        env: &Env<'_>,
        state: &PartialState,
        stage: usize,
        base: &[u64],
        quotas: &[u64],
        reserve: u64,
        ordering: &Option<OrderingCandidate>,
        stats: &mut SearchStats,
    ) -> Vec<Vec<u64>> {
        if stage == env.mems.len() - 1 {
            // DRAM: the remainder is placed by `make_child`; the "tile" is
            // the base itself.
            return vec![base.to_vec()];
        }
        let all = DimSet::first_n(env.workload.num_dims());
        let allowed = match ordering {
            Some(o) => self.tile_allowed_dims(env, o),
            None => all,
        };
        // The parallelism reserve is measured over the dimensions the
        // fabrics may actually unroll. When this stage has a fabric in its
        // own gap, that fabric pairs with the ordering chosen at the
        // *previous* stage (`state.ordering_here`); otherwise the nearest
        // future fabric pairs with the ordering being chosen now.
        let governing = if env.lower_spatial[stage].is_empty() {
            ordering.as_ref()
        } else {
            state.ordering_here.as_ref()
        };
        let mut unrollable = match governing {
            Some(o) => all.difference(self.unroll_excluded(env, o)),
            None => all,
        };
        // Mirror the high-throughput fallback of `unrolls_for`: when the
        // principled dimensions cannot reach the utilization floor, the
        // fabrics will unroll any dimension, so the reserve must guard
        // them all.
        let avail: u128 =
            unrollable.iter().map(|d| u128::from(quotas[d.index()])).product();
        if avail < u128::from(reserve) {
            unrollable = all;
        }
        self.tiles_with_allowed(env, stage, base, quotas, reserve, allowed, unrollable, stats)
    }

    /// Tile enumeration with an explicit growth set. The parallelism
    /// reserve is measured over `unrollable` — the dimensions the Spatial
    /// Unrolling Principle will actually let the fabrics consume — so a
    /// tile cannot swallow the quota the unrollings need.
    #[allow(clippy::too_many_arguments)]
    fn tiles_with_allowed(
        &self,
        env: &Env<'_>,
        stage: usize,
        base: &[u64],
        quotas: &[u64],
        reserve: u64,
        allowed: DimSet,
        unrollable: DimSet,
        stats: &mut SearchStats,
    ) -> Vec<Vec<u64>> {
        let mem_pos = env.mems[stage];
        let outcome = enumerate_tiles(
            base,
            quotas,
            allowed,
            |tile| {
                let headroom: u128 = unrollable
                    .iter()
                    .map(|d| {
                        let i = d.index();
                        u128::from(quotas[i] / (tile[i] / base[i]))
                    })
                    .product();
                headroom >= u128::from(reserve).min(
                    unrollable.iter().map(|d| u128::from(quotas[d.index()])).product(),
                ) && env.fits_mem(mem_pos, tile)
            },
            self.config.pruning.tiling_maximal,
        );
        stats.nodes_explored += outcome.explored as u64;
        let mut tiles = outcome.tiles;
        if tiles.len() > self.config.max_tiles_per_enum {
            // Keep the largest tiles: maximal-frontier members with the
            // biggest iteration volume capture the most reuse.
            tiles.sort_by_key(|t| std::cmp::Reverse(t.iter().product::<u64>()));
            tiles.truncate(self.config.max_tiles_per_enum);
        }
        stats.tiles += tiles.len() as u64;
        tiles
    }

    /// Dimensions the Unrolling Principle forbids for fabrics paired with
    /// this ordering.
    fn unroll_excluded(&self, env: &Env<'_>, ordering: &OrderingCandidate) -> DimSet {
        if !self.config.pruning.unrolling_principle {
            return DimSet::EMPTY;
        }
        principle_excluded_dims(
            ordering.fully_reused().map(|t| env.workload.reuse_info().of(t).full_reuse),
        )
    }

    /// Growth dimensions permitted by the Tiling Principle for an
    /// ordering: the indexing dimensions of every fully reused tensor (all
    /// dimensions when the principle is disabled or nothing is reused).
    fn tile_allowed_dims(&self, env: &Env<'_>, ordering: &OrderingCandidate) -> DimSet {
        let all = DimSet::first_n(env.workload.num_dims());
        if !self.config.pruning.tiling_reuse_dims {
            return all;
        }
        let mut allowed = DimSet::EMPTY;
        let mut any = false;
        for t in ordering.fully_reused() {
            allowed = allowed.union(env.workload.tensor(t).indexing_dims());
            any = true;
        }
        if any {
            allowed
        } else {
            all
        }
    }

    /// Unrolling candidates for the spatial levels directly below the
    /// stage's memory, as a combined per-level factor assignment. Returns
    /// vectors of per-dimension factors per spatial position, flattened to
    /// a single product vector (our architectures have at most one fabric
    /// per gap).
    fn unrolls_for(
        &self,
        env: &Env<'_>,
        state: &PartialState,
        stage: usize,
        resident_with_tile: &[u64],
        quotas: &[u64],
        stats: &mut SearchStats,
    ) -> Vec<Vec<u64>> {
        let spatial_positions = &env.lower_spatial[stage];
        if spatial_positions.is_empty() {
            return vec![vec![1; env.workload.num_dims()]];
        }
        // The presets have at most one fabric per gap; for generality,
        // nest the enumeration over each fabric sequentially.
        let mut results: Vec<Vec<u64>> = vec![vec![1; env.workload.num_dims()]];
        for &pos in spatial_positions {
            let fabric = env.arch.level(LevelId(pos)).as_spatial().expect("spatial level");
            let mut excluded = DimSet::EMPTY;
            if self.config.pruning.unrolling_principle {
                if let Some(o) = &state.ordering_here {
                    excluded = principle_excluded_dims(
                        o.fully_reused()
                            .map(|t| env.workload.reuse_info().of(t).full_reuse),
                    );
                }
            }
            let hard_excluded = if fabric.allow_reduction {
                DimSet::EMPTY
            } else {
                env.workload.reduction_dims()
            };
            let all = DimSet::first_n(env.workload.num_dims());
            let principled = all.difference(excluded.union(hard_excluded));
            let relaxed = all.difference(hard_excluded);
            let mem_pos = env.mems[stage];
            let mut next = Vec::new();
            for prev in &results {
                let q = divide(quotas, prev);
                let fits = |u: &[u64]| {
                    // The unroll inflates the resident tile of the
                    // memory above the fabric (the stage's memory).
                    let combined: Vec<u64> = resident_with_tile
                        .iter()
                        .zip(prev.iter().zip(u))
                        .map(|(t, (a, b))| t * a * b)
                        .collect();
                    env.fits_mem(mem_pos, &combined)
                };
                let mut outcome = enumerate_unrollings(
                    &q,
                    principled,
                    fabric.units,
                    fits,
                    self.config.min_spatial_utilization,
                    self.config.pruning.unrolling_principle,
                );
                // The high-throughput constraint dominates the Unrolling
                // Principle: when the principled dimensions cannot keep
                // the fabric busy, widen to every dimension the hardware
                // permits.
                let floor = self.config.min_spatial_utilization * fabric.units as f64;
                let best = outcome
                    .unrollings
                    .iter()
                    .map(|u| u.iter().product::<u64>() as f64)
                    .fold(0.0f64, f64::max);
                if best < floor && principled != relaxed {
                    let wide = enumerate_unrollings(
                        &q,
                        relaxed,
                        fabric.units,
                        fits,
                        self.config.min_spatial_utilization,
                        self.config.pruning.unrolling_principle,
                    );
                    outcome.explored += wide.explored;
                    outcome.unrollings.extend(wide.unrollings);
                }
                stats.nodes_explored += outcome.explored as u64;
                let mut unrollings = outcome.unrollings;
                if unrollings.len() > self.config.max_unrolls_per_enum {
                    unrollings
                        .sort_by_key(|u| std::cmp::Reverse(u.iter().product::<u64>()));
                    unrollings.truncate(self.config.max_unrolls_per_enum);
                }
                stats.unrollings += unrollings.len() as u64;
                for u in unrollings {
                    next.push(multiply(prev, &u));
                }
            }
            results = next;
        }
        results
    }

    /// Builds the child state for one (growth, unroll, ordering) choice;
    /// `growth` is the vector of temporal tiling factors for this stage's
    /// memory (the tile divided by everything below it, unroll included).
    fn make_child(
        &self,
        env: &Env<'_>,
        state: &PartialState,
        stage: usize,
        growth: &[u64],
        unroll: &[u64],
        ordering: &Option<OrderingCandidate>,
    ) -> PartialState {
        let mem_pos = env.mems[stage];
        let last_stage = stage == env.mems.len() - 1;
        let ndims = env.workload.num_dims();
        let mut mapping = state.mapping.clone();
        // Distribute the unroll over the gap's fabrics. With a single
        // fabric this is a direct assignment; with several, factors go to
        // the innermost fabric first, capped by its unit count.
        let mut remaining_unroll = unroll.to_vec();
        for &pos in &env.lower_spatial[stage] {
            let fabric = env.arch.level(LevelId(pos)).as_spatial().expect("spatial level");
            let mut assigned = vec![1u64; ndims];
            let mut used = 1u64;
            for d in 0..ndims {
                let mut f = remaining_unroll[d];
                while f > 1 && used * f > fabric.units {
                    // Peel the largest divisor that still fits.
                    let mut g = 1;
                    for cand in crate::tiling::sorted_divisors(f) {
                        if used * cand <= fabric.units {
                            g = cand;
                        }
                    }
                    f = g;
                    if f == 1 {
                        break;
                    }
                }
                assigned[d] = f;
                used *= f;
                remaining_unroll[d] /= f;
            }
            if let MappingLevel::Spatial(s) = &mut mapping.levels_mut()[pos] {
                s.factors = assigned;
            }
        }
        // Temporal factors at this memory: tile growth over the base,
        // divided by the unroll placed below this memory.
        let mut quotas = state.quotas.clone();
        if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[mem_pos] {
            for d in 0..ndims {
                let f = if last_stage { state.quotas[d] / unroll[d] } else { growth[d] };
                t.factors[d] = f;
                quotas[d] /= f * unroll[d];
            }
        }
        // Apply the ordering for the next memory level.
        if let Some(o) = ordering {
            let next_mem = env.mems[stage + 1];
            if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[next_mem] {
                t.order = o.order.clone();
            }
        }
        PartialState {
            mapping,
            quotas,
            ordering_here: ordering.clone(),
            estimate: f64::INFINITY,
        }
    }

    /// Top-down search (Table VI): stages run from DRAM inward; estimates
    /// complete partial mappings by keeping the unresolved resident tile
    /// at the frontier memory.
    fn run_top_down(&self, env: &Env<'_>, stats: &mut SearchStats) -> Vec<PartialState> {
        let n_mem = env.mems.len();
        let ndims = env.workload.num_dims();
        if n_mem == 1 {
            return self.run_bottom_up(env, stats);
        }
        // State: mapping with levels above the frontier decided;
        // `quotas` = resident tile still to distribute below the frontier.
        let mut beam = vec![PartialState {
            mapping: Mapping::streaming_base(env.workload, env.arch),
            quotas: env.workload.dim_sizes(),
            ordering_here: None,
            estimate: f64::INFINITY,
        }];
        for stage in (0..n_mem - 1).rev() {
            // Decide: ordering at mems[stage + 1], unrolls in the gap,
            // resident tile at mems[stage].
            let mut candidates = Vec::new();
            for state in &beam {
                let in_play: DimSet = env
                    .workload
                    .dim_ids()
                    .filter(|d| state.quotas[d.index()] > 1)
                    .collect();
                let orderings: Vec<OrderingCandidate> = if self.config.pruning.ordering_trie {
                    let (cands, explored) = env.trie.candidates(in_play);
                    stats.nodes_explored += explored as u64;
                    cands
                } else {
                    env.trie.all_permutations(in_play)
                };
                stats.orderings += orderings.len() as u64;
                for ordering in orderings {
                    // Unrolls in the gap below mems[stage + 1].
                    let gap = &env.lower_spatial[stage + 1];
                    let unrolls = self.top_down_unrolls(env, gap, &ordering, state, stats);
                    for u in &unrolls {
                        let q = divide(&state.quotas, u);
                        let allowed = self.tile_allowed_dims(env, &ordering);
                        let outcome = enumerate_tiles(
                            &vec![1; ndims],
                            &q,
                            allowed,
                            |tile| env.fits_mem(env.mems[stage], tile),
                            self.config.pruning.tiling_maximal,
                        );
                        stats.nodes_explored += outcome.explored as u64;
                        stats.tiles += outcome.tiles.len() as u64;
                        // Fabrics below this memory still need parallelism
                        // out of the tile; drop tiles too small to feed
                        // them (keep everything if none qualifies).
                        let mut below: u128 = 1;
                        for (pos, s) in env.arch.spatial_levels() {
                            if pos.index() < env.mems[stage] {
                                below *= u128::from(s.units);
                            }
                        }
                        let reserve =
                            ((below as f64) * self.config.min_spatial_utilization).ceil() as u128;
                        let mut tiles: Vec<&Vec<u64>> = outcome
                            .tiles
                            .iter()
                            .filter(|t| {
                                t.iter().map(|&x| u128::from(x)).product::<u128>() >= reserve
                            })
                            .collect();
                        if tiles.is_empty() {
                            tiles = outcome.tiles.iter().collect();
                        }
                        for tile in tiles {
                            candidates.push(self.make_top_down_child(
                                env, state, stage, tile, u, &ordering,
                            ));
                        }
                    }
                }
            }
            if candidates.is_empty() {
                return Vec::new();
            }
            dedup_candidates(&mut candidates);
            self.estimate_all(env, &mut candidates, stats);
            candidates.sort_by(|a, b| a.estimate.total_cmp(&b.estimate));
            candidates.truncate(self.config.beam_width);
            beam = candidates;
        }
        // Finalize: the frontier resident tile becomes the innermost
        // memory's own loops.
        let m0 = env.mems[0];
        beam.iter_mut()
            .for_each(|s| {
                if let MappingLevel::Temporal(t) = &mut s.mapping.levels_mut()[m0] {
                    t.factors = s.quotas.clone();
                    s.quotas = vec![1; ndims];
                }
            });
        beam
    }

    fn top_down_unrolls(
        &self,
        env: &Env<'_>,
        gap: &[usize],
        ordering: &OrderingCandidate,
        state: &PartialState,
        stats: &mut SearchStats,
    ) -> Vec<Vec<u64>> {
        let ndims = env.workload.num_dims();
        if gap.is_empty() {
            return vec![vec![1; ndims]];
        }
        let mut results: Vec<Vec<u64>> = vec![vec![1; ndims]];
        for &pos in gap {
            let fabric = env.arch.level(LevelId(pos)).as_spatial().expect("spatial level");
            let mut excluded = DimSet::EMPTY;
            if self.config.pruning.unrolling_principle {
                excluded = principle_excluded_dims(
                    ordering
                        .fully_reused()
                        .map(|t| env.workload.reuse_info().of(t).full_reuse),
                );
            }
            if !fabric.allow_reduction {
                excluded = excluded.union(env.workload.reduction_dims());
            }
            let allowed = DimSet::first_n(ndims).difference(excluded);
            let mut next = Vec::new();
            for prev in &results {
                let q = divide(&state.quotas, prev);
                let outcome = enumerate_unrollings(
                    &q,
                    allowed,
                    fabric.units,
                    |_| true,
                    self.config.min_spatial_utilization,
                    self.config.pruning.unrolling_principle,
                );
                stats.nodes_explored += outcome.explored as u64;
                let mut unrollings = outcome.unrollings;
                if unrollings.len() > self.config.max_unrolls_per_enum {
                    unrollings
                        .sort_by_key(|u| std::cmp::Reverse(u.iter().product::<u64>()));
                    unrollings.truncate(self.config.max_unrolls_per_enum);
                }
                stats.unrollings += unrollings.len() as u64;
                for u in unrollings {
                    next.push(multiply(prev, &u));
                }
            }
            results = next;
        }
        results
    }

    fn make_top_down_child(
        &self,
        env: &Env<'_>,
        state: &PartialState,
        stage: usize,
        tile: &[u64],
        unroll: &[u64],
        ordering: &OrderingCandidate,
    ) -> PartialState {
        let ndims = env.workload.num_dims();
        let mut mapping = state.mapping.clone();
        let upper_mem = env.mems[stage + 1];
        // Factors at the upper memory = remaining / (tile × unroll).
        if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[upper_mem] {
            for d in 0..ndims {
                t.factors[d] = state.quotas[d] / (tile[d] * unroll[d]);
            }
            t.order = ordering.order.clone();
        }
        // Unrolls in the gap.
        for &pos in &env.lower_spatial[stage + 1] {
            if let MappingLevel::Spatial(s) = &mut mapping.levels_mut()[pos] {
                s.factors = unroll.to_vec();
            }
        }
        PartialState {
            mapping,
            quotas: tile.to_vec(),
            ordering_here: Some(ordering.clone()),
            estimate: f64::INFINITY,
        }
    }

    /// Completes each candidate and estimates its EDP, in parallel.
    fn estimate_all(&self, env: &Env<'_>, candidates: &mut [PartialState], stats: &mut SearchStats) {
        stats.evaluated += candidates.len() as u64;
        let threads = self.config.effective_threads().min(candidates.len().max(1));
        let chunk = candidates.len().div_ceil(threads.max(1)).max(1);
        let direction = self.config.direction;
        let objective = self.config.objective;
        crossbeam::thread::scope(|scope| {
            for part in candidates.chunks_mut(chunk) {
                scope.spawn(move |_| {
                    for state in part {
                        let completed = complete(env, state, direction);
                        state.estimate =
                            objective.of(&env.model.evaluate_unchecked(&completed));
                    }
                });
            }
        })
        .expect("estimation threads do not panic");
    }
}

/// Completes a partial state into a structurally valid mapping: bottom-up
/// places the remaining quotient at the outermost memory; top-down places
/// the unresolved resident tile at the innermost memory.
fn complete(env: &Env<'_>, state: &PartialState, direction: Direction) -> Mapping {
    let mut m = state.mapping.clone();
    let pos = match direction {
        Direction::BottomUp => *env.mems.last().expect("at least one memory"),
        Direction::TopDown => env.mems[0],
    };
    if let MappingLevel::Temporal(t) = &mut m.levels_mut()[pos] {
        for (f, q) in t.factors.iter_mut().zip(&state.quotas) {
            *f *= q;
        }
    }
    m
}

/// Removes duplicate partial mappings: different enumeration paths (e.g.
/// the principled and relaxed unroll passes) can emit identical
/// candidates, and estimating each copy is pure waste.
fn dedup_candidates(candidates: &mut Vec<PartialState>) {
    let mut seen: std::collections::HashSet<Vec<u64>> =
        std::collections::HashSet::with_capacity(candidates.len());
    candidates.retain(|c| {
        let mut key = Vec::new();
        for level in c.mapping.levels() {
            key.extend_from_slice(level.factors());
            if let MappingLevel::Temporal(t) = level {
                key.extend(t.order.iter().map(|d| d.index() as u64));
            }
        }
        seen.insert(key)
    });
}

fn quot(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x / y).collect()
}

fn divide(a: &[u64], b: &[u64]) -> Vec<u64> {
    quot(a, b)
}

fn multiply(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

impl<'a> Env<'a> {
    fn new(workload: &'a Workload, arch: &'a ArchSpec, binding: &'a Binding) -> Self {
        let mems: Vec<usize> =
            arch.memory_levels().map(|(id, _)| id.index()).collect();
        let mut lower_spatial: Vec<Vec<usize>> = Vec::with_capacity(mems.len());
        let mut prev: i64 = -1;
        for &m in &mems {
            let gap: Vec<usize> = ((prev + 1) as usize..m)
                .filter(|&p| matches!(arch.level(LevelId(p)), Level::Spatial(_)))
                .collect();
            lower_spatial.push(gap);
            prev = m as i64;
        }
        Env {
            workload,
            arch,
            binding,
            model: CostModel::new(workload, arch, binding),
            trie: OrderingTrie::new(workload),
            mems,
            lower_spatial,
        }
    }

    /// Does the resident tile fit every partition of the memory at `pos`?
    fn fits_mem(&self, pos: usize, tile: &[u64]) -> bool {
        let Some(mem) = self.arch.level(LevelId(pos)).as_memory() else {
            return true;
        };
        let mut needed = vec![0u64; mem.partitions.len()];
        for t in self.workload.tensor_ids() {
            if let Some(pid) = self.binding.partition_of(LevelId(pos), t) {
                let tensor = self.workload.tensor(t);
                needed[pid.0] +=
                    tensor.footprint(tile) * u64::from(tensor.bits()).div_ceil(8);
            }
        }
        mem.partitions.iter().zip(&needed).all(|(p, &b)| p.capacity.fits(b))
    }
}

/// Extension used internally: a mapping with all factors 1 (the search
/// starting point — `Mapping::streaming` puts the problem at DRAM, which
/// the search does itself at completion time).
trait MappingExt {
    fn streaming_base(workload: &Workload, arch: &ArchSpec) -> Mapping;
}

impl MappingExt for Mapping {
    fn streaming_base(workload: &Workload, arch: &ArchSpec) -> Mapping {
        let mut m = Mapping::streaming(workload, arch);
        let last = arch.num_levels() - 1;
        if let MappingLevel::Temporal(t) = &mut m.levels_mut()[last] {
            t.factors = vec![1; workload.num_dims()];
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;

    fn conv1d(k: u64, c: u64, p: u64, r: u64) -> Workload {
        let mut b = Workload::builder("conv1d");
        let kk = b.dim("K", k);
        let cc = b.dim("C", c);
        let pp = b.dim("P", p);
        let rr = b.dim("R", r);
        b.input("ifmap", [cc.expr(), pp + rr]);
        b.input("weight", [kk.expr(), cc.expr(), rr.expr()]);
        b.output("ofmap", [kk.expr(), pp.expr()]);
        b.build().unwrap()
    }

    fn conv2d(n: u64, k: u64, c: u64, hw: u64, rs: u64) -> Workload {
        let mut b = Workload::builder("conv2d");
        let nn = b.dim("N", n);
        let kk = b.dim("K", k);
        let cc = b.dim("C", c);
        let pp = b.dim("P", hw);
        let qq = b.dim("Q", hw);
        let rr = b.dim("R", rs);
        let ss = b.dim("S", rs);
        b.input("ifmap", [nn.expr(), cc.expr(), pp + rr, qq + ss]);
        b.input("weight", [kk.expr(), cc.expr(), rr.expr(), ss.expr()]);
        b.output("ofmap", [nn.expr(), kk.expr(), pp.expr(), qq.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn schedules_conv_on_conventional() {
        let w = conv1d(16, 16, 56, 3);
        let arch = presets::conventional();
        let result = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
        // The found mapping must be valid and dramatically better than
        // streaming.
        let binding = Binding::resolve(&arch, &w).unwrap();
        let model = CostModel::new(&w, &arch, &binding);
        let streaming = model.evaluate(&Mapping::streaming(&w, &arch)).unwrap();
        assert!(result.report.edp < streaming.edp / 10.0);
        assert!(result.stats.evaluated > 0);
        assert!(result.mapping.used_parallelism() > 1, "the grid is used");
    }

    #[test]
    fn schedules_conv2d_on_simba() {
        let mut b = Workload::builder("conv2d");
        let n = b.dim("N", 2);
        let k = b.dim("K", 32);
        let c = b.dim("C", 32);
        let p = b.dim("P", 14);
        let q = b.dim("Q", 14);
        let r = b.dim("R", 3);
        let s = b.dim("S", 3);
        b.input_bits("ifmap", [n.expr(), c.expr(), p + r, q + s], 8);
        b.input_bits("weight", [k.expr(), c.expr(), r.expr(), s.expr()], 8);
        b.output_bits("ofmap", [n.expr(), k.expr(), p.expr(), q.expr()], 24);
        let w = b.build().unwrap();
        let arch = presets::simba_like();
        let result = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
        assert!(result.report.edp > 0.0);
        assert!(
            result.mapping.used_parallelism() >= 64,
            "multi-level parallelism exploited: {}",
            result.mapping.used_parallelism()
        );
    }

    #[test]
    fn schedules_matmul() {
        let mut b = Workload::builder("mm");
        let m = b.dim("M", 128);
        let n = b.dim("N", 128);
        let k = b.dim("K", 128);
        b.input("a", [m.expr(), k.expr()]);
        b.input("b", [k.expr(), n.expr()]);
        b.output("out", [m.expr(), n.expr()]);
        let w = b.build().unwrap();
        let arch = presets::conventional();
        let result = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
        assert!(result.report.edp > 0.0);
    }

    #[test]
    fn top_down_finds_comparable_edp_with_larger_space() {
        // Large enough that the whole problem exceeds L2 (3.1 MB): the
        // off-chip level has real tiling decisions to make.
        let w = conv1d(128, 128, 8192, 3);
        let arch = presets::conventional();
        let bu = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
        let td = Sunstone::new(SunstoneConfig {
            direction: Direction::TopDown,
            ..SunstoneConfig::default()
        })
        .schedule(&w, &arch)
        .unwrap();
        // The paper's Table VI message: bottom-up is the right default.
        // In our realization top-down's partial-cost estimates are far
        // from final costs (inner levels are undecided), so at equal beam
        // width it lands on clearly worse mappings; it needs a much larger
        // beam to close the gap (the ablation bench sweeps this).
        assert!(
            td.report.edp >= bu.report.edp,
            "bottom-up at least as good: bu={} td={}",
            bu.report.edp,
            td.report.edp
        );
        let wide = Sunstone::new(SunstoneConfig {
            direction: Direction::TopDown,
            beam_width: 512,
            ..SunstoneConfig::default()
        })
        .schedule(&w, &arch)
        .unwrap();
        assert!(wide.report.edp <= td.report.edp, "a wider top-down beam only helps");
    }

    #[test]
    fn intra_order_variants_agree_on_quality() {
        let w = conv1d(16, 16, 28, 3);
        let arch = presets::conventional();
        let mut edps = Vec::new();
        for intra in
            [IntraOrder::OrderTileUnroll, IntraOrder::UnrollTileOrder, IntraOrder::TileUnrollOrder]
        {
            let r = Sunstone::new(SunstoneConfig { intra_order: intra, ..Default::default() })
                .schedule(&w, &arch)
                .unwrap();
            edps.push(r.report.edp);
        }
        let best = edps.iter().cloned().fold(f64::INFINITY, f64::min);
        for e in &edps {
            assert!(*e <= best * 2.0, "intra orders stay close: {edps:?}");
        }
    }

    #[test]
    fn mttkrp_schedules_without_conv_specific_logic() {
        let mut b = Workload::builder("mttkrp");
        let i = b.dim("I", 64);
        let j = b.dim("J", 32);
        let k = b.dim("K", 64);
        let l = b.dim("L", 64);
        b.input("A", [i.expr(), k.expr(), l.expr()]);
        b.input("B", [k.expr(), j.expr()]);
        b.input("C", [l.expr(), j.expr()]);
        b.output("out", [i.expr(), j.expr()]);
        let w = b.build().unwrap();
        let arch = presets::conventional();
        let result = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
        assert!(result.report.edp > 0.0);
        assert!(result.mapping.used_parallelism() > 1);
    }

    #[test]
    fn larger_beam_never_hurts() {
        let w = conv2d(1, 16, 16, 14, 3);
        let arch = presets::conventional();
        let narrow = Sunstone::new(SunstoneConfig { beam_width: 2, ..Default::default() })
            .schedule(&w, &arch)
            .unwrap();
        let wide = Sunstone::new(SunstoneConfig { beam_width: 64, ..Default::default() })
            .schedule(&w, &arch)
            .unwrap();
        assert!(wide.report.edp <= narrow.report.edp * 1.0001);
    }

    #[test]
    fn stats_are_populated() {
        let w = conv1d(16, 16, 28, 3);
        let arch = presets::conventional();
        let r = Sunstone::new(SunstoneConfig::default()).schedule(&w, &arch).unwrap();
        assert!(r.stats.evaluated > 0);
        assert!(r.stats.orderings > 0);
        assert!(r.stats.tiles > 0);
        assert!(r.stats.nodes_explored > 0);
        assert!(r.stats.elapsed.as_nanos() > 0);
    }
}
