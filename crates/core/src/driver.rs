//! The scheduling entry point: [`Sunstone`] and its result/error types.
//!
//! The actual level-by-level search lives in [`crate::search`] — this
//! module only resolves the problem (architecture validation, tensor
//! binding), picks the direction pass, runs the staged pipeline, and
//! re-evaluates the surviving beam through the memoized estimate cache to
//! produce ranked [`ScheduleResult`]s.

use std::error::Error;
use std::fmt;
use std::time::Instant;

use sunstone_arch::{ArchError, ArchSpec, Binding, BindingError};
use sunstone_ir::Workload;
use sunstone_mapping::{Mapping, ValidationContext};
use sunstone_model::CostReport;

use crate::search::compose::{run_level_search, BottomUpPass, LevelPass, TopDownPass};
use crate::search::estimate::evaluate_cached;
use crate::search::{SearchContext, SearchStats};
use crate::{Direction, SunstoneConfig};

/// Errors from [`Sunstone::schedule`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The architecture failed validation.
    Arch(ArchError),
    /// Tensors could not be bound to buffers.
    Binding(BindingError),
    /// No valid mapping was found (e.g. a tensor's minimal tile exceeds
    /// some buffer).
    NoValidMapping,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Arch(e) => write!(f, "invalid architecture: {e}"),
            ScheduleError::Binding(e) => write!(f, "binding failed: {e}"),
            ScheduleError::NoValidMapping => write!(f, "no valid mapping found"),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::Arch(e) => Some(e),
            ScheduleError::Binding(e) => Some(e),
            ScheduleError::NoValidMapping => None,
        }
    }
}

impl From<ArchError> for ScheduleError {
    fn from(e: ArchError) -> Self {
        ScheduleError::Arch(e)
    }
}

impl From<BindingError> for ScheduleError {
    fn from(e: BindingError) -> Self {
        ScheduleError::Binding(e)
    }
}

/// The result of a scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cost report (energy, delay, EDP, per-level breakdown).
    pub report: CostReport,
    /// Search statistics (flat totals plus the per-level, per-principle
    /// pruning breakdown).
    pub stats: SearchStats,
}

/// The Sunstone scheduler. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Sunstone {
    config: SunstoneConfig,
}

impl Sunstone {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SunstoneConfig) -> Self {
        Sunstone { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SunstoneConfig {
        &self.config
    }

    /// Finds the best mapping of `workload` onto `arch`.
    ///
    /// # Errors
    ///
    /// Fails if the architecture is invalid, tensors cannot be bound, or
    /// no valid mapping exists.
    pub fn schedule(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
    ) -> Result<ScheduleResult, ScheduleError> {
        self.schedule_top_k(workload, arch, 1)?
            .into_iter()
            .next()
            .ok_or(ScheduleError::NoValidMapping)
    }

    /// Finds the `k` best distinct mappings, best first (the survivors of
    /// the final beam). Used by the network-level layout-consistency pass
    /// ([`crate::network::schedule_chain`]).
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule); an `Ok` result contains at least
    /// one mapping.
    pub fn schedule_top_k(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        k: usize,
    ) -> Result<Vec<ScheduleResult>, ScheduleError> {
        let start = Instant::now();
        arch.validate()?;
        let binding = Binding::resolve(arch, workload)?;
        let ctx = SearchContext::new(workload, arch, &binding, &self.config);
        let mut stats = SearchStats::default();

        let pass: &dyn LevelPass = match self.config.direction {
            Direction::BottomUp => &BottomUpPass,
            // A single memory level has no inter-level decisions to make
            // top-down; the bottom-up pass covers it directly.
            Direction::TopDown if ctx.mems.len() > 1 => &TopDownPass,
            Direction::TopDown => &BottomUpPass,
        };
        let finals = run_level_search(&ctx, pass, &mut stats);

        let vctx = ValidationContext::new(workload, arch, &binding);
        let mut valid: Vec<(Mapping, CostReport)> = Vec::new();
        for state in finals {
            if vctx.validate(&state.mapping).is_ok() {
                // The last stage already estimated these mappings, so with
                // the cache enabled this is a lookup, not a re-evaluation.
                let report = evaluate_cached(&ctx, &state.mapping, &mut stats);
                valid.push((state.mapping, report));
            }
        }
        valid.sort_by(|a, b| {
            self.config.objective.of(&a.1).total_cmp(&self.config.objective.of(&b.1))
        });
        valid.dedup_by(|a, b| a.0 == b.0);
        valid.truncate(k.max(1));
        stats.elapsed = start.elapsed();
        if valid.is_empty() {
            return Err(ScheduleError::NoValidMapping);
        }
        Ok(valid
            .into_iter()
            .map(|(mapping, report)| ScheduleResult { mapping, report, stats: stats.clone() })
            .collect())
    }
}
