//! The legacy one-shot entry point: [`Sunstone`].

use sunstone_arch::ArchSpec;
use sunstone_ir::Workload;

use crate::error::ScheduleError;
use crate::session::{ScheduleResult, Scheduler};
use crate::SunstoneConfig;

/// The original one-shot scheduler interface.
///
/// **Deprecation note:** `Sunstone` predates the session API and is kept
/// as a thin shim over a private [`Scheduler`](crate::Scheduler) so
/// existing callers keep compiling — each `Sunstone` *is* a session, so
/// even shim users get cross-call estimate caching. New code should use
/// [`Scheduler`](crate::Scheduler) directly: it adds batch scheduling
/// with shape dedup ([`schedule_batch`](crate::Scheduler::schedule_batch)),
/// per-call time budgets, cancellation, and progress reporting
/// ([`schedule_with`](crate::Scheduler::schedule_with)). The shim will be
/// removed in a future major release.
#[derive(Debug, Clone)]
pub struct Sunstone {
    session: Scheduler,
}

impl Sunstone {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SunstoneConfig) -> Self {
        Sunstone { session: Scheduler::new(config) }
    }

    /// The active configuration.
    pub fn config(&self) -> &SunstoneConfig {
        self.session.config()
    }

    /// The backing session, for callers migrating incrementally.
    pub fn session(&self) -> &Scheduler {
        &self.session
    }

    /// Finds the best mapping of `workload` onto `arch`.
    ///
    /// # Errors
    ///
    /// Fails if the configuration or architecture is invalid, tensors
    /// cannot be bound, or no valid mapping exists.
    pub fn schedule(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
    ) -> Result<ScheduleResult, ScheduleError> {
        self.session.schedule(workload, arch)
    }

    /// Finds the `k` best distinct mappings, best first (the survivors of
    /// the final beam).
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule); an `Ok` result contains at least
    /// one mapping.
    pub fn schedule_top_k(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        k: usize,
    ) -> Result<Vec<ScheduleResult>, ScheduleError> {
        self.session.schedule_top_k(workload, arch, k)
    }
}
