//! The loop-ordering trie (Section IV-A, Fig 4 of the paper).
//!
//! For one memory level, the orderings that matter are characterized by
//! their *innermost suffix*: the run of loops directly above the child
//! boundary. A tensor is fully reused when a prefix of that suffix stays
//! within its non-indexing dimensions (Ordering Principles 1–2), and
//! partially reused when the innermost loop slides one of its windows.
//!
//! The trie enumerates suffixes innermost-first and prunes:
//!
//! 1. children that add no further reuse over their parent (Ordering
//!    Principle 3), and
//! 2. candidates whose per-tensor reuse is dominated by another
//!    candidate's (the paper's sibling rules (i) and (ii)).

use serde::{Deserialize, Serialize};
use sunstone_ir::{DimId, DimSet, ReuseInfo, TensorId, Workload};

/// How a tensor is reused by an ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReuseKind {
    /// A window-sliding (halo) overlap via the innermost loop.
    Partial,
    /// The tensor stays resident across the reuse prefix.
    Full,
}

/// One surviving loop-ordering candidate for a memory level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderingCandidate {
    /// Complete loop order, **innermost-first** (a permutation of all
    /// workload dimensions).
    pub order: Vec<DimId>,
    /// Length of the reuse suffix (`order[..suffix_len]` are the loops the
    /// trie chose; the rest are appended canonically).
    pub suffix_len: usize,
    /// Tensors reused by this ordering.
    pub reused: Vec<(TensorId, ReuseKind)>,
}

impl OrderingCandidate {
    /// The reuse-suffix dimensions as a set.
    pub fn suffix_dims(&self) -> DimSet {
        self.order[..self.suffix_len].iter().copied().collect()
    }

    /// The tensors this ordering fully reuses.
    pub fn fully_reused(&self) -> impl Iterator<Item = TensorId> + '_ {
        self.reused.iter().filter(|(_, k)| *k == ReuseKind::Full).map(|(t, _)| *t)
    }
}

/// Per-tensor reuse score of a suffix: full-chain length plus a partial
/// bonus; used for dominance comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Score(Vec<u32>);

impl Score {
    /// `self` is dominated by `other` when it is nowhere better.
    fn dominated_by(&self, other: &Score) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

/// Detailed result of one trie enumeration, attributing pruned orderings
/// to the principle that removed them (consumed by the structured
/// [`SearchStats`](crate::SearchStats)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingOutcome {
    /// The surviving ordering candidates.
    pub candidates: Vec<OrderingCandidate>,
    /// Trie nodes explored (including the root).
    pub explored: usize,
    /// Suffix extensions rejected because they add no further reuse
    /// (Ordering Principle 3).
    pub rejected_no_reuse: usize,
    /// Enumerated suffixes dropped by sibling dominance over the
    /// Principle 1–2 reuse scores (the paper's rules (i) and (ii)).
    pub dominated: usize,
}

/// Enumerates promising loop orderings for a workload.
///
/// Construct once per workload, then call [`candidates`](Self::candidates)
/// per level with the set of dimensions still in play.
#[derive(Debug, Clone)]
pub struct OrderingTrie<'a> {
    workload: &'a Workload,
    reuse: ReuseInfo,
}

impl<'a> OrderingTrie<'a> {
    /// Creates the trie helper for a workload.
    pub fn new(workload: &'a Workload) -> Self {
        OrderingTrie { workload, reuse: workload.reuse_info() }
    }

    /// The reuse table driving the trie.
    pub fn reuse(&self) -> &ReuseInfo {
        &self.reuse
    }

    /// Enumerates surviving orderings over the given in-play dimensions.
    ///
    /// Returns the candidates and the number of trie nodes explored
    /// (for search-space statistics). With an empty in-play set, a single
    /// canonical ordering is returned.
    pub fn candidates(&self, in_play: DimSet) -> (Vec<OrderingCandidate>, usize) {
        let outcome = self.candidates_detailed(in_play);
        (outcome.candidates, outcome.explored)
    }

    /// As [`candidates`](Self::candidates), but additionally reporting how
    /// many orderings each pruning principle removed.
    pub fn candidates_detailed(&self, in_play: DimSet) -> OrderingOutcome {
        let mut nodes = Vec::new();
        let mut explored = 0usize;
        let mut rejected_no_reuse = 0usize;
        let mut stack: Vec<Vec<DimId>> = vec![Vec::new()];
        while let Some(suffix) = stack.pop() {
            explored += 1;
            if !suffix.is_empty() {
                nodes.push(suffix.clone());
            }
            let used: DimSet = suffix.iter().copied().collect();
            for d in in_play.difference(used).iter() {
                if self.extension_adds_reuse(&suffix, d) {
                    let mut child = suffix.clone();
                    child.push(d);
                    stack.push(child);
                } else {
                    rejected_no_reuse += 1;
                }
            }
        }

        let mut scored: Vec<(Vec<DimId>, Score)> =
            nodes.into_iter().map(|s| (s.clone(), self.score(&s))).collect();
        // Dominance pruning: drop candidates nowhere better than another.
        let mut keep = vec![true; scored.len()];
        for i in 0..scored.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..scored.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if scored[i].1.dominated_by(&scored[j].1) {
                    // Strict domination, or an equal-score duplicate
                    // (same reuse from the same dimensions) — keep `j`.
                    let strictly = scored[i].1 != scored[j].1;
                    let duplicate = scored[i].1 == scored[j].1 && j < i;
                    if strictly || duplicate {
                        keep[i] = false;
                        break;
                    }
                }
            }
        }
        let dominated = keep.iter().filter(|k| !**k).count();
        let mut result: Vec<OrderingCandidate> = Vec::new();
        for (i, (suffix, _)) in scored.drain(..).enumerate() {
            if keep[i] {
                result.push(self.complete(suffix, in_play));
            }
        }
        if result.is_empty() {
            result.push(self.complete(Vec::new(), in_play));
        }
        OrderingOutcome { candidates: result, explored, rejected_no_reuse, dominated }
    }

    /// Enumerates *all* permutations of the in-play dimensions (ordering
    /// pruning disabled — used by the ablation benches). Capped at 8 dims:
    /// beyond the cap the factorial blow-up (9! = 362 880 per beam state)
    /// is never what an ablation wants, so the call degrades to the pruned
    /// trie enumeration instead of panicking — this path is reachable from
    /// user input (a many-dimensional workload with the ordering-trie
    /// pruning disabled), so it must not be an assert.
    pub fn all_permutations(&self, in_play: DimSet) -> Vec<OrderingCandidate> {
        let dims: Vec<DimId> = in_play.iter().collect();
        if dims.len() > 8 {
            return self.candidates_detailed(in_play).candidates;
        }
        let mut result = Vec::new();
        permute(&mut dims.clone(), 0, &mut |perm| {
            result.push(self.complete(perm.to_vec(), in_play));
        });
        if result.is_empty() {
            result.push(self.complete(Vec::new(), in_play));
        }
        result
    }

    /// Builds the ordering forced by an `exact` order constraint: the
    /// constraint groups' in-play dimensions innermost (group sequence
    /// preserved, index order within a group), the rest appended
    /// canonically. `suffix_len` covers the forced dims so the unrolling
    /// principle treats them as deliberately chosen.
    pub fn forced_prefix(&self, groups: &[DimSet], in_play: DimSet) -> OrderingCandidate {
        let mut suffix: Vec<DimId> = Vec::new();
        for g in groups {
            suffix.extend(g.intersection(in_play).iter());
        }
        self.complete(suffix, in_play)
    }

    /// Does appending `d` to `suffix` yield new reuse?
    fn extension_adds_reuse(&self, suffix: &[DimId], d: DimId) -> bool {
        if suffix.is_empty() {
            return self
                .reuse
                .iter()
                .any(|(_, r)| r.full_reuse.contains(d) || r.partial_reuse.contains(d));
        }
        let extended: DimSet = suffix.iter().copied().chain([d]).collect();
        self.reuse.iter().any(|(_, r)| extended.is_subset(r.full_reuse))
    }

    /// Per-tensor reuse score of a suffix sequence (innermost-first):
    /// 2 × (length of the full-reuse prefix) + 1 if the innermost loop
    /// slides a window of the tensor.
    fn score(&self, suffix: &[DimId]) -> Score {
        let scores = self
            .reuse
            .iter()
            .map(|(_, r)| {
                let chain = suffix.iter().take_while(|&&d| r.full_reuse.contains(d)).count() as u32;
                let partial =
                    u32::from(suffix.first().is_some_and(|&d| r.partial_reuse.contains(d)));
                2 * chain + partial
            })
            .collect();
        Score(scores)
    }

    /// Builds the full permutation: suffix first, then the remaining
    /// in-play dimensions (window-sliding dims innermost so the halo
    /// credit of partial reuse can materialize), then out-of-play dims.
    fn complete(&self, suffix: Vec<DimId>, in_play: DimSet) -> OrderingCandidate {
        let suffix_len = suffix.len();
        let used: DimSet = suffix.iter().copied().collect();
        let mut order = suffix;
        let mut remaining: Vec<DimId> = in_play.difference(used).iter().collect();
        remaining.sort_by_key(|&d| {
            let partial = self.reuse.iter().any(|(_, r)| r.partial_reuse.contains(d));
            (std::cmp::Reverse(partial as u8), d.index())
        });
        order.extend(remaining);
        for d in self.workload.dim_ids() {
            if !in_play.contains(d) && !used.contains(d) {
                order.push(d);
            }
        }
        let reused = self.reused_of(&order[..suffix_len]);
        OrderingCandidate { order, suffix_len, reused }
    }

    fn reused_of(&self, suffix: &[DimId]) -> Vec<(TensorId, ReuseKind)> {
        let mut reused = Vec::new();
        for (t, r) in self.reuse.iter() {
            let chain = suffix.iter().take_while(|&&d| r.full_reuse.contains(d)).count();
            if chain > 0 {
                reused.push((t, ReuseKind::Full));
            } else if suffix.first().is_some_and(|&d| r.partial_reuse.contains(d)) {
                reused.push((t, ReuseKind::Partial));
            }
        }
        reused
    }
}

fn permute(dims: &mut [DimId], k: usize, f: &mut impl FnMut(&[DimId])) {
    if k == dims.len() {
        f(dims);
        return;
    }
    for i in k..dims.len() {
        dims.swap(k, i);
        permute(dims, k + 1, f);
        dims.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn conv1d_trie_matches_fig4() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let all = DimSet::first_n(4);
        let (cands, explored) = trie.candidates(all);
        let suffixes: Vec<Vec<usize>> = cands
            .iter()
            .map(|c| c.order[..c.suffix_len].iter().map(|d| d.index()).collect())
            .collect();
        // Survivors: [R, C] (ofmap full via R·C + ifmap partial via R),
        // [K] (ifmap full), [P] (weight full + ifmap partial).
        // Dims: 0=K, 1=C, 2=P, 3=R.
        assert!(suffixes.contains(&vec![3, 1]), "xxCR survives: {suffixes:?}");
        assert!(suffixes.contains(&vec![0]), "xxxK survives: {suffixes:?}");
        assert!(suffixes.contains(&vec![2]), "xxxP survives: {suffixes:?}");
        assert_eq!(cands.len(), 3, "exactly three survivors: {suffixes:?}");
        assert!(explored > cands.len(), "the trie explored pruned nodes too");
    }

    #[test]
    fn fig4_xxxc_is_dominated_by_xxcr() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let (cands, _) = trie.candidates(DimSet::first_n(4));
        let c = w.dim_by_name("C").unwrap();
        assert!(
            !cands.iter().any(|cand| cand.suffix_len == 1 && cand.order[0] == c),
            "xxxC must be pruned (Fig 4 step 5)"
        );
    }

    #[test]
    fn orderings_are_full_permutations() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let (cands, _) = trie.candidates(DimSet::first_n(4));
        for c in &cands {
            let set: DimSet = c.order.iter().copied().collect();
            assert_eq!(set.len(), 4, "order is a permutation: {:?}", c.order);
        }
    }

    #[test]
    fn reused_annotations_match_table_iii() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let (cands, _) = trie.candidates(DimSet::first_n(4));
        let ofmap = w.tensor_by_name("ofmap").unwrap();
        let ifmap = w.tensor_by_name("ifmap").unwrap();
        let rc = cands.iter().find(|c| c.suffix_len == 2).expect("the [R, C] candidate exists");
        assert!(rc.reused.contains(&(ofmap, ReuseKind::Full)));
        assert!(rc.reused.contains(&(ifmap, ReuseKind::Partial)));
        assert_eq!(rc.fully_reused().collect::<Vec<_>>(), vec![ofmap]);
    }

    #[test]
    fn restricted_in_play_set_restricts_suffixes() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let k = w.dim_by_name("K").unwrap();
        let p = w.dim_by_name("P").unwrap();
        let (cands, _) = trie.candidates(w.dim_set(&[k, p]));
        for c in &cands {
            assert!(c.suffix_dims().is_subset(w.dim_set(&[k, p])));
        }
        // K reuses ifmap, P reuses weight (+ partial ifmap): both survive.
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn empty_in_play_returns_canonical_order() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let (cands, _) = trie.candidates(DimSet::EMPTY);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].suffix_len, 0);
        assert_eq!(cands[0].order.len(), 4);
    }

    #[test]
    fn all_permutations_enumerates_factorial() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let perms = trie.all_permutations(DimSet::first_n(4));
        assert_eq!(perms.len(), 24);
    }

    #[test]
    fn matmul_trie_keeps_one_candidate_per_tensor() {
        // out[m,n] = Σ_k a[m,k] b[k,n]: each dim fully reuses exactly one
        // tensor and no partial reuse exists, so the trie keeps exactly
        // the three singleton suffixes.
        let mut b = Workload::builder("mm");
        let m = b.dim("M", 8);
        let n = b.dim("N", 8);
        let k = b.dim("K", 8);
        b.input("a", [m.expr(), k.expr()]);
        b.input("b", [k.expr(), n.expr()]);
        b.output("out", [m.expr(), n.expr()]);
        let w = b.build().unwrap();
        let trie = OrderingTrie::new(&w);
        let (cands, _) = trie.candidates(DimSet::first_n(3));
        let suffixes: Vec<Vec<usize>> = cands
            .iter()
            .map(|c| c.order[..c.suffix_len].iter().map(|d| d.index()).collect())
            .collect();
        assert_eq!(cands.len(), 3, "{suffixes:?}");
    }

    #[test]
    fn trie_is_much_smaller_than_permutation_space() {
        let w = conv1d();
        let trie = OrderingTrie::new(&w);
        let (cands, _) = trie.candidates(DimSet::first_n(4));
        assert!(cands.len() * 4 <= trie.all_permutations(DimSet::first_n(4)).len());
    }
}
