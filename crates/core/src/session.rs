//! The session-oriented scheduler API: [`Scheduler`].
//!
//! The paper's headline claim is scheduling *scale* — whole networks in
//! seconds — and the unit of scheduling at that scale is the network, not
//! the layer. A [`Scheduler`] is a long-lived, thread-safe session that
//! amortizes work across calls:
//!
//! * the **estimate cache** lives as long as the session and is keyed by
//!   *(workload, architecture, configuration, mapping)* fingerprints
//!   ([`crate::fingerprint`]), so repeated calls — and the repeated layer
//!   shapes every real network contains — skip the analytic model;
//! * [`schedule_batch`](Scheduler::schedule_batch) canonicalizes a slice
//!   of workloads, **dedups identical shapes** (ResNet-style networks
//!   repeat most blocks), searches only the unique shapes — fanned out
//!   over the session's persistent worker pool — and replays each result
//!   per occurrence;
//! * per-call **controls** bound the work — one shared [`CallOptions`]
//!   block (embedded in [`ScheduleOptions`] and [`BatchOptions`]) with a
//!   wall-clock [`time_budget`](CallOptions::time_budget) and graceful
//!   best-so-far return, a cooperative [`CancelToken`], a
//!   [`ProgressSink`] streaming level/layer events, and a per-call
//!   constraint override.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sunstone_arch::{ArchSpec, Binding};
use sunstone_ir::Workload;
use sunstone_mapping::{Mapping, MappingConstraints, ValidationContext};
use sunstone_model::CostReport;

use crate::constraints::ResolvedConstraints;
use crate::error::ScheduleError;
use crate::fingerprint::{
    context_fingerprint, factor_multiset_distance, warm_fingerprint, workload_fingerprint,
};
use crate::pool::{panic_message, SliceWriter, WorkerPool};
use crate::progress::{CancelToken, ProgressEvent, ProgressSink};
use crate::search::compose::{run_level_search, BottomUpPass, LevelPass, SearchStop, TopDownPass};
use crate::search::estimate::{self, EstimateCache, SessionCache, WarmEntry};
use crate::search::warm;
use crate::search::{CacheStats, CallControls, SearchContext, SearchStats};
use crate::{Direction, SunstoneConfig};

/// Thread-local breadcrumb naming the pipeline stage currently executing,
/// read by the panic-isolation boundary when it catches a fault. A panic
/// inside a worker-pool round re-raises on the *submitting* thread — the
/// thread that set the breadcrumb — so the boundary always reads the
/// breadcrumb of the faulting call, even with parallel estimate rounds.
pub(crate) mod fault_stage {
    use std::cell::RefCell;

    thread_local! {
        static STAGE: RefCell<String> = const { RefCell::new(String::new()) };
    }

    pub(crate) fn set(stage: &str) {
        STAGE.with(|s| {
            let mut s = s.borrow_mut();
            s.clear();
            s.push_str(stage);
        });
    }

    pub(crate) fn get() -> String {
        STAGE.with(|s| s.borrow().clone())
    }
}

/// Emits a [`ProgressEvent::Fault`] on the sink, swallowing any panic the
/// sink itself raises: the fault path must never fault.
fn emit_fault(sink: Option<&dyn ProgressSink>, stage: &str, layer: Option<&str>, message: &str) {
    if let Some(sink) = sink {
        let event = ProgressEvent::Fault {
            stage: stage.to_string(),
            layer: layer.map(str::to_string),
            message: message.to_string(),
        };
        let _ = panic::catch_unwind(AssertUnwindSafe(|| sink.on_event(&event)));
    }
}

/// The result of one scheduling run.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its cost report (energy, delay, EDP, per-level breakdown).
    pub report: CostReport,
    /// Search statistics (flat totals plus the per-level, per-principle
    /// pruning breakdown).
    pub stats: SearchStats,
}

/// How a bounded scheduling call ended.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ScheduleOutcome {
    /// The search ran every stage; the results are the real top-k.
    Complete(Vec<ScheduleResult>),
    /// The wall-clock budget expired mid-walk; the results are the best
    /// valid completions of the beam decided so far.
    BestSoFar(Vec<ScheduleResult>),
}

impl ScheduleOutcome {
    /// The ranked results, best first (never empty on an `Ok` outcome).
    pub fn results(&self) -> &[ScheduleResult] {
        match self {
            ScheduleOutcome::Complete(r) | ScheduleOutcome::BestSoFar(r) => r,
        }
    }

    /// Consumes the outcome into its ranked results.
    pub fn into_results(self) -> Vec<ScheduleResult> {
        match self {
            ScheduleOutcome::Complete(r) | ScheduleOutcome::BestSoFar(r) => r,
        }
    }

    /// Whether the search ran to completion (vs. a best-so-far cut).
    pub fn is_complete(&self) -> bool {
        matches!(self, ScheduleOutcome::Complete(_))
    }

    /// Consumes the outcome into its best result plus a *degraded*
    /// marker: `true` when the wall-clock budget cut the search short,
    /// so the result is the best-so-far of the beam, not the proven
    /// optimum. Serving layers use the marker to avoid caching a
    /// deadline-degraded mapping as if it were the true best.
    pub fn into_best(self) -> (ScheduleResult, bool) {
        let degraded = !self.is_complete();
        (self.into_results().remove(0), degraded)
    }
}

/// The per-call controls shared by **every** scheduling entry point:
/// constraint override, wall-clock budget, cooperative cancellation, and
/// progress reporting. [`ScheduleOptions`] and [`BatchOptions`] embed one
/// `CallOptions` (their [`call`](ScheduleOptions::call) field) and add
/// only what is specific to their call shape.
///
/// Construct with the builder-style setters — the struct is
/// `#[non_exhaustive]`, so fields can be *read* anywhere but new fields
/// can land without a major version:
///
/// ```
/// use std::time::Duration;
/// use sunstone::prelude::*;
///
/// let opts = ScheduleOptions::new()
///     .top_k(4)
///     .time_budget(Duration::from_millis(50))
///     .cancel(CancelToken::new());
/// assert_eq!(opts.top_k, 4);
/// assert!(opts.call.time_budget.is_some());
/// ```
#[derive(Clone, Default)]
#[non_exhaustive]
pub struct CallOptions {
    /// Mapping constraints for this call, overriding
    /// [`SunstoneConfig::constraints`] when set (`None` uses the config's
    /// set, which defaults to unconstrained). Unsatisfiable sets fail
    /// with [`ScheduleError::InvalidConstraints`].
    pub constraints: Option<MappingConstraints>,
    /// Wall-clock budget. When it expires mid-search the call returns
    /// [`ScheduleOutcome::BestSoFar`] with the best valid completions of
    /// the current beam — the first estimate round always completes its
    /// first claim chunk before the deadline engages, so even a zero
    /// budget yields a usable (if unrefined) mapping, while a
    /// warm-started first stage can no longer overshoot a
    /// few-millisecond budget by a whole stage. For a batch the budget
    /// covers the *whole batch*.
    pub time_budget: Option<Duration>,
    /// Cooperative cancellation; when fired the call returns
    /// [`ScheduleError::Cancelled`]. A batch shares one token across
    /// every worker.
    pub cancel: Option<CancelToken>,
    /// Progress callback (level started/finished per search; layer
    /// started/finished per unique batch shape).
    pub progress: Option<Arc<dyn ProgressSink>>,
}

impl CallOptions {
    /// Empty controls: unconstrained, unbounded, uncancellable, silent.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-call constraint override.
    pub fn constraints(mut self, constraints: MappingConstraints) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Sets the wall-clock budget.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the progress sink.
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress = Some(sink);
        self
    }
}

impl std::fmt::Debug for CallOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallOptions")
            .field("constraints", &self.constraints)
            .field("time_budget", &self.time_budget)
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "…"))
            .finish()
    }
}

/// Per-call options for [`Scheduler::schedule_with`]: the shared
/// [`CallOptions`] plus the result count. Construct with the
/// builder-style setters (see [`CallOptions`] for an example); the
/// shared setters are mirrored here, so one chain configures everything.
#[derive(Clone, Default)]
#[non_exhaustive]
pub struct ScheduleOptions {
    /// How many ranked results to return (0 is treated as 1).
    pub top_k: usize,
    /// The controls shared by every entry point (constraints, budget,
    /// cancellation, progress).
    pub call: CallOptions,
}

impl ScheduleOptions {
    /// Default options: best result only, no controls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many ranked results to return.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Replaces the whole shared-controls block.
    pub fn call(mut self, call: CallOptions) -> Self {
        self.call = call;
        self
    }

    /// Sets the per-call constraint override (see [`CallOptions::constraints`]).
    pub fn constraints(mut self, constraints: MappingConstraints) -> Self {
        self.call = self.call.constraints(constraints);
        self
    }

    /// Sets the wall-clock budget (see [`CallOptions::time_budget`]).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.call = self.call.time_budget(budget);
        self
    }

    /// Sets the cancellation token (see [`CallOptions::cancel`]).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.call = self.call.cancel(token);
        self
    }

    /// Sets the progress sink (see [`CallOptions::progress`]).
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.call = self.call.progress(sink);
        self
    }
}

impl std::fmt::Debug for ScheduleOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleOptions")
            .field("top_k", &self.top_k)
            .field("call", &self.call)
            .finish()
    }
}

/// Per-call options for [`Scheduler::schedule_batch_with`]: the shared
/// [`CallOptions`] plus the per-layer result count and the failure
/// policy. Construct with the builder-style setters.
#[derive(Clone, Default)]
#[non_exhaustive]
pub struct BatchOptions {
    /// Ranked results kept per layer (0 is treated as 1). The network
    /// layout-consistency pass uses this to choose among near-optimal
    /// candidates.
    pub top_k: usize,
    /// Stop starting new unique shapes after the first failure: shapes
    /// not yet started when a failure is observed report
    /// [`ScheduleError::Cancelled`] in the [`BatchOutcome`]. Off by
    /// default — the default contract is graceful partial failure, where
    /// every layer is attempted and reports its own `Result`.
    pub fail_fast: bool,
    /// The controls shared by every entry point. The constraint override
    /// applies to **every layer** of the batch; the time budget covers
    /// the whole batch.
    pub call: CallOptions,
}

impl BatchOptions {
    /// Default options: best result per layer, graceful partial failure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many ranked results to keep per layer.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Sets the fail-fast failure policy.
    pub fn fail_fast(mut self, fail_fast: bool) -> Self {
        self.fail_fast = fail_fast;
        self
    }

    /// Replaces the whole shared-controls block.
    pub fn call(mut self, call: CallOptions) -> Self {
        self.call = call;
        self
    }

    /// Sets the batch-wide constraint override (see [`CallOptions::constraints`]).
    pub fn constraints(mut self, constraints: MappingConstraints) -> Self {
        self.call = self.call.constraints(constraints);
        self
    }

    /// Sets the whole-batch wall-clock budget (see [`CallOptions::time_budget`]).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.call = self.call.time_budget(budget);
        self
    }

    /// Sets the cancellation token (see [`CallOptions::cancel`]).
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.call = self.call.cancel(token);
        self
    }

    /// Sets the progress sink (see [`CallOptions::progress`]).
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.call = self.call.progress(sink);
        self
    }
}

impl std::fmt::Debug for BatchOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchOptions")
            .field("top_k", &self.top_k)
            .field("fail_fast", &self.fail_fast)
            .field("call", &self.call)
            .finish()
    }
}

/// Aggregate statistics of one [`Scheduler::schedule_batch`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchStats {
    /// Input workloads.
    pub layers: usize,
    /// Distinct layer shapes actually searched.
    pub unique_shapes: usize,
    /// Layers served by replaying another layer's search
    /// (`layers − unique_shapes`).
    pub dedup_hits: usize,
    /// Unique searches cut short by the time budget (their layers hold
    /// best-so-far results).
    pub best_so_far: usize,
    /// Session-cache hits during this call.
    pub cache_hits: u64,
    /// Session-cache misses (model evaluations) during this call.
    pub cache_misses: u64,
    /// Mappings estimated across the unique searches
    /// ([`SearchStats::probed`] summed per unique shape).
    pub evaluated: u64,
    /// Layers whose search failed (their [`BatchOutcome`] entries are
    /// `Err`); every occurrence of a failed deduped shape counts.
    pub failed: usize,
    /// Wall-clock time of the whole batch call.
    pub elapsed: Duration,
}

/// The result of scheduling a batch of workloads.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per input layer, the ranked results (best first) — layers with
    /// identical shapes share identical (replayed) results.
    pub layers: Vec<Vec<ScheduleResult>>,
    /// Dedup/cache/parallelism statistics of the call.
    pub stats: BatchStats,
}

impl BatchResult {
    /// The best result of layer `i`.
    pub fn best(&self, i: usize) -> &ScheduleResult {
        &self.layers[i][0]
    }

    /// Iterates over the best result of each layer, in input order.
    pub fn bests(&self) -> impl Iterator<Item = &ScheduleResult> {
        self.layers.iter().map(|l| &l[0])
    }

    /// Total EDP across the batch (sum of each layer's best EDP).
    pub fn total_edp(&self) -> f64 {
        self.bests().map(|r| r.report.edp).sum()
    }
}

/// The outcome of a batch call with **per-layer failure granularity**
/// ([`Scheduler::schedule_batch_outcomes`]): one `Result` per input
/// layer. An infeasible or faulting layer no longer aborts the batch — a
/// failure in one deduped shape fails exactly the layers sharing that
/// shape (they replay the same error), and every other layer still
/// carries its ranked mappings.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per input layer, the ranked results (best first) or that layer's
    /// error. Layers with identical shapes share the replayed result —
    /// or the replayed error.
    pub layers: Vec<Result<Vec<ScheduleResult>, ScheduleError>>,
    /// Dedup/cache/parallelism statistics of the call; per-layer success
    /// is summarized by [`BatchStats::failed`].
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// Whether every layer scheduled successfully.
    pub fn all_ok(&self) -> bool {
        self.layers.iter().all(Result::is_ok)
    }

    /// The best result of layer `i`, or `None` if that layer failed.
    pub fn best(&self, i: usize) -> Option<&ScheduleResult> {
        self.layers[i].as_ref().ok().and_then(|l| l.first())
    }

    /// Iterates over the failed layers as `(input position, error)`.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &ScheduleError)> {
        self.layers.iter().enumerate().filter_map(|(i, l)| l.as_ref().err().map(|e| (i, e)))
    }

    /// Collapses into the all-or-nothing [`BatchResult`]: the first
    /// failing layer's error — input order, which coincides with the
    /// failing shape's first-occurrence order — or every layer's results.
    ///
    /// # Errors
    ///
    /// The first failing layer's error, if any layer failed.
    pub fn into_result(self) -> Result<BatchResult, ScheduleError> {
        let mut layers = Vec::with_capacity(self.layers.len());
        for layer in self.layers {
            layers.push(layer?);
        }
        Ok(BatchResult { layers, stats: self.stats })
    }
}

/// A long-lived, thread-safe scheduling session; see the
/// [module documentation](self).
///
/// Cloning is cheap and clones **share** the session's estimate cache, so
/// a `Scheduler` can be handed to several threads (it is also `Sync`, so
/// `&Scheduler` works just as well).
#[derive(Debug, Clone)]
pub struct Scheduler {
    config: SunstoneConfig,
    cache: Arc<SessionCache>,
    /// The session-persistent worker pool, created lazily on the first
    /// call that needs it (so constructing a `Scheduler` spawns nothing)
    /// and shared by clones. `threads − 1` background workers — the
    /// submitting thread always participates, so one configured thread
    /// means a pool with zero workers running inline.
    pool: Arc<OnceLock<WorkerPool>>,
}

impl Scheduler {
    /// Creates a session with the given configuration.
    ///
    /// The configuration is validated on each call (not here), so an
    /// invalid hand-constructed config fails with
    /// [`ScheduleError::InvalidConfig`] rather than panicking. Configs
    /// from [`SunstoneConfig::builder`](crate::SunstoneConfig::builder)
    /// are always valid.
    pub fn new(config: SunstoneConfig) -> Self {
        Scheduler { config, cache: Arc::new(SessionCache::new()), pool: Arc::new(OnceLock::new()) }
    }

    /// The active configuration.
    pub fn config(&self) -> &SunstoneConfig {
        &self.config
    }

    /// The session worker pool (lazily spawned).
    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(self.config.effective_threads().saturating_sub(1)))
    }

    /// Cumulative statistics of the session estimate cache and worker
    /// pool.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        if let Some(pool) = self.pool.get() {
            stats.pool_rounds = pool.rounds();
            stats.spawns_avoided = pool.spawns_avoided();
        }
        stats
    }

    /// Drops every cached estimate (hit/miss counters are kept). Useful
    /// for bounding memory in very long-lived sessions.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The *(workload, arch, config, constraints)* context fingerprint a
    /// [`schedule`](Self::schedule) call on this session would cache
    /// under, using the session config's constraint set (the default for
    /// calls without a per-call override). This is the stable identity
    /// out-of-process callers — the serve daemon's on-disk mapping store
    /// in particular — key persisted results by.
    pub fn context_fingerprint(&self, workload: &Workload, arch: &ArchSpec) -> u64 {
        context_fingerprint(workload, arch, &self.config, &self.config.constraints)
    }

    /// Validates and prices an externally supplied `mapping` (typically
    /// reloaded from a persistent store) for `workload` on `arch`,
    /// inserting its evaluation into the session estimate cache exactly
    /// as a search probe would. A daemon restarting on an existing store
    /// calls this per record so repeated queries hit the warm cache, and
    /// the returned [`CostReport`] re-prices the mapping under the
    /// *current* cost model — a stale stored EDP is never trusted.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidMapping`] when the mapping fails
    /// re-validation for this (workload, arch) pair; configuration,
    /// architecture, and binding errors as in
    /// [`schedule`](Self::schedule). Panics inside the model are caught
    /// at the same isolation boundary as a search and surface as
    /// [`ScheduleError::Internal`].
    pub fn prime_mapping(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        mapping: &Mapping,
    ) -> Result<CostReport, ScheduleError> {
        fault_stage::set("prime");
        match panic::catch_unwind(AssertUnwindSafe(|| {
            self.prime_mapping_inner(workload, arch, mapping)
        })) {
            Ok(result) => result,
            Err(payload) => {
                self.cache.evict_context(self.context_fingerprint(workload, arch));
                let message = panic_message(payload.as_ref());
                emit_fault(None, "prime", Some(workload.name()), &message);
                Err(ScheduleError::Internal {
                    stage: "prime".into(),
                    layer: Some(workload.name().to_string()),
                    message,
                })
            }
        }
    }

    /// The body guarded by the boundary in
    /// [`prime_mapping`](Self::prime_mapping): resolve the context the
    /// way [`run_one_inner`](Self::run_one_inner) does, validate the
    /// mapping, and evaluate it through the session cache.
    fn prime_mapping_inner(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        mapping: &Mapping,
    ) -> Result<CostReport, ScheduleError> {
        self.config.validate()?;
        arch.validate()?;
        let constraints = &self.config.constraints;
        let resolved = ResolvedConstraints::resolve(constraints, workload, arch)?;
        let mut binding = Binding::resolve(arch, workload)?;
        for (level, tensor, name) in &resolved.bypass {
            binding = binding
                .with_bypass(*level, *tensor, name)
                .map_err(|e| ScheduleError::InvalidConstraints { reason: e.to_string() })?;
        }
        let vctx = ValidationContext::new(workload, arch, &binding);
        vctx.validate(mapping)
            .map_err(|e| ScheduleError::InvalidMapping { reason: e.to_string() })?;
        let ctx_fp = context_fingerprint(workload, arch, &self.config, constraints);
        let cache = EstimateCache::new(
            self.config.estimate_cache,
            ctx_fp,
            self.config.max_cache_entries,
            &self.cache,
        );
        let ctx = SearchContext::new(
            workload,
            arch,
            &binding,
            &self.config,
            cache,
            self.pool(),
            None,
            None,
            resolved,
        );
        let mut stats = SearchStats::default();
        Ok(estimate::evaluate_cached(&ctx, mapping, &mut stats))
    }

    /// Finds the best mapping of `workload` onto `arch`.
    ///
    /// # Errors
    ///
    /// Fails if the configuration or architecture is invalid, tensors
    /// cannot be bound, or no valid mapping exists.
    pub fn schedule(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
    ) -> Result<ScheduleResult, ScheduleError> {
        Ok(self
            .schedule_with(workload, arch, &ScheduleOptions::default())?
            .into_results()
            .remove(0))
    }

    /// Finds the `k` best distinct mappings, best first (the survivors of
    /// the final beam).
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule); an `Ok` result contains at least
    /// one mapping.
    pub fn schedule_top_k(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        k: usize,
    ) -> Result<Vec<ScheduleResult>, ScheduleError> {
        let opts = ScheduleOptions { top_k: k, ..ScheduleOptions::default() };
        Ok(self.schedule_with(workload, arch, &opts)?.into_results())
    }

    /// Schedules one workload under the full set of per-call controls.
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule), plus
    /// [`ScheduleError::Cancelled`] when the token fires and
    /// [`ScheduleError::BudgetExhausted`] when the budget expires before
    /// any valid mapping exists.
    pub fn schedule_with(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        options: &ScheduleOptions,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        let start = Instant::now();
        let controls = CallControls {
            deadline: options.call.time_budget.map(|b| start + b),
            cancel: options.call.cancel.as_ref(),
            progress: options.call.progress.as_deref(),
        };
        let constraints = options.call.constraints.as_ref().unwrap_or(&self.config.constraints);
        self.run_one(workload, arch, options.top_k, start, &controls, constraints)
    }

    /// Schedules a batch of workloads, deduplicating identical shapes and
    /// fanning the unique ones out across worker threads. Equivalent to —
    /// and bitwise consistent with — calling
    /// [`schedule`](Self::schedule) per layer, but each distinct shape is
    /// searched exactly once.
    ///
    /// # Errors
    ///
    /// Fails with the first failing layer's error (in first-occurrence
    /// order).
    pub fn schedule_batch(
        &self,
        workloads: &[Workload],
        arch: &ArchSpec,
    ) -> Result<BatchResult, ScheduleError> {
        self.schedule_batch_with(workloads, arch, &BatchOptions::default())
    }

    /// [`schedule_batch`](Self::schedule_batch) with per-call controls;
    /// see [`BatchOptions`]. All-or-nothing: for per-layer failure
    /// granularity use
    /// [`schedule_batch_outcomes`](Self::schedule_batch_outcomes), which
    /// this method delegates to.
    ///
    /// # Errors
    ///
    /// As [`schedule_batch`](Self::schedule_batch), plus cancellation and
    /// budget errors as in [`schedule_with`](Self::schedule_with).
    pub fn schedule_batch_with(
        &self,
        workloads: &[Workload],
        arch: &ArchSpec,
        options: &BatchOptions,
    ) -> Result<BatchResult, ScheduleError> {
        self.schedule_batch_outcomes(workloads, arch, options)?.into_result()
    }

    /// Schedules a batch with **graceful partial-failure semantics**: the
    /// returned [`BatchOutcome`] carries one `Result` per input layer, so
    /// an infeasible or internally faulting layer fails only the layers
    /// sharing its deduped shape while every other layer still gets its
    /// mappings. [`BatchOptions::fail_fast`] opts back into stopping at
    /// the first failure.
    ///
    /// # Errors
    ///
    /// Only whole-call failures error here: an invalid configuration or
    /// architecture (nothing can be scheduled), or an internal fault
    /// outside every per-layer boundary. Per-layer failures are reported
    /// inside the `Ok` outcome.
    pub fn schedule_batch_outcomes(
        &self,
        workloads: &[Workload],
        arch: &ArchSpec,
        options: &BatchOptions,
    ) -> Result<BatchOutcome, ScheduleError> {
        // Panic-isolation boundary for the batch infrastructure itself
        // (dedup, pool fan-out, assembly; a panic in one layer's search is
        // already converted inside `run_one`, and a worker-pool panic
        // re-raises here on the submitting thread).
        match panic::catch_unwind(AssertUnwindSafe(|| self.batch_inner(workloads, arch, options))) {
            Ok(result) => result,
            Err(payload) => {
                // Poison-and-recover: a fault at this level may have
                // interrupted any layer's publish, so evict every context
                // the batch can have touched.
                let constraints =
                    options.call.constraints.as_ref().unwrap_or(&self.config.constraints);
                for w in workloads {
                    self.cache.evict_context(context_fingerprint(
                        w,
                        arch,
                        &self.config,
                        constraints,
                    ));
                }
                let message = panic_message(payload.as_ref());
                emit_fault(options.call.progress.as_deref(), "batch", None, &message);
                Err(ScheduleError::Internal { stage: "batch".into(), layer: None, message })
            }
        }
    }

    /// The batch body guarded by the boundary in
    /// [`schedule_batch_outcomes`](Self::schedule_batch_outcomes).
    fn batch_inner(
        &self,
        workloads: &[Workload],
        arch: &ArchSpec,
        options: &BatchOptions,
    ) -> Result<BatchOutcome, ScheduleError> {
        let start = Instant::now();
        let cache_before = self.cache.stats();
        self.config.validate()?;
        arch.validate()?;

        // Canonicalize: identical shapes (names aside) collapse onto the
        // first occurrence.
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let mut assign: Vec<usize> = Vec::with_capacity(workloads.len());
        for (i, w) in workloads.iter().enumerate() {
            match slot_of.entry(workload_fingerprint(w)) {
                Entry::Occupied(e) => assign.push(*e.get()),
                Entry::Vacant(v) => {
                    v.insert(unique.len());
                    assign.push(unique.len());
                    unique.push(i);
                }
            }
        }

        // Fan the unique shapes out over the session worker pool (the
        // submitting thread participates). Per-shape results are
        // deterministic and land in index-disjoint slots, so the assembly
        // below is identical for any worker count.
        let deadline = options.call.time_budget.map(|b| start + b);
        let constraints = options.call.constraints.as_ref().unwrap_or(&self.config.constraints);
        let failed = AtomicBool::new(false);
        let mut slots: Vec<Option<Result<ScheduleOutcome, ScheduleError>>> =
            unique.iter().map(|_| None).collect();
        {
            let writer = SliceWriter::new(&mut slots);
            self.pool().run(unique.len(), &|u| {
                let input_idx = unique[u];
                let w = &workloads[input_idx];
                let layer = || -> Result<ScheduleOutcome, ScheduleError> {
                    if options.fail_fast && failed.load(Ordering::Relaxed) {
                        // Documented fail-fast contract: shapes skipped
                        // after the first observed failure report
                        // `Cancelled`, distinguishable from real failures.
                        return Err(ScheduleError::Cancelled);
                    }
                    if let Some(sink) = &options.call.progress {
                        sink.on_event(&ProgressEvent::LayerStarted {
                            unique: u,
                            name: w.name().to_string(),
                        });
                    }
                    let layer_start = Instant::now();
                    let controls = CallControls {
                        deadline,
                        cancel: options.call.cancel.as_ref(),
                        progress: None,
                    };
                    let outcome =
                        self.run_one(w, arch, options.top_k, layer_start, &controls, constraints);
                    if let Some(sink) = &options.call.progress {
                        if let Err(ScheduleError::Internal { stage, layer, message }) = &outcome {
                            sink.on_event(&ProgressEvent::Fault {
                                stage: stage.clone(),
                                layer: layer.clone(),
                                message: message.clone(),
                            });
                        }
                        sink.on_event(&ProgressEvent::LayerFinished {
                            unique: u,
                            evaluated: outcome
                                .as_ref()
                                .map(|o| o.results()[0].stats.probed)
                                .unwrap_or(0),
                            elapsed: layer_start.elapsed(),
                        });
                    }
                    outcome
                };
                // Second boundary around the per-layer task: `run_one`
                // guards the search, but the progress callbacks run
                // arbitrary user code — a panicking sink must fail its
                // layer, not the batch.
                let outcome =
                    panic::catch_unwind(AssertUnwindSafe(layer)).unwrap_or_else(|payload| {
                        self.cache.evict_context(context_fingerprint(
                            w,
                            arch,
                            &self.config,
                            constraints,
                        ));
                        Err(ScheduleError::Internal {
                            stage: "batch: layer".into(),
                            layer: Some(w.name().to_string()),
                            message: panic_message(payload.as_ref()),
                        })
                    });
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                // SAFETY: the pool feeds each index to exactly one task.
                unsafe { writer.write(u, Some(outcome)) };
            });
        }

        // Assemble: replay each unique result — or error — onto its
        // occurrences.
        let mut per_unique: Vec<Result<(Vec<ScheduleResult>, bool), ScheduleError>> =
            Vec::with_capacity(unique.len());
        for slot in slots {
            let outcome = slot.expect("every unique shape was scheduled");
            per_unique.push(outcome.map(|o| {
                let complete = o.is_complete();
                (o.into_results(), complete)
            }));
        }

        let stats = BatchStats {
            layers: workloads.len(),
            unique_shapes: unique.len(),
            dedup_hits: workloads.len() - unique.len(),
            best_so_far: per_unique
                .iter()
                .filter(|r| matches!(r, Ok((_, complete)) if !complete))
                .count(),
            cache_hits: self.cache.stats().hits - cache_before.hits,
            cache_misses: self.cache.stats().misses - cache_before.misses,
            evaluated: per_unique
                .iter()
                .filter_map(|r| r.as_ref().ok())
                .map(|(r, _)| r[0].stats.probed)
                .sum(),
            failed: assign.iter().filter(|&&slot| per_unique[slot].is_err()).count(),
            elapsed: start.elapsed(),
        };
        let layers = assign
            .iter()
            .map(|&slot| per_unique[slot].clone().map(|(results, _)| results))
            .collect();
        Ok(BatchOutcome { layers, stats })
    }

    /// One bounded search behind the **panic-isolation boundary**: any
    /// panic escaping the search (a model bug, an arithmetic overflow, an
    /// injected fault) is converted into
    /// [`ScheduleError::Internal`] instead of unwinding into the caller.
    /// The boundary also *poisons-and-recovers* the session cache: every
    /// cached estimate for this (workload, arch, config) context is
    /// evicted, because a fault mid-publish can leave the context
    /// partially populated. A follow-up call on the same session therefore
    /// recomputes from scratch and returns results bit-identical to a
    /// fresh session.
    fn run_one(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        top_k: usize,
        start: Instant,
        controls: &CallControls<'_>,
        constraints: &MappingConstraints,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        fault_stage::set("setup");
        match panic::catch_unwind(AssertUnwindSafe(|| {
            self.run_one_inner(workload, arch, top_k, start, controls, constraints)
        })) {
            Ok(result) => result,
            Err(payload) => {
                self.cache.evict_context(context_fingerprint(
                    workload,
                    arch,
                    &self.config,
                    constraints,
                ));
                let stage = match fault_stage::get() {
                    s if s.is_empty() => "setup".to_string(),
                    s => s,
                };
                let message = panic_message(payload.as_ref());
                emit_fault(controls.progress, &stage, Some(workload.name()), &message);
                Err(ScheduleError::Internal {
                    stage,
                    layer: Some(workload.name().to_string()),
                    message,
                })
            }
        }
    }

    /// The search body guarded by the boundary in [`run_one`](Self::run_one):
    /// resolve the problem, pick the direction pass, walk the levels, and
    /// rank the valid completions.
    fn run_one_inner(
        &self,
        workload: &Workload,
        arch: &ArchSpec,
        top_k: usize,
        start: Instant,
        controls: &CallControls<'_>,
        constraints: &MappingConstraints,
    ) -> Result<ScheduleOutcome, ScheduleError> {
        self.config.validate()?;
        arch.validate()?;
        // Resolve the user constraints against this (workload, arch) pair
        // up front: an unsatisfiable set fails with the typed error before
        // any search work runs.
        let resolved = ResolvedConstraints::resolve(constraints, workload, arch)?;
        let mut binding = Binding::resolve(arch, workload)?;
        for (level, tensor, name) in &resolved.bypass {
            binding = binding
                .with_bypass(*level, *tensor, name)
                .map_err(|e| ScheduleError::InvalidConstraints { reason: e.to_string() })?;
        }
        let ctx_fp = context_fingerprint(workload, arch, &self.config, constraints);
        let cache = EstimateCache::new(
            self.config.estimate_cache,
            ctx_fp,
            self.config.max_cache_entries,
            &self.cache,
        );
        let ctx = SearchContext::new(
            workload,
            arch,
            &binding,
            &self.config,
            cache,
            self.pool(),
            controls.cancel,
            controls.deadline,
            resolved,
        );
        let mut stats = SearchStats::default();

        let pass: &dyn LevelPass = match self.config.direction {
            Direction::BottomUp => &BottomUpPass,
            // A single memory level has no inter-level decisions to make
            // top-down; the bottom-up pass covers it directly.
            Direction::TopDown if ctx.mems.len() > 1 => &TopDownPass,
            Direction::TopDown => &BottomUpPass,
        };

        // Cross-layer warm starts: if a structurally similar layer was
        // scheduled earlier in this session, translate its retained best
        // mappings onto this workload and pre-price their search
        // trajectories into the estimate cache. Seeding only adds
        // memoized entries bit-identical to what the search would compute
        // itself — it never touches the beam — so results cannot change
        // (see `search::warm`). Skipped when the context fingerprints
        // match: the cache is then already warm with the real thing.
        let warm_fp = warm_fingerprint(workload, arch, &self.config, constraints);
        let warm_active = self.config.warm_starts
            && self.config.max_seeds > 0
            && self.config.estimate_cache
            && pass.direction() == Direction::BottomUp;
        let mut seeds: Vec<Mapping> = Vec::new();
        if warm_active {
            if let Some(entry) = self.cache.warm_lookup(warm_fp) {
                if entry.ctx_fp != ctx_fp
                    && factor_multiset_distance(&entry.dims, &workload.dim_sizes())
                        <= warm::MAX_SEED_DISTANCE
                {
                    fault_stage::set("warm");
                    for m in entry.mappings.iter().take(self.config.max_seeds) {
                        if let Some(t) = warm::translate_seed(&ctx, m) {
                            if !seeds.contains(&t) {
                                seeds.push(t);
                            }
                        }
                    }
                    warm::warm_seed_trajectories(&ctx, &seeds, &mut stats);
                }
            }
        }

        let run = run_level_search(&ctx, pass, &mut stats, controls);
        fault_stage::set("rank");
        let truncated = match run.stop {
            SearchStop::Cancelled => return Err(ScheduleError::Cancelled),
            SearchStop::Infeasible { stage } => {
                return Err(ScheduleError::InfeasibleLevel { stage })
            }
            SearchStop::DeadlineReached => true,
            SearchStop::Completed => false,
        };
        // A truncated walk leaves quotas undecided; complete each partial
        // state the same way estimation does (best-so-far contract).
        let finals: Vec<Mapping> = if truncated {
            run.beam.iter().map(|s| estimate::complete(&ctx, s, pass.direction())).collect()
        } else {
            run.beam.into_iter().map(|s| s.mapping).collect()
        };

        let vctx = ValidationContext::new(workload, arch, &binding);
        let mut valid: Vec<(Mapping, CostReport)> = Vec::new();
        for mapping in finals {
            // Constrained calls additionally check the full mapping
            // against the constraint set — belt and braces over the
            // in-enumeration filters (and the only guard for truncated
            // best-so-far completions, which the filters never saw).
            if vctx.validate(&mapping).is_ok()
                && (ctx.constraints.is_empty() || vctx.satisfies(&mapping, constraints).is_ok())
            {
                // The last stage already estimated these mappings, so with
                // the cache enabled this is a lookup, not a re-evaluation.
                let report = estimate::evaluate_cached(&ctx, &mapping, &mut stats);
                valid.push((mapping, report));
            }
        }
        valid.sort_by(|a, b| {
            self.config.objective.of(&a.1).total_cmp(&self.config.objective.of(&b.1))
        });
        valid.dedup_by(|a, b| a.0 == b.0);
        valid.truncate(top_k.max(1));
        stats.elapsed = start.elapsed();
        if valid.is_empty() {
            return Err(if truncated {
                ScheduleError::BudgetExhausted
            } else {
                ScheduleError::NoValidMapping
            });
        }
        // Warm-start bookkeeping: a seeded call probes once (did the free
        // search land on a translated seed?), and a *complete* call
        // retains its top mappings as seeds for the next similar layer.
        // Truncated best-so-far results are not retained — they would
        // seed trajectories the full search never keeps.
        if !seeds.is_empty() {
            self.cache.record_seeding(seeds.contains(&valid[0].0));
        }
        if warm_active && !truncated {
            self.cache.warm_store(
                warm_fp,
                WarmEntry {
                    dims: workload.dim_sizes(),
                    mappings: valid
                        .iter()
                        .take(self.config.max_seeds)
                        .map(|(m, _)| m.clone())
                        .collect(),
                    ctx_fp,
                },
            );
        }
        let results: Vec<ScheduleResult> = valid
            .into_iter()
            .map(|(mapping, report)| ScheduleResult { mapping, report, stats: stats.clone() })
            .collect();
        Ok(if truncated {
            ScheduleOutcome::BestSoFar(results)
        } else {
            ScheduleOutcome::Complete(results)
        })
    }
}
