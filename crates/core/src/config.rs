//! Scheduler configuration.

use serde::{Deserialize, Serialize};
use sunstone_mapping::MappingConstraints;

use crate::error::ScheduleError;

/// Inter-level optimization direction (Table VI of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Direction {
    /// Start at the innermost memory and move outward. Orders of magnitude
    /// fewer candidates at (near-)equal EDP — the paper's default.
    BottomUp,
    /// Start at the off-chip memory and move inward. Explored for the
    /// Table VI study.
    TopDown,
}

/// Intra-level optimization order (Table VI of the paper).
///
/// Within one level, the order in which unrolling, tiling, and loop
/// ordering are enumerated changes the shape of the search but — as the
/// paper observes — not the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum IntraOrder {
    /// ordering → tiling → unrolling (paper Section III-C presentation).
    /// Tiles are sized before the unroll is known, so a shared memory
    /// directly above the fabric can be filled before the unroll gets its
    /// share — usable, but not the default.
    OrderTileUnroll,
    /// unrolling → tiling → ordering — Table VI's first row and this
    /// implementation's default: the fabric claims its quota first, then
    /// tiles grow in what remains.
    UnrollTileOrder,
    /// tiling → unrolling → ordering.
    TileUnrollOrder,
}

/// The figure of merit the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Objective {
    /// Energy-delay product — the paper's merit.
    Edp,
    /// Energy only (battery-bound deployments).
    Energy,
    /// Delay only (latency-bound deployments).
    Delay,
}

impl Objective {
    /// Extracts the objective value from a cost report.
    pub fn of(self, report: &sunstone_model::CostReport) -> f64 {
        match self {
            Objective::Edp => report.edp,
            Objective::Energy => report.energy_pj,
            Objective::Delay => report.delay_cycles,
        }
    }
}

/// Which of Sunstone's pruning techniques are active. All on by default;
/// individual flags exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningFlags {
    /// Prune loop orderings via the trie rules (Fig 4). When off, all
    /// permutations of the reuse dimensions are considered.
    pub ordering_trie: bool,
    /// Keep only maximal tiles (Tiling Principle, Fig 5). When off, every
    /// fitting tile along the allowed dimensions is kept.
    pub tiling_maximal: bool,
    /// Reject unroll dimensions that would spatially re-reuse the already
    /// temporally reused operand (Spatial Unrolling Principle).
    pub unrolling_principle: bool,
    /// Restrict tile growth to the reused operand's indexing dimensions.
    /// When off, tiles may grow along every dimension.
    pub tiling_reuse_dims: bool,
}

impl Default for PruningFlags {
    fn default() -> Self {
        PruningFlags {
            ordering_trie: true,
            tiling_maximal: true,
            unrolling_principle: true,
            tiling_reuse_dims: true,
        }
    }
}

/// Configuration of the [`Scheduler`](crate::Scheduler) session.
///
/// Construct via [`SunstoneConfig::builder`] to get validation at build
/// time, or with struct syntax + `..Default::default()`; hand-constructed
/// configs are validated on every scheduling call instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SunstoneConfig {
    /// The figure of merit to minimize (EDP by default, as in the paper).
    pub objective: Objective,
    /// Inter-level direction; bottom-up is the paper's default.
    pub direction: Direction,
    /// Intra-level enumeration order.
    pub intra_order: IntraOrder,
    /// Beam width for the alpha-beta-style pruning across levels: the
    /// number of best partial mappings kept alive after each stage.
    pub beam_width: usize,
    /// Number of worker threads for candidate evaluation and batch
    /// fan-out (0 = available parallelism).
    pub threads: usize,
    /// Minimum fraction of a spatial fabric that an unrolling must keep
    /// busy, when any unrolling can achieve it ("high throughput"
    /// constraint, Table I).
    pub min_spatial_utilization: f64,
    /// Cap on the tiles kept per tiling-tree enumeration (the largest
    /// tiles — most reuse — are kept). Bounds the per-stage candidate
    /// count on workloads with very long divisor ladders.
    pub max_tiles_per_enum: usize,
    /// Cap on the unrollings kept per fabric enumeration (the highest
    /// utilizations are kept).
    pub max_unrolls_per_enum: usize,
    /// Memoize cost estimates in the session-lifetime cache, keyed by
    /// *(workload, architecture, configuration, mapping)* fingerprints.
    /// Different beam states frequently complete to the same mapping (and
    /// the final re-evaluation always repeats the last stage's estimates),
    /// so the cache trades memory for skipped model evaluations — within a
    /// call and across every call of the session. Disable only to measure
    /// the raw model cost.
    pub estimate_cache: bool,
    /// Upper bound on the cost reports the session estimate cache retains
    /// across all contexts. When an insert pushes past the bound, whole
    /// least-recently-used *(workload, architecture, config)* contexts are
    /// evicted — never the context that just inserted, so one very large
    /// search is allowed to exceed the bound rather than thrash itself.
    /// The default is generous (a report is a few hundred bytes); lower it
    /// to bound memory in long-lived many-workload sessions.
    pub max_cache_entries: usize,
    /// Seed new searches from retained results of structurally similar
    /// layers already scheduled by this session (cross-layer warm starts).
    /// Seeding is *result-neutral by construction*: retained mappings are
    /// only translated and pre-evaluated into the estimate cache — they
    /// never enter the beam, displace a candidate, or change a ranking —
    /// so results are bit-identical with warm starts on or off; only the
    /// number of cold model evaluations changes. Requires
    /// [`estimate_cache`](Self::estimate_cache). Excluded from
    /// [`config_fingerprint`](crate::fingerprint::config_fingerprint) for
    /// the same reason `threads` is: it cannot change any estimate.
    #[serde(default = "default_warm_starts")]
    pub warm_starts: bool,
    /// Retained mappings translated per warm start (and retained per
    /// completed search for future warm starts). Zero disables seeding
    /// like [`warm_starts`](Self::warm_starts)` = false`.
    #[serde(default = "default_max_seeds")]
    pub max_seeds: usize,
    /// Active pruning techniques.
    pub pruning: PruningFlags,
    /// Mapping-space restrictions applied *inside* enumeration, before
    /// any pruning or beam selection (empty by default: full free
    /// search). Resolved against each workload/architecture pair at the
    /// start of a call; an unsatisfiable or ill-formed set surfaces as
    /// [`ScheduleError::InvalidConstraints`]. A per-call override exists
    /// on [`ScheduleOptions`](crate::ScheduleOptions).
    pub constraints: MappingConstraints,
}

fn default_warm_starts() -> bool {
    true
}

fn default_max_seeds() -> usize {
    2
}

impl Default for SunstoneConfig {
    fn default() -> Self {
        SunstoneConfig {
            objective: Objective::Edp,
            direction: Direction::BottomUp,
            intra_order: IntraOrder::UnrollTileOrder,
            beam_width: 48,
            threads: 0,
            min_spatial_utilization: 0.5,
            max_tiles_per_enum: 24,
            max_unrolls_per_enum: 8,
            estimate_cache: true,
            max_cache_entries: 1 << 20,
            warm_starts: default_warm_starts(),
            max_seeds: default_max_seeds(),
            pruning: PruningFlags::default(),
            constraints: MappingConstraints::default(),
        }
    }
}

impl SunstoneConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> SunstoneConfigBuilder {
        SunstoneConfigBuilder { config: SunstoneConfig::default() }
    }

    /// Resolved worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Checks the configuration's invariants; every scheduling call runs
    /// this, so a hand-constructed invalid config fails with
    /// [`ScheduleError::InvalidConfig`] instead of searching nothing or
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.beam_width == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "beam_width must be at least 1".into(),
            });
        }
        if self.max_tiles_per_enum == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "max_tiles_per_enum must be at least 1".into(),
            });
        }
        if self.max_unrolls_per_enum == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "max_unrolls_per_enum must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.min_spatial_utilization) {
            return Err(ScheduleError::InvalidConfig {
                reason: "min_spatial_utilization must lie in [0, 1]".into(),
            });
        }
        if self.max_cache_entries == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "max_cache_entries must be at least 1 (disable the \
                         cache via estimate_cache instead)"
                    .into(),
            });
        }
        Ok(())
    }
}

/// Validating builder for [`SunstoneConfig`]
/// ([`SunstoneConfig::builder`]). Setters that take a count reject zero
/// immediately; [`build`](Self::build) re-checks the whole config.
#[derive(Debug, Clone)]
pub struct SunstoneConfigBuilder {
    config: SunstoneConfig,
}

impl SunstoneConfigBuilder {
    /// Sets the figure of merit.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.config.objective = objective;
        self
    }

    /// Sets the inter-level direction.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.config.direction = direction;
        self
    }

    /// Sets the intra-level enumeration order.
    pub fn intra_order(mut self, order: IntraOrder) -> Self {
        self.config.intra_order = order;
        self
    }

    /// Sets the beam width.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] when `width` is zero.
    pub fn beam_width(mut self, width: usize) -> Result<Self, ScheduleError> {
        if width == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "beam_width must be at least 1".into(),
            });
        }
        self.config.beam_width = width;
        Ok(self)
    }

    /// Sets an explicit worker-thread count (use
    /// [`auto_threads`](Self::auto_threads) for the default).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] when `threads` is zero.
    pub fn threads(mut self, threads: usize) -> Result<Self, ScheduleError> {
        if threads == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "threads must be at least 1 (use auto_threads() for automatic)".into(),
            });
        }
        self.config.threads = threads;
        Ok(self)
    }

    /// Uses the machine's available parallelism (the default).
    pub fn auto_threads(mut self) -> Self {
        self.config.threads = 0;
        self
    }

    /// Sets the minimum spatial-fabric utilization.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] when `fraction` is outside
    /// `[0, 1]`.
    pub fn min_spatial_utilization(mut self, fraction: f64) -> Result<Self, ScheduleError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(ScheduleError::InvalidConfig {
                reason: "min_spatial_utilization must lie in [0, 1]".into(),
            });
        }
        self.config.min_spatial_utilization = fraction;
        Ok(self)
    }

    /// Sets the per-enumeration tile cap.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] when `cap` is zero.
    pub fn max_tiles_per_enum(mut self, cap: usize) -> Result<Self, ScheduleError> {
        if cap == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "max_tiles_per_enum must be at least 1".into(),
            });
        }
        self.config.max_tiles_per_enum = cap;
        Ok(self)
    }

    /// Sets the per-enumeration unrolling cap.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] when `cap` is zero.
    pub fn max_unrolls_per_enum(mut self, cap: usize) -> Result<Self, ScheduleError> {
        if cap == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "max_unrolls_per_enum must be at least 1".into(),
            });
        }
        self.config.max_unrolls_per_enum = cap;
        Ok(self)
    }

    /// Enables or disables the session estimate cache.
    pub fn estimate_cache(mut self, enabled: bool) -> Self {
        self.config.estimate_cache = enabled;
        self
    }

    /// Bounds the cost reports the session estimate cache retains (whole
    /// least-recently-used contexts are evicted past the bound).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] when `cap` is zero.
    pub fn max_cache_entries(mut self, cap: usize) -> Result<Self, ScheduleError> {
        if cap == 0 {
            return Err(ScheduleError::InvalidConfig {
                reason: "max_cache_entries must be at least 1 (disable the \
                         cache via estimate_cache instead)"
                    .into(),
            });
        }
        self.config.max_cache_entries = cap;
        Ok(self)
    }

    /// Enables or disables cross-layer warm starts (result-neutral cache
    /// seeding from structurally similar layers).
    pub fn warm_starts(mut self, enabled: bool) -> Self {
        self.config.warm_starts = enabled;
        self
    }

    /// Sets the number of retained mappings translated per warm start
    /// (zero disables seeding).
    pub fn max_seeds(mut self, seeds: usize) -> Self {
        self.config.max_seeds = seeds;
        self
    }

    /// Sets the pruning flags.
    pub fn pruning(mut self, pruning: PruningFlags) -> Self {
        self.config.pruning = pruning;
        self
    }

    /// Sets the mapping constraints every call of the session searches
    /// under. Name/level resolution happens per call (it needs the
    /// workload and architecture), so ill-formed constraints surface as
    /// [`ScheduleError::InvalidConstraints`] at scheduling time.
    pub fn constraints(mut self, constraints: MappingConstraints) -> Self {
        self.config.constraints = constraints;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InvalidConfig`] as in
    /// [`SunstoneConfig::validate`].
    pub fn build(self) -> Result<SunstoneConfig, ScheduleError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_pruning() {
        let c = SunstoneConfig::default();
        assert_eq!(c.direction, Direction::BottomUp);
        assert!(c.pruning.ordering_trie);
        assert!(c.pruning.tiling_maximal);
        assert!(c.pruning.unrolling_principle);
        assert!(c.pruning.tiling_reuse_dims);
        assert!(c.beam_width > 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn objective_extracts_the_right_field() {
        let report = sunstone_model::CostReport {
            energy_pj: 10.0,
            delay_cycles: 5.0,
            edp: 50.0,
            total_ops: 1.0,
            mac_energy_pj: 1.0,
            noc_energy_pj: 0.0,
            compute_cycles: 5.0,
            levels: Vec::new(),
        };
        assert_eq!(Objective::Edp.of(&report), 50.0);
        assert_eq!(Objective::Energy.of(&report), 10.0);
        assert_eq!(Objective::Delay.of(&report), 5.0);
    }

    #[test]
    fn effective_threads_is_positive() {
        assert!(SunstoneConfig::default().effective_threads() >= 1);
        let c = SunstoneConfig { threads: 3, ..SunstoneConfig::default() };
        assert_eq!(c.effective_threads(), 3);
    }

    #[test]
    fn builder_accepts_valid_settings() {
        let c = SunstoneConfig::builder()
            .objective(Objective::Energy)
            .beam_width(8)
            .unwrap()
            .threads(2)
            .unwrap()
            .estimate_cache(false)
            .build()
            .unwrap();
        assert_eq!(c.objective, Objective::Energy);
        assert_eq!(c.beam_width, 8);
        assert_eq!(c.threads, 2);
        assert!(!c.estimate_cache);
    }

    #[test]
    fn builder_rejects_zero_counts() {
        assert!(matches!(
            SunstoneConfig::builder().beam_width(0),
            Err(ScheduleError::InvalidConfig { .. })
        ));
        assert!(matches!(
            SunstoneConfig::builder().threads(0),
            Err(ScheduleError::InvalidConfig { .. })
        ));
        assert!(matches!(
            SunstoneConfig::builder().max_tiles_per_enum(0),
            Err(ScheduleError::InvalidConfig { .. })
        ));
        assert!(matches!(
            SunstoneConfig::builder().max_unrolls_per_enum(0),
            Err(ScheduleError::InvalidConfig { .. })
        ));
        assert!(matches!(
            SunstoneConfig::builder().min_spatial_utilization(1.5),
            Err(ScheduleError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn validate_catches_hand_constructed_invalid_configs() {
        let c = SunstoneConfig { beam_width: 0, ..SunstoneConfig::default() };
        assert!(matches!(c.validate(), Err(ScheduleError::InvalidConfig { .. })));
        let c = SunstoneConfig { min_spatial_utilization: -0.1, ..SunstoneConfig::default() };
        assert!(matches!(c.validate(), Err(ScheduleError::InvalidConfig { .. })));
    }
}
