//! Scheduler configuration.

use serde::{Deserialize, Serialize};

/// Inter-level optimization direction (Table VI of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Start at the innermost memory and move outward. Orders of magnitude
    /// fewer candidates at (near-)equal EDP — the paper's default.
    BottomUp,
    /// Start at the off-chip memory and move inward. Explored for the
    /// Table VI study.
    TopDown,
}

/// Intra-level optimization order (Table VI of the paper).
///
/// Within one level, the order in which unrolling, tiling, and loop
/// ordering are enumerated changes the shape of the search but — as the
/// paper observes — not the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntraOrder {
    /// ordering → tiling → unrolling (paper Section III-C presentation).
    /// Tiles are sized before the unroll is known, so a shared memory
    /// directly above the fabric can be filled before the unroll gets its
    /// share — usable, but not the default.
    OrderTileUnroll,
    /// unrolling → tiling → ordering — Table VI's first row and this
    /// implementation's default: the fabric claims its quota first, then
    /// tiles grow in what remains.
    UnrollTileOrder,
    /// tiling → unrolling → ordering.
    TileUnrollOrder,
}

/// The figure of merit the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Energy-delay product — the paper's merit.
    Edp,
    /// Energy only (battery-bound deployments).
    Energy,
    /// Delay only (latency-bound deployments).
    Delay,
}

impl Objective {
    /// Extracts the objective value from a cost report.
    pub fn of(self, report: &sunstone_model::CostReport) -> f64 {
        match self {
            Objective::Edp => report.edp,
            Objective::Energy => report.energy_pj,
            Objective::Delay => report.delay_cycles,
        }
    }
}

/// Which of Sunstone's pruning techniques are active. All on by default;
/// individual flags exist for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruningFlags {
    /// Prune loop orderings via the trie rules (Fig 4). When off, all
    /// permutations of the reuse dimensions are considered.
    pub ordering_trie: bool,
    /// Keep only maximal tiles (Tiling Principle, Fig 5). When off, every
    /// fitting tile along the allowed dimensions is kept.
    pub tiling_maximal: bool,
    /// Reject unroll dimensions that would spatially re-reuse the already
    /// temporally reused operand (Spatial Unrolling Principle).
    pub unrolling_principle: bool,
    /// Restrict tile growth to the reused operand's indexing dimensions.
    /// When off, tiles may grow along every dimension.
    pub tiling_reuse_dims: bool,
}

impl Default for PruningFlags {
    fn default() -> Self {
        PruningFlags {
            ordering_trie: true,
            tiling_maximal: true,
            unrolling_principle: true,
            tiling_reuse_dims: true,
        }
    }
}

/// Configuration of the [`Sunstone`](crate::Sunstone) scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SunstoneConfig {
    /// The figure of merit to minimize (EDP by default, as in the paper).
    pub objective: Objective,
    /// Inter-level direction; bottom-up is the paper's default.
    pub direction: Direction,
    /// Intra-level enumeration order.
    pub intra_order: IntraOrder,
    /// Beam width for the alpha-beta-style pruning across levels: the
    /// number of best partial mappings kept alive after each stage.
    pub beam_width: usize,
    /// Number of worker threads for candidate evaluation (0 = available
    /// parallelism).
    pub threads: usize,
    /// Minimum fraction of a spatial fabric that an unrolling must keep
    /// busy, when any unrolling can achieve it ("high throughput"
    /// constraint, Table I).
    pub min_spatial_utilization: f64,
    /// Cap on the tiles kept per tiling-tree enumeration (the largest
    /// tiles — most reuse — are kept). Bounds the per-stage candidate
    /// count on workloads with very long divisor ladders.
    pub max_tiles_per_enum: usize,
    /// Cap on the unrollings kept per fabric enumeration (the highest
    /// utilizations are kept).
    pub max_unrolls_per_enum: usize,
    /// Memoize cost estimates by completed-mapping fingerprint. Different
    /// beam states frequently complete to the same mapping (and the final
    /// re-evaluation always repeats the last stage's estimates), so the
    /// cache trades memory for skipped model evaluations. Disable only to
    /// measure the raw model cost.
    pub estimate_cache: bool,
    /// Active pruning techniques.
    pub pruning: PruningFlags,
}

impl Default for SunstoneConfig {
    fn default() -> Self {
        SunstoneConfig {
            objective: Objective::Edp,
            direction: Direction::BottomUp,
            intra_order: IntraOrder::UnrollTileOrder,
            beam_width: 48,
            threads: 0,
            min_spatial_utilization: 0.5,
            max_tiles_per_enum: 24,
            max_unrolls_per_enum: 8,
            estimate_cache: true,
            pruning: PruningFlags::default(),
        }
    }
}

impl SunstoneConfig {
    /// Resolved worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_pruning() {
        let c = SunstoneConfig::default();
        assert_eq!(c.direction, Direction::BottomUp);
        assert!(c.pruning.ordering_trie);
        assert!(c.pruning.tiling_maximal);
        assert!(c.pruning.unrolling_principle);
        assert!(c.pruning.tiling_reuse_dims);
        assert!(c.beam_width > 0);
    }

    #[test]
    fn objective_extracts_the_right_field() {
        let report = sunstone_model::CostReport {
            energy_pj: 10.0,
            delay_cycles: 5.0,
            edp: 50.0,
            total_ops: 1.0,
            mac_energy_pj: 1.0,
            noc_energy_pj: 0.0,
            compute_cycles: 5.0,
            levels: Vec::new(),
        };
        assert_eq!(Objective::Edp.of(&report), 50.0);
        assert_eq!(Objective::Energy.of(&report), 10.0);
        assert_eq!(Objective::Delay.of(&report), 5.0);
    }

    #[test]
    fn effective_threads_is_positive() {
        assert!(SunstoneConfig::default().effective_threads() >= 1);
        let c = SunstoneConfig { threads: 3, ..SunstoneConfig::default() };
        assert_eq!(c.effective_threads(), 3);
    }
}
