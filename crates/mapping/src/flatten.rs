//! Flattening a mapping into a single global loop nest.
//!
//! The cost model reasons about one linear nest of loops, outermost first,
//! each tagged with the architecture level it came from. Unit-factor loops
//! are dropped: they neither move data nor break reuse chains.

use serde::{Deserialize, Serialize};
use sunstone_ir::{DimId, Workload};

use crate::{Mapping, MappingLevel};

/// Whether a flattened loop iterates in time or fans out in space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopKind {
    /// A temporal loop belonging to the memory level at the given
    /// architecture position.
    Temporal,
    /// A spatial unroll belonging to the fan-out level at the given
    /// architecture position.
    Spatial,
}

/// One loop of the flattened nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatLoop {
    /// The dimension the loop iterates over.
    pub dim: DimId,
    /// The loop bound (tiling or unroll factor), always ≥ 2.
    pub factor: u64,
    /// Temporal or spatial.
    pub kind: LoopKind,
    /// Architecture level position (0 = innermost) this loop belongs to.
    pub arch_pos: usize,
}

impl FlatLoop {
    /// Returns `true` for spatial loops.
    pub fn is_spatial(self) -> bool {
        self.kind == LoopKind::Spatial
    }
}

/// A mapping flattened to a single loop nest, **outermost first**.
///
/// Loops are ordered by architecture position descending; within one
/// temporal level they follow that level's loop order. Produced by
/// [`FlatNest::of`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatNest {
    loops: Vec<FlatLoop>,
}

impl FlatNest {
    /// An empty nest, ready for [`refill`](Self::refill). Lets evaluation
    /// loops keep one nest allocation alive across many mappings.
    pub fn empty() -> Self {
        FlatNest { loops: Vec::new() }
    }

    /// Flattens a mapping. The mapping is assumed structurally valid
    /// (levels mirror the architecture).
    pub fn of(mapping: &Mapping, workload: &Workload) -> Self {
        let mut nest = FlatNest::empty();
        nest.refill(mapping, workload);
        nest
    }

    /// Re-flattens `mapping` into this nest, reusing the loop buffer.
    pub fn refill(&mut self, mapping: &Mapping, _workload: &Workload) {
        let loops = &mut self.loops;
        loops.clear();
        for (pos, level) in mapping.levels().iter().enumerate().rev() {
            match level {
                MappingLevel::Temporal(t) => {
                    for &d in t.order.iter().rev() {
                        let f = t.factors[d.index()];
                        if f > 1 {
                            loops.push(FlatLoop {
                                dim: d,
                                factor: f,
                                kind: LoopKind::Temporal,
                                arch_pos: pos,
                            });
                        }
                    }
                }
                MappingLevel::Spatial(s) => {
                    for (i, &f) in s.factors.iter().enumerate() {
                        if f > 1 {
                            loops.push(FlatLoop {
                                dim: DimId::from_index(i),
                                factor: f,
                                kind: LoopKind::Spatial,
                                arch_pos: pos,
                            });
                        }
                    }
                }
            }
        }
    }

    /// All loops, outermost first.
    pub fn loops(&self) -> &[FlatLoop] {
        &self.loops
    }

    /// The loops strictly above architecture position `child_pos`: every
    /// loop whose own position is greater. Because the nest is ordered by
    /// position descending, this is a prefix.
    ///
    /// Pass `child_pos = -1` (as `i64`) to get the whole nest (the MAC
    /// boundary).
    pub fn loops_above(&self, child_pos: i64) -> &[FlatLoop] {
        let cut = self
            .loops
            .iter()
            .position(|l| (l.arch_pos as i64) <= child_pos)
            .unwrap_or(self.loops.len());
        &self.loops[..cut]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpatialAssignment, TemporalLevel};
    use sunstone_arch::LevelId;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    fn d(i: usize) -> DimId {
        DimId::from_index(i)
    }

    /// A 2-level mapping like the paper's Algorithm 5: L1 at pos 0, a
    /// spatial grid at pos 1, DRAM (playing L2) at pos 2.
    fn example_mapping() -> Mapping {
        // dims: 0=K, 1=C, 2=P, 3=R
        Mapping::from_levels(vec![
            MappingLevel::Temporal(TemporalLevel {
                mem: LevelId(0),
                factors: vec![2, 2, 7, 3], // K_L1=2, C_L1=2, P_L1=7, R=3
                order: vec![d(3), d(1), d(0), d(2)],
            }),
            MappingLevel::Spatial(SpatialAssignment {
                fabric: LevelId(1),
                factors: vec![2, 1, 1, 1], // K spatially unrolled ×2
            }),
            MappingLevel::Temporal(TemporalLevel {
                mem: LevelId(2),
                factors: vec![1, 2, 2, 1], // C_L2=2 innermost, P_L2=2
                order: vec![d(1), d(2), d(0), d(3)],
            }),
        ])
    }

    #[test]
    fn flatten_orders_outermost_first_and_drops_units() {
        let w = conv1d();
        let nest = FlatNest::of(&example_mapping(), &w);
        let descr: Vec<(usize, usize, u64, bool)> = nest
            .loops()
            .iter()
            .map(|l| (l.arch_pos, l.dim.index(), l.factor, l.is_spatial()))
            .collect();
        assert_eq!(
            descr,
            vec![
                // DRAM level, order innermost-first [C,P,K,R] → outermost-first
                // emits P then C (K and R have factor 1 and are dropped).
                (2, 2, 2, false),
                (2, 1, 2, false),
                // spatial grid: K×2.
                (1, 0, 2, true),
                // L1 loops outermost-first: P, K, C, R.
                (0, 2, 7, false),
                (0, 0, 2, false),
                (0, 1, 2, false),
                (0, 3, 3, false),
            ]
        );
    }

    #[test]
    fn loops_above_selects_prefix() {
        let w = conv1d();
        let nest = FlatNest::of(&example_mapping(), &w);
        assert_eq!(nest.loops_above(-1).len(), 7, "MAC boundary sees all loops");
        assert_eq!(nest.loops_above(0).len(), 3, "above L1: two DRAM loops + spatial");
        assert_eq!(nest.loops_above(1).len(), 2, "above the grid: DRAM loops only");
        assert_eq!(nest.loops_above(2).len(), 0);
    }
}
