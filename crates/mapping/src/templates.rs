//! Named dataflow templates: canonical fixed-dataflow accelerator styles
//! expressed as [`MappingConstraints`] presets.
//!
//! A template is parameterized by the architecture (it names the arch's
//! spatial fabrics and memory levels) but stays workload-generic by
//! referring to dimensions by conv-standard name (`C`, `K`, `R`, `P`) or
//! by algebraic [`DimRole`]. Feeding a template's constraints to the
//! scheduler restricts the search to mappings with that dataflow — the
//! honest way to compare Sunstone against fixed-dataflow mappers, and the
//! way to target accelerators whose dataflow is baked into silicon.
//!
//! These templates *constrain a search*; the sibling
//! [`dataflows`](crate::dataflows) module instead *constructs* single
//! untuned stationary mappings directly.

use sunstone_arch::ArchSpec;
use sunstone_ir::DimRole;

use crate::constraints::{DimRef, MappingConstraints};

/// A named accelerator dataflow, convertible to [`MappingConstraints`]
/// for a concrete architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataflowTemplate {
    /// Weight-stationary with `C`/`K` spatial unrolling (TPU/Simba/NVDLA
    /// PE-array style): every fabric parallelizes only input and output
    /// channels, so each unit keeps one weight slice resident.
    WeightStationaryCK,
    /// Output-stationary (ShiDianNao style): fabrics parallelize only
    /// output-indexing dimensions and the reduction loops run innermost
    /// above the innermost memory, so each partial sum accumulates in
    /// place before moving up.
    OutputStationary,
    /// Row-stationary (Eyeriss style, first-order approximation): fabrics
    /// parallelize the kernel-row `R` and output-row `P` dimensions —
    /// the 1-D convolution primitives of the Eyeriss PE grid. The full
    /// row-stationary dataflow also fixes how rows fold onto the physical
    /// grid, which is below this constraint language's level of detail.
    RowStationary,
    /// NVDLA-like: `C`/`K` spatial unrolling plus single-pass accumulation
    /// — reduction loops innermost at the outermost memory, so each output
    /// is finished before the next batch of partial sums starts.
    NvdlaLike,
}

impl DataflowTemplate {
    /// Builds the template's constraints for `arch`, restricting every
    /// spatial fabric (and, where the dataflow demands it, a memory
    /// level's loop order).
    pub fn constraints(&self, arch: &ArchSpec) -> MappingConstraints {
        let mut c = MappingConstraints::new();
        let unroll_allow: Vec<DimRef> = match self {
            DataflowTemplate::WeightStationaryCK | DataflowTemplate::NvdlaLike => {
                vec![DimRef::named("C"), DimRef::named("K")]
            }
            DataflowTemplate::OutputStationary => vec![DimRef::role(DimRole::Parallel)],
            DataflowTemplate::RowStationary => vec![DimRef::named("R"), DimRef::named("P")],
        };
        for (_, fabric) in arch.spatial_levels() {
            c = c.allow_unroll(&fabric.name, unroll_allow.clone());
        }
        match self {
            DataflowTemplate::OutputStationary => {
                // Reduction loops innermost at the memory directly above
                // the innermost one (the first level whose order the
                // scheduler actually enumerates).
                if let Some((_, mem)) = arch.memory_levels().nth(1) {
                    c = c.order_inner(&mem.name, [DimRef::role(DimRole::Reduction)]);
                }
            }
            DataflowTemplate::NvdlaLike => {
                if let Some((_, mem)) = arch.memory_levels().last() {
                    c = c.order_inner(&mem.name, [DimRef::role(DimRole::Reduction)]);
                }
            }
            _ => {}
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;

    #[test]
    fn weight_stationary_restricts_every_fabric() {
        let arch = presets::simba_like();
        let c = DataflowTemplate::WeightStationaryCK.constraints(&arch);
        let fabrics = arch.spatial_levels().count();
        assert_eq!(c.unroll.len(), fabrics);
        for u in &c.unroll {
            let allow = u.allow.as_ref().expect("allowlist present");
            assert_eq!(allow.len(), 2);
        }
        assert!(c.order.is_empty());
    }

    #[test]
    fn output_stationary_pins_reductions_innermost() {
        let arch = presets::conventional();
        let c = DataflowTemplate::OutputStationary.constraints(&arch);
        assert_eq!(c.order.len(), 1);
        assert_eq!(c.order[0].inner, vec![DimRef::role(DimRole::Reduction)]);
        for u in &c.unroll {
            assert_eq!(u.allow, Some(vec![DimRef::role(DimRole::Parallel)]));
        }
    }

    #[test]
    fn nvdla_constrains_outermost_memory() {
        let arch = presets::conventional();
        let c = DataflowTemplate::NvdlaLike.constraints(&arch);
        let dram = arch.memory_levels().last().unwrap().1.name.clone();
        assert_eq!(c.order[0].level, dram);
    }

    #[test]
    fn row_stationary_names_r_and_p() {
        let arch = presets::eyeriss_like();
        let c = DataflowTemplate::RowStationary.constraints(&arch);
        for u in &c.unroll {
            assert_eq!(
                u.allow,
                Some(vec![DimRef::named("R"), DimRef::named("P")]),
                "fabric `{}`",
                u.level
            );
        }
    }
}
