//! Canonical hand-crafted dataflows — weight-stationary,
//! output-stationary, and input-stationary — as mapping constructors.
//!
//! These are the fixed dataflows hard-wired into many accelerators
//! (weight-stationary TPU-style, output-stationary ShiDianNao-style).
//! Sunstone's searched mappings can be compared against them directly;
//! the `dataflow_comparison` integration test and the ablation bench do.

use sunstone_arch::{ArchSpec, Level};
use sunstone_ir::{DimId, TensorId, Workload};

use crate::{Mapping, MappingLevel};

/// Which operand stays resident in the innermost memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stationarity {
    /// The named input tensor stays put (e.g. weights).
    Input(TensorId),
    /// The output tensor stays put (accumulate in place).
    Output,
}

/// Builds a canonical stationary mapping: the stationary tensor's tile is
/// maximized in the innermost memory, the loops that reuse it are placed
/// directly above (innermost at the next level), and the remaining
/// iteration space stays at DRAM.
///
/// The result is *valid but untuned* — no spatial unrolling is applied —
/// making it a clean single-variable baseline for dataflow studies.
///
/// Returns `None` if even a unit tile of the stationary tensor does not
/// fit the innermost memory.
pub fn stationary(workload: &Workload, arch: &ArchSpec, what: Stationarity) -> Option<Mapping> {
    let ndims = workload.num_dims();
    let tensor_id = match what {
        Stationarity::Input(t) => t,
        Stationarity::Output => workload.output(),
    };
    let tensor = workload.tensor(tensor_id);
    let indexing = tensor.indexing_dims();

    // Innermost memory; the stationary tensor must be storable there.
    let (inner_pos, inner_mem) = arch.memory_levels().next()?;
    inner_mem.partition_for(tensor)?;
    // Capacity check over *all* tensors sharing each partition — a
    // unified buffer must also hold the streaming tensors' unit tiles.
    let fits = |tile: &[u64]| {
        let mut needed = vec![0u64; inner_mem.partitions.len()];
        for t in workload.tensors() {
            if let Some(pid) = inner_mem.partition_for(t) {
                needed[pid.0] += t.footprint(tile) * u64::from(t.bits()).div_ceil(8);
            }
        }
        inner_mem.partitions.iter().zip(&needed).all(|(p, &bytes)| p.capacity.fits(bytes))
    };

    // Grow the stationary tensor's indexing dims greedily (round-robin
    // over divisor ladders) while everything fits.
    let mut tile = vec![1u64; ndims];
    if !fits(&tile) {
        return None;
    }
    let mut progress = true;
    while progress {
        progress = false;
        for d in indexing.iter() {
            let size = workload.dim_size(d);
            let current = tile[d.index()];
            let next = (current + 1..=size).find(|f| size.is_multiple_of(*f));
            if let Some(next) = next {
                tile[d.index()] = next;
                if fits(&tile) {
                    progress = true;
                } else {
                    tile[d.index()] = current;
                }
            }
        }
    }

    let mut mapping = Mapping::streaming(workload, arch);
    for level in mapping.levels_mut() {
        level.factors_mut().iter_mut().for_each(|f| *f = 1);
    }
    let last = arch.num_levels() - 1;
    for (d, &t) in tile.iter().enumerate() {
        mapping.levels_mut()[inner_pos.index()].factors_mut()[d] = t;
        mapping.levels_mut()[last].factors_mut()[d] = workload.dim_size(DimId::from_index(d)) / t;
    }
    // Loop order above the stationary tile: the tensor's non-indexing
    // (reuse) dims innermost, so the tile stays resident as long as
    // possible.
    let reuse = workload.reuse_info();
    let full = reuse.of(tensor_id).full_reuse;
    for pos in inner_pos.index() + 1..arch.num_levels() {
        if let (Level::Memory(_), MappingLevel::Temporal(t)) =
            (&arch.levels()[pos], &mut mapping.levels_mut()[pos])
        {
            t.order.sort_by_key(|d| u8::from(!full.contains(*d)));
        }
    }
    Some(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::{presets, Binding};
    use sunstone_mapping_test_util::conv1d;

    // A tiny local helper module so the tests read cleanly.
    mod sunstone_mapping_test_util {
        use sunstone_ir::Workload;

        pub fn conv1d(k: u64, c: u64, p: u64, r: u64) -> Workload {
            let mut b = Workload::builder("conv1d");
            let kk = b.dim("K", k);
            let cc = b.dim("C", c);
            let pp = b.dim("P", p);
            let rr = b.dim("R", r);
            b.input("ifmap", [cc.expr(), pp + rr]);
            b.input("weight", [kk.expr(), cc.expr(), rr.expr()]);
            b.output("ofmap", [kk.expr(), pp.expr()]);
            b.build().unwrap()
        }
    }

    #[test]
    fn weight_stationary_mapping_is_valid_and_keeps_weights_put() {
        let w = conv1d(16, 16, 56, 3);
        let arch = presets::conventional();
        let weight = w.tensor_by_name("weight").unwrap();
        let m = stationary(&w, &arch, Stationarity::Input(weight)).expect("fits");
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = crate::ValidationContext::new(&w, &arch, &binding);
        ctx.validate(&m).expect("stationary mapping is valid");
        // The weight tile fills most of L1 (512 B = 256 words).
        let tile = m.resident_tile(0, 4);
        let words = w.tensor(weight).footprint(&tile);
        assert!(words > 128, "weights occupy L1: {words} words");
        // P (the weight's reuse dim) is innermost at the upper levels.
        if let MappingLevel::Temporal(t) = &m.levels()[2] {
            assert_eq!(w.dim(t.order[0]).name(), "P");
        }
    }

    #[test]
    fn output_stationary_accumulates_in_place() {
        let w = conv1d(16, 16, 56, 3);
        let arch = presets::conventional();
        let m = stationary(&w, &arch, Stationarity::Output).expect("fits");
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = crate::ValidationContext::new(&w, &arch, &binding);
        ctx.validate(&m).expect("valid");
        // C and R (reduction dims) are innermost above the tile.
        if let MappingLevel::Temporal(t) = &m.levels()[2] {
            let first = w.dim(t.order[0]).name();
            assert!(first == "C" || first == "R", "{first}");
        }
    }

    #[test]
    fn impossible_stationarity_returns_none() {
        use sunstone_arch::{
            ArchSpec, BufferPartition, Capacity, Level, MemoryLevel, TensorFilter,
        };
        let w = conv1d(16, 16, 56, 3);
        let arch = ArchSpec::new(
            "tiny",
            vec![
                Level::Memory(MemoryLevel::unified(
                    "L1",
                    BufferPartition::new("l1", TensorFilter::Any, Capacity::Bytes(1), 1.0, 1.0),
                )),
                Level::Memory(MemoryLevel::unified(
                    "DRAM",
                    BufferPartition::new("d", TensorFilter::Any, Capacity::Unbounded, 1.0, 1.0),
                )),
            ],
            1.0,
            16,
        );
        let weight = w.tensor_by_name("weight").unwrap();
        assert!(stationary(&w, &arch, Stationarity::Input(weight)).is_none());
    }
}
