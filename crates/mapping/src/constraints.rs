//! User-specified mapping constraints.
//!
//! A [`MappingConstraints`] value restricts the mapping space *before*
//! search: pin or allowlist spatial unroll dimensions per fabric, fix a
//! loop-order prefix per memory level, pin or cap resident tile extents,
//! and override tensor bypass decisions. An empty value (the default)
//! constrains nothing — the scheduler's behaviour with
//! `MappingConstraints::default()` is bit-identical to a build without the
//! constraint layer.
//!
//! Constraints name architecture levels by their [`Level::name`] and
//! problem dimensions either by name or by algebraic [`DimRole`], so one
//! description — a *dataflow template*, see
//! [`crate::templates::DataflowTemplate`] — applies across workloads.
//!
//! [`Level::name`]: sunstone_arch::Level::name

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use sunstone_ir::{DimId, DimRole, DimSet, Workload};

/// A reference to one or more problem dimensions, resolved per workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimRef {
    /// A single dimension by exact name, e.g. `"K"`. Resolution fails with
    /// [`ConstraintError::UnknownDim`] if the workload has no such
    /// dimension.
    Named(String),
    /// Every dimension with the given role — resolves to a possibly empty
    /// set and never fails.
    Role(DimRole),
}

impl DimRef {
    /// Shorthand for [`DimRef::Named`].
    pub fn named(name: impl Into<String>) -> Self {
        DimRef::Named(name.into())
    }

    /// Shorthand for [`DimRef::Role`].
    pub fn role(role: DimRole) -> Self {
        DimRef::Role(role)
    }

    /// Resolves the reference against a workload.
    ///
    /// # Errors
    ///
    /// [`ConstraintError::UnknownDim`] for a [`DimRef::Named`] that matches
    /// no dimension.
    pub fn resolve(&self, workload: &Workload) -> Result<DimSet, ConstraintError> {
        match self {
            DimRef::Named(name) => workload
                .dim_by_name(name)
                .map(|d| DimSet::EMPTY.with(d))
                .ok_or_else(|| ConstraintError::UnknownDim { name: name.clone() }),
            DimRef::Role(role) => Ok(workload.dims_with_role(*role)),
        }
    }
}

impl fmt::Display for DimRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimRef::Named(n) => write!(f, "`{n}`"),
            DimRef::Role(DimRole::Parallel) => write!(f, "role:parallel"),
            DimRef::Role(DimRole::Reduction) => write!(f, "role:reduction"),
        }
    }
}

/// Restricts the spatial unrolling at one fabric (by level name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnrollConstraint {
    /// The spatial level's name, e.g. `"pe_grid"`.
    pub level: String,
    /// When `Some`, only dimensions in the union of these references may
    /// have an unroll factor > 1 here. `Some(vec![])` forbids unrolling
    /// anything beyond the pins below.
    pub allow: Option<Vec<DimRef>>,
    /// Exact unroll factors: every dimension each reference resolves to
    /// must be unrolled by exactly this factor at this fabric. Pinned
    /// dimensions are implicitly allowed.
    pub pins: Vec<(DimRef, u64)>,
}

/// Fixes the (innermost) loop order at one memory level.
///
/// `inner` is a sequence of dimension *groups*, innermost first. Reading
/// the level's loop order from the innermost loop outward and skipping
/// degenerate loops (factor 1 at that level), the order must consume each
/// group's dimensions — in any order within a group — before the next
/// group starts. A `Named` reference is a singleton group, so a list of
/// named references fixes the exact innermost sequence; a `Role` reference
/// constrains a whole class of loops to sit together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderConstraint {
    /// The memory level's name, e.g. `"L2"`. The innermost memory level
    /// has no enumerated loop order and cannot be constrained.
    pub level: String,
    /// Dimension groups, innermost first.
    pub inner: Vec<DimRef>,
    /// When `true`, the groups must cover every non-degenerate loop at
    /// this level — the whole order is fixed up to intra-group
    /// permutation. When `false`, loops outside the groups are free but
    /// must all sit outside the constrained prefix.
    pub exact: bool,
}

/// Pins or caps per-dimension resident tile extents at one memory level.
///
/// The *resident tile* at a memory is the product of factors over all
/// levels at or below it ([`Mapping::resident_tile`]); a pin of `v` for
/// dimension `d` means exactly `v` consecutive indices of `d` are resident,
/// a cap means at most `v` are.
///
/// [`Mapping::resident_tile`]: crate::Mapping::resident_tile
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileConstraint {
    /// The memory level's name. The outermost memory always holds the full
    /// problem and cannot be pinned or capped.
    pub level: String,
    /// Exact resident extents. A pin must divide the problem dimension.
    pub pins: Vec<(DimRef, u64)>,
    /// Upper bounds on resident extents.
    pub caps: Vec<(DimRef, u64)>,
}

/// Forces a tensor to bypass a memory level it would otherwise occupy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BypassOverride {
    /// The memory level's name. The outermost memory must store every
    /// tensor and cannot be bypassed.
    pub level: String,
    /// The tensor's name in the workload.
    pub tensor: String,
}

/// A full set of mapping-space restrictions. The default is empty:
/// everything the architecture admits stays searchable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MappingConstraints {
    /// Per-fabric spatial unroll restrictions.
    pub unroll: Vec<UnrollConstraint>,
    /// Per-memory loop-order restrictions.
    pub order: Vec<OrderConstraint>,
    /// Per-memory tile-size restrictions.
    pub tile: Vec<TileConstraint>,
    /// Bypass overrides.
    pub bypass: Vec<BypassOverride>,
}

impl MappingConstraints {
    /// Creates an empty (unconstrained) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if no constraint of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.unroll.is_empty()
            && self.order.is_empty()
            && self.tile.is_empty()
            && self.bypass.is_empty()
    }

    /// Restricts unrolling at fabric `level` to the given dimensions
    /// (builder style).
    #[must_use]
    pub fn allow_unroll(
        mut self,
        level: impl Into<String>,
        dims: impl IntoIterator<Item = DimRef>,
    ) -> Self {
        self.unroll.push(UnrollConstraint {
            level: level.into(),
            allow: Some(dims.into_iter().collect()),
            pins: Vec::new(),
        });
        self
    }

    /// Pins the unroll factor of `dim` at fabric `level` (builder style).
    #[must_use]
    pub fn pin_unroll(mut self, level: impl Into<String>, dim: DimRef, factor: u64) -> Self {
        let level = level.into();
        if let Some(c) = self.unroll.iter_mut().find(|c| c.level == level) {
            c.pins.push((dim, factor));
        } else {
            self.unroll.push(UnrollConstraint { level, allow: None, pins: vec![(dim, factor)] });
        }
        self
    }

    /// Requires the given dimension groups to be innermost (in order) at
    /// memory `level` (builder style).
    #[must_use]
    pub fn order_inner(
        mut self,
        level: impl Into<String>,
        inner: impl IntoIterator<Item = DimRef>,
    ) -> Self {
        self.order.push(OrderConstraint {
            level: level.into(),
            inner: inner.into_iter().collect(),
            exact: false,
        });
        self
    }

    /// Fixes the whole loop order at memory `level` to the given groups
    /// (builder style).
    #[must_use]
    pub fn order_exact(
        mut self,
        level: impl Into<String>,
        inner: impl IntoIterator<Item = DimRef>,
    ) -> Self {
        self.order.push(OrderConstraint {
            level: level.into(),
            inner: inner.into_iter().collect(),
            exact: true,
        });
        self
    }

    /// Pins the resident tile extent of `dim` at memory `level` (builder
    /// style).
    #[must_use]
    pub fn pin_tile(mut self, level: impl Into<String>, dim: DimRef, extent: u64) -> Self {
        let level = level.into();
        if let Some(c) = self.tile.iter_mut().find(|c| c.level == level) {
            c.pins.push((dim, extent));
        } else {
            self.tile.push(TileConstraint { level, pins: vec![(dim, extent)], caps: Vec::new() });
        }
        self
    }

    /// Caps the resident tile extent of `dim` at memory `level` (builder
    /// style).
    #[must_use]
    pub fn cap_tile(mut self, level: impl Into<String>, dim: DimRef, extent: u64) -> Self {
        let level = level.into();
        if let Some(c) = self.tile.iter_mut().find(|c| c.level == level) {
            c.caps.push((dim, extent));
        } else {
            self.tile.push(TileConstraint { level, pins: Vec::new(), caps: vec![(dim, extent)] });
        }
        self
    }

    /// Forces `tensor` to bypass memory `level` (builder style).
    #[must_use]
    pub fn bypass(mut self, level: impl Into<String>, tensor: impl Into<String>) -> Self {
        self.bypass.push(BypassOverride { level: level.into(), tensor: tensor.into() });
        self
    }
}

/// Why a constraint set is invalid for a given workload/architecture pair,
/// or why a mapping violates it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConstraintError {
    /// A `DimRef::Named` matches no workload dimension.
    UnknownDim { name: String },
    /// A constraint names an architecture level that does not exist.
    UnknownLevel { name: String },
    /// An unroll constraint names a level that is not spatial.
    NotSpatial { level: String },
    /// An order/tile/bypass constraint names a level that is not a memory.
    NotMemory { level: String },
    /// A bypass override names a tensor the workload does not have.
    UnknownTensor { name: String },
    /// The constraint set can never be satisfied (contradictory pins,
    /// non-dividing tile pins, over-subscribed fabrics, ...).
    Unsatisfiable { reason: String },
    /// A mapping does not honor the constraint set (reported by
    /// [`ValidationContext::satisfies`](crate::ValidationContext::satisfies)).
    Violated { level: String, reason: String },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::UnknownDim { name } => {
                write!(f, "constraint references unknown dimension `{name}`")
            }
            ConstraintError::UnknownLevel { name } => {
                write!(f, "constraint references unknown level `{name}`")
            }
            ConstraintError::NotSpatial { level } => {
                write!(f, "unroll constraint on `{level}`, which is not a spatial level")
            }
            ConstraintError::NotMemory { level } => {
                write!(f, "constraint on `{level}`, which is not a memory level")
            }
            ConstraintError::UnknownTensor { name } => {
                write!(f, "bypass override references unknown tensor `{name}`")
            }
            ConstraintError::Unsatisfiable { reason } => {
                write!(f, "unsatisfiable constraints: {reason}")
            }
            ConstraintError::Violated { level, reason } => {
                write!(f, "mapping violates constraint at `{level}`: {reason}")
            }
        }
    }
}

impl Error for ConstraintError {}

/// Resolves the union of several references, used by every consumer of a
/// `Vec<DimRef>`.
///
/// # Errors
///
/// Propagates [`DimRef::resolve`] failures.
pub fn resolve_union(refs: &[DimRef], workload: &Workload) -> Result<DimSet, ConstraintError> {
    let mut set = DimSet::EMPTY;
    for r in refs {
        set = set.union(r.resolve(workload)?);
    }
    Ok(set)
}

/// Resolves `(DimRef, value)` pairs to per-dimension values. A reference
/// resolving to several dimensions pins each of them; conflicting values
/// for the same dimension are unsatisfiable.
///
/// # Errors
///
/// Propagates [`DimRef::resolve`] failures;
/// [`ConstraintError::Unsatisfiable`] on conflicting values for one
/// dimension.
pub fn resolve_pins(
    pins: &[(DimRef, u64)],
    workload: &Workload,
    what: &str,
    level: &str,
) -> Result<Vec<(DimId, u64)>, ConstraintError> {
    let mut out: Vec<(DimId, u64)> = Vec::new();
    for (r, v) in pins {
        for d in r.resolve(workload)?.iter() {
            match out.iter().find(|(e, _)| *e == d) {
                Some((_, prev)) if prev != v => {
                    return Err(ConstraintError::Unsatisfiable {
                        reason: format!(
                            "conflicting {what} pins for dimension `{}` at `{level}`: {prev} vs {v}",
                            workload.dim(d).name()
                        ),
                    });
                }
                Some(_) => {}
                None => out.push((d, *v)),
            }
        }
    }
    Ok(out)
}

/// Resolves `(DimRef, cap)` pairs to per-dimension upper bounds. Unlike
/// pins, several caps on one dimension are not a conflict — the tightest
/// wins.
///
/// # Errors
///
/// Propagates [`DimRef::resolve`] failures.
pub fn resolve_caps(
    caps: &[(DimRef, u64)],
    workload: &Workload,
) -> Result<Vec<(DimId, u64)>, ConstraintError> {
    let mut out: Vec<(DimId, u64)> = Vec::new();
    for (r, v) in caps {
        for d in r.resolve(workload)?.iter() {
            match out.iter_mut().find(|(e, _)| *e == d) {
                Some((_, prev)) => *prev = (*prev).min(*v),
                None => out.push((d, *v)),
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn default_is_empty() {
        assert!(MappingConstraints::default().is_empty());
        assert!(!MappingConstraints::new().bypass("L2", "weight").is_empty());
    }

    #[test]
    fn named_ref_resolves_to_singleton() {
        let w = conv1d();
        let set = DimRef::named("C").resolve(&w).unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.contains(w.dim_by_name("C").unwrap()));
        assert_eq!(
            DimRef::named("Z").resolve(&w).unwrap_err(),
            ConstraintError::UnknownDim { name: "Z".into() }
        );
    }

    #[test]
    fn role_ref_resolves_to_role_set() {
        let w = conv1d();
        let red = DimRef::role(DimRole::Reduction).resolve(&w).unwrap();
        assert_eq!(red, w.reduction_dims());
        let par = DimRef::role(DimRole::Parallel).resolve(&w).unwrap();
        assert_eq!(par.union(red), DimSet::first_n(4));
        assert!(par.is_disjoint(red));
    }

    #[test]
    fn conflicting_pins_are_unsatisfiable() {
        let w = conv1d();
        let pins = vec![(DimRef::named("C"), 2), (DimRef::named("C"), 4)];
        let err = resolve_pins(&pins, &w, "unroll", "grid").unwrap_err();
        assert!(matches!(err, ConstraintError::Unsatisfiable { .. }), "{err:?}");
        // Agreeing duplicates collapse.
        let pins = vec![(DimRef::named("C"), 2), (DimRef::named("C"), 2)];
        assert_eq!(resolve_pins(&pins, &w, "unroll", "grid").unwrap().len(), 1);
    }

    #[test]
    fn builder_helpers_accumulate() {
        let c = MappingConstraints::new()
            .allow_unroll("grid", [DimRef::named("C"), DimRef::named("K")])
            .pin_unroll("grid", DimRef::named("C"), 4)
            .order_inner("L2", [DimRef::role(DimRole::Reduction)])
            .pin_tile("L1", DimRef::named("P"), 7)
            .cap_tile("L1", DimRef::named("K"), 2)
            .bypass("L2", "weight");
        assert_eq!(c.unroll.len(), 1, "pin merges into the allow entry");
        assert_eq!(c.unroll[0].pins.len(), 1);
        assert_eq!(c.order.len(), 1);
        assert_eq!(c.tile.len(), 1, "pin and cap merge per level");
        assert_eq!(c.tile[0].pins.len(), 1);
        assert_eq!(c.tile[0].caps.len(), 1);
        assert_eq!(c.bypass.len(), 1);
    }

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            ConstraintError::UnknownDim { name: "Z".into() },
            ConstraintError::UnknownLevel { name: "L9".into() },
            ConstraintError::NotSpatial { level: "L1".into() },
            ConstraintError::NotMemory { level: "grid".into() },
            ConstraintError::UnknownTensor { name: "bias".into() },
            ConstraintError::Unsatisfiable { reason: "because".into() },
            ConstraintError::Violated { level: "grid".into(), reason: "because".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
