//! Rendering mappings as nested-loop pseudocode, in the style of the
//! paper's Algorithm 2–5 listings.

use std::fmt::Write as _;

use sunstone_arch::{ArchSpec, Level};
use sunstone_ir::Workload;

use crate::{Mapping, MappingLevel};

/// Renders a mapping as indented nested-loop pseudocode.
///
/// Loops appear outermost-first; each temporal level is labelled with its
/// memory, spatial levels appear as `parallel-for`, and unit-factor loops
/// are omitted. The innermost line names the computation.
///
/// # Examples
///
/// ```
/// use sunstone_arch::presets;
/// use sunstone_ir::Workload;
/// use sunstone_mapping::{pretty, Mapping};
///
/// let mut b = Workload::builder("mm");
/// let m = b.dim("M", 4);
/// let n = b.dim("N", 4);
/// let k = b.dim("K", 4);
/// b.input("a", [m.expr(), k.expr()]);
/// b.input("b", [k.expr(), n.expr()]);
/// b.output("out", [m.expr(), n.expr()]);
/// let w = b.build()?;
/// let arch = presets::conventional();
/// let text = pretty::render(&Mapping::streaming(&w, &arch), &w, &arch);
/// assert!(text.contains("for m in 0..4"));
/// # Ok::<(), sunstone_ir::WorkloadError>(())
/// ```
pub fn render(mapping: &Mapping, workload: &Workload, arch: &ArchSpec) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for (pos, level) in mapping.levels().iter().enumerate().rev() {
        let arch_level = &arch.levels()[pos];
        match (level, arch_level) {
            (MappingLevel::Temporal(t), Level::Memory(mem)) => {
                let mut labelled = false;
                for &d in t.order.iter().rev() {
                    let f = t.factors[d.index()];
                    if f > 1 {
                        let label = if labelled {
                            String::new()
                        } else {
                            labelled = true;
                            format!("   // {} tile", mem.name)
                        };
                        let _ = writeln!(
                            out,
                            "{:indent$}for {} in 0..{}{}",
                            "",
                            workload.dim(d).name().to_lowercase(),
                            f,
                            label,
                            indent = depth * 2
                        );
                        depth += 1;
                    }
                }
            }
            (MappingLevel::Spatial(s), Level::Spatial(fabric)) => {
                for (i, &f) in s.factors.iter().enumerate() {
                    if f > 1 {
                        let d = sunstone_ir::DimId::from_index(i);
                        let _ = writeln!(
                            out,
                            "{:indent$}parallel-for {} in 0..{}   // {} ({} units)",
                            "",
                            workload.dim(d).name().to_lowercase(),
                            f,
                            fabric.name,
                            fabric.units,
                            indent = depth * 2
                        );
                        depth += 1;
                    }
                }
            }
            _ => {}
        }
    }
    let output = workload.tensor(workload.output()).name();
    let inputs: Vec<&str> =
        workload.tensors().iter().filter(|t| !t.is_output()).map(|t| t.name()).collect();
    let _ = writeln!(out, "{:indent$}{output} += {}", "", inputs.join(" × "), indent = depth * 2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpatialAssignment, TemporalLevel};
    use sunstone_arch::{presets, LevelId};
    use sunstone_ir::DimId;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn renders_algorithm_style_listing() {
        let w = conv1d();
        let arch = presets::conventional();
        let d = |i: usize| DimId::from_index(i);
        let m = Mapping::from_levels(vec![
            MappingLevel::Temporal(TemporalLevel {
                mem: LevelId(0),
                factors: vec![2, 1, 7, 3],
                order: vec![d(3), d(2), d(0), d(1)],
            }),
            MappingLevel::Spatial(SpatialAssignment {
                fabric: LevelId(1),
                factors: vec![2, 1, 1, 1],
            }),
            MappingLevel::Temporal(TemporalLevel {
                mem: LevelId(2),
                factors: vec![1, 4, 2, 1],
                order: vec![d(1), d(2), d(0), d(3)],
            }),
            MappingLevel::Temporal(TemporalLevel {
                mem: LevelId(3),
                factors: vec![1, 1, 1, 1],
                order: vec![d(0), d(1), d(2), d(3)],
            }),
        ]);
        let text = render(&m, &w, &arch);
        let lines: Vec<&str> = text.lines().collect();
        // Outermost: the L2 loops (P then C, innermost-first order [C,P]).
        assert!(lines[0].contains("for p in 0..2"), "{text}");
        assert!(lines[1].contains("for c in 0..4"), "{text}");
        assert!(lines[2].contains("parallel-for k in 0..2"), "{text}");
        assert!(text.contains("// pe_grid (1024 units)"), "{text}");
        assert!(text.ends_with("ofmap += ifmap × weight\n"), "{text}");
        // Indentation deepens monotonically.
        let indents: Vec<usize> = lines.iter().map(|l| l.len() - l.trim_start().len()).collect();
        assert!(indents.windows(2).all(|w| w[1] > w[0]), "{indents:?}");
    }

    #[test]
    fn unit_factors_are_omitted() {
        let w = conv1d();
        let arch = presets::conventional();
        let text = render(&Mapping::streaming(&w, &arch), &w, &arch);
        // Streaming has all loops at DRAM; exactly 4 loops + compute line.
        assert_eq!(text.lines().count(), 5, "{text}");
        assert!(
            !text.lines().any(|l| l.split("//").next().unwrap_or("").trim_end().ends_with("0..1")),
            "{text}"
        );
    }
}
