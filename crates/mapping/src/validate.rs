//! Mapping validation.

use std::error::Error;
use std::fmt;

use sunstone_arch::{ArchSpec, Binding, Level, LevelId, MemoryLevel};
use sunstone_ir::{DimId, DimSet, Workload};

use crate::constraints::{
    resolve_caps, resolve_pins, resolve_union, ConstraintError, MappingConstraints,
};
use crate::{Mapping, MappingLevel};

/// Reasons a mapping can be invalid.
///
/// These are the same failure modes the paper reports for baseline tools:
/// tiles that do not fit their designated memories (CoSA, Fig 8), mappings
/// that do not correspond to the original computation (factor products),
/// and unrollings that require unsupported spatial reduction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MappingError {
    /// The mapping's level list does not mirror the architecture.
    StructureMismatch { expected: usize, got: usize },
    /// Level `pos` is temporal where the architecture has a spatial level,
    /// or vice versa.
    KindMismatch { pos: usize },
    /// A level's factor vector has the wrong length.
    WrongArity { pos: usize },
    /// A factor is zero.
    ZeroFactor { pos: usize, dim: usize },
    /// The product of factors over all levels differs from the problem
    /// dimension: the mapping does not compute the original problem.
    FactorProductMismatch { dim: usize, product: u64, size: u64 },
    /// A temporal level's loop order is not a permutation of all dims.
    OrderNotPermutation { pos: usize },
    /// A spatial level unrolls more units than the fabric provides.
    SpatialOverflow { pos: usize, used: u64, units: u64 },
    /// A spatial level unrolls a reduction dimension but the fabric cannot
    /// reduce across units.
    ReductionNotSupported { pos: usize, dim: usize },
    /// A tile does not fit in its designated buffer partition.
    CapacityExceeded { level: String, partition: String, needed_bytes: u64, capacity_bytes: u64 },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::StructureMismatch { expected, got } => {
                write!(f, "mapping has {got} levels but the architecture has {expected}")
            }
            MappingError::KindMismatch { pos } => {
                write!(f, "level {pos} kind differs from the architecture")
            }
            MappingError::WrongArity { pos } => {
                write!(f, "level {pos} factor vector length differs from the workload")
            }
            MappingError::ZeroFactor { pos, dim } => {
                write!(f, "level {pos} has factor 0 for dimension {dim}")
            }
            MappingError::FactorProductMismatch { dim, product, size } => {
                write!(f, "dimension {dim}: factors multiply to {product}, problem size is {size}")
            }
            MappingError::OrderNotPermutation { pos } => {
                write!(f, "level {pos} loop order is not a permutation of the dimensions")
            }
            MappingError::SpatialOverflow { pos, used, units } => {
                write!(f, "spatial level {pos} uses {used} units but only {units} exist")
            }
            MappingError::ReductionNotSupported { pos, dim } => {
                write!(f, "spatial level {pos} unrolls reduction dimension {dim} without support")
            }
            MappingError::CapacityExceeded { level, partition, needed_bytes, capacity_bytes } => {
                write!(
                    f,
                    "tile needs {needed_bytes} B in `{level}/{partition}` ({capacity_bytes} B)"
                )
            }
        }
    }
}

impl Error for MappingError {}

/// Everything needed to validate mappings for one (workload, architecture)
/// pair. Construct once, validate many candidate mappings.
#[derive(Debug, Clone)]
pub struct ValidationContext<'a> {
    workload: &'a Workload,
    arch: &'a ArchSpec,
    binding: &'a Binding,
    reduction_dims: DimSet,
}

impl<'a> ValidationContext<'a> {
    /// Creates a context.
    pub fn new(workload: &'a Workload, arch: &'a ArchSpec, binding: &'a Binding) -> Self {
        ValidationContext { workload, arch, binding, reduction_dims: workload.reduction_dims() }
    }

    /// The workload under validation.
    pub fn workload(&self) -> &'a Workload {
        self.workload
    }

    /// The architecture under validation.
    pub fn arch(&self) -> &'a ArchSpec {
        self.arch
    }

    /// The tensor-to-partition binding.
    pub fn binding(&self) -> &'a Binding {
        self.binding
    }

    /// Checks every validity condition; see [`MappingError`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found, structural checks before
    /// capacity checks.
    pub fn validate(&self, mapping: &Mapping) -> Result<(), MappingError> {
        self.validate_structure(mapping)?;
        self.validate_capacity(mapping)
    }

    /// Structural checks only (no capacity): level shape, factor products,
    /// order permutations, spatial limits.
    pub fn validate_structure(&self, mapping: &Mapping) -> Result<(), MappingError> {
        let n = self.workload.num_dims();
        let arch_levels = self.arch.levels();
        if mapping.levels().len() != arch_levels.len() {
            return Err(MappingError::StructureMismatch {
                expected: arch_levels.len(),
                got: mapping.levels().len(),
            });
        }
        for (pos, (ml, al)) in mapping.levels().iter().zip(arch_levels).enumerate() {
            match (ml, al) {
                (MappingLevel::Temporal(t), Level::Memory(_)) => {
                    if t.factors.len() != n {
                        return Err(MappingError::WrongArity { pos });
                    }
                    if t.order.len() != n {
                        return Err(MappingError::OrderNotPermutation { pos });
                    }
                    let seen: DimSet = t.order.iter().copied().collect();
                    if seen.len() != n {
                        return Err(MappingError::OrderNotPermutation { pos });
                    }
                }
                (MappingLevel::Spatial(s), Level::Spatial(fabric)) => {
                    if s.factors.len() != n {
                        return Err(MappingError::WrongArity { pos });
                    }
                    let used = s.used_units();
                    if used > fabric.units {
                        return Err(MappingError::SpatialOverflow {
                            pos,
                            used,
                            units: fabric.units,
                        });
                    }
                    if !fabric.allow_reduction {
                        for d in self.reduction_dims.iter() {
                            if s.factors[d.index()] > 1 {
                                return Err(MappingError::ReductionNotSupported {
                                    pos,
                                    dim: d.index(),
                                });
                            }
                        }
                    }
                }
                _ => return Err(MappingError::KindMismatch { pos }),
            }
            for (dim, &f) in ml.factors().iter().enumerate() {
                if f == 0 {
                    return Err(MappingError::ZeroFactor { pos, dim });
                }
            }
        }
        for d in self.workload.dim_ids() {
            let product = mapping.total_factor(d);
            let size = self.workload.dim_size(d);
            if product != size {
                return Err(MappingError::FactorProductMismatch { dim: d.index(), product, size });
            }
        }
        Ok(())
    }

    /// Capacity checks: at every bounded memory level, the resident tiles
    /// of the tensors bound to each partition must fit.
    pub fn validate_capacity(&self, mapping: &Mapping) -> Result<(), MappingError> {
        for (level_id, mem) in self.arch.memory_levels() {
            self.check_level_capacity(mapping, level_id, mem)?;
        }
        Ok(())
    }

    /// Checks that a (structurally valid) mapping honors every constraint
    /// in `constraints`.
    ///
    /// Bypass overrides are a search-time *binding* concern — the mapping
    /// itself does not record which memory stores which tensor — so they
    /// are not checked here; everything else (unroll allowlists and pins,
    /// tile pins and caps, loop-order prefixes) is enforced strictly.
    ///
    /// Order constraints apply to the *non-degenerate* loops of a level:
    /// a loop whose factor is 1 at that level runs a single iteration and
    /// carries no ordering semantics, so its position in the recorded
    /// permutation is ignored.
    ///
    /// # Errors
    ///
    /// [`ConstraintError::Violated`] for the first violation found;
    /// resolution errors (unknown names, wrong level kinds, contradictory
    /// pins) surface as their own variants.
    pub fn satisfies(
        &self,
        mapping: &Mapping,
        constraints: &MappingConstraints,
    ) -> Result<(), ConstraintError> {
        let find_level = |name: &str| -> Result<usize, ConstraintError> {
            self.arch
                .levels()
                .iter()
                .position(|l| l.name() == name)
                .ok_or_else(|| ConstraintError::UnknownLevel { name: name.to_string() })
        };
        for uc in &constraints.unroll {
            let pos = find_level(&uc.level)?;
            if self.arch.levels()[pos].as_spatial().is_none() {
                return Err(ConstraintError::NotSpatial { level: uc.level.clone() });
            }
            let factors = mapping.level(pos).factors();
            let pins = resolve_pins(&uc.pins, self.workload, "unroll", &uc.level)?;
            if let Some(refs) = &uc.allow {
                let mut allowed = resolve_union(refs, self.workload)?;
                for (d, _) in &pins {
                    allowed.insert(*d); // pinned dims are implicitly allowed
                }
                for (i, &f) in factors.iter().enumerate() {
                    let d = DimId::from_index(i);
                    if f > 1 && !allowed.contains(d) {
                        return Err(ConstraintError::Violated {
                            level: uc.level.clone(),
                            reason: format!(
                                "dimension `{}` unrolled by {f} outside the allowlist",
                                self.workload.dim(d).name()
                            ),
                        });
                    }
                }
            }
            for (d, v) in pins {
                let f = factors[d.index()];
                if f != v {
                    return Err(ConstraintError::Violated {
                        level: uc.level.clone(),
                        reason: format!(
                            "dimension `{}` unrolled by {f}, pinned to {v}",
                            self.workload.dim(d).name()
                        ),
                    });
                }
            }
        }
        for tc in &constraints.tile {
            let pos = find_level(&tc.level)?;
            if self.arch.levels()[pos].as_memory().is_none() {
                return Err(ConstraintError::NotMemory { level: tc.level.clone() });
            }
            let tile = mapping.resident_tile(pos, self.workload.num_dims());
            for (d, v) in resolve_pins(&tc.pins, self.workload, "tile", &tc.level)? {
                if tile[d.index()] != v {
                    return Err(ConstraintError::Violated {
                        level: tc.level.clone(),
                        reason: format!(
                            "resident tile of `{}` is {}, pinned to {v}",
                            self.workload.dim(d).name(),
                            tile[d.index()]
                        ),
                    });
                }
            }
            for (d, v) in resolve_caps(&tc.caps, self.workload)? {
                if tile[d.index()] > v {
                    return Err(ConstraintError::Violated {
                        level: tc.level.clone(),
                        reason: format!(
                            "resident tile of `{}` is {}, capped at {v}",
                            self.workload.dim(d).name(),
                            tile[d.index()]
                        ),
                    });
                }
            }
        }
        for oc in &constraints.order {
            let pos = find_level(&oc.level)?;
            let Some(t) = mapping.level(pos).as_temporal() else {
                return Err(ConstraintError::NotMemory { level: oc.level.clone() });
            };
            let groups: Vec<DimSet> =
                oc.inner.iter().map(|r| r.resolve(self.workload)).collect::<Result<_, _>>()?;
            for (i, a) in groups.iter().enumerate() {
                for b in &groups[i + 1..] {
                    if !a.is_disjoint(*b) {
                        return Err(ConstraintError::Unsatisfiable {
                            reason: format!(
                                "order groups at `{}` share dimensions {}",
                                oc.level,
                                a.intersection(*b)
                            ),
                        });
                    }
                }
            }
            let active: Vec<DimId> =
                t.order.iter().copied().filter(|d| t.factors[d.index()] > 1).collect();
            let active_set: DimSet = active.iter().copied().collect();
            let mut idx = 0usize;
            for g in &groups {
                let g = g.intersection(active_set);
                let need = g.len();
                let segment: DimSet = active[idx..].iter().take(need).copied().collect();
                if segment != g || idx + need > active.len() {
                    return Err(ConstraintError::Violated {
                        level: oc.level.clone(),
                        reason: format!("loops {segment} occupy the positions constrained to {g}"),
                    });
                }
                idx += need;
            }
            if oc.exact && idx != active.len() {
                return Err(ConstraintError::Violated {
                    level: oc.level.clone(),
                    reason: format!(
                        "{} non-degenerate loops outside the exact order groups",
                        active.len() - idx
                    ),
                });
            }
        }
        Ok(())
    }

    fn check_level_capacity(
        &self,
        mapping: &Mapping,
        level_id: LevelId,
        mem: &MemoryLevel,
    ) -> Result<(), MappingError> {
        let n = self.workload.num_dims();
        let tile = mapping.resident_tile(level_id.index(), n);
        let mut needed = vec![0u64; mem.partitions.len()];
        for t in self.workload.tensor_ids() {
            if let Some(pid) = self.binding.partition_of(level_id, t) {
                let tensor = self.workload.tensor(t);
                let words = tensor.footprint(&tile);
                // Saturating like `Tensor::footprint`: overflow is
                // input-reachable (huge dims saturate the footprint) and
                // saturation only ever *over*-reports the requirement, so
                // an oversized tile is rejected, never falsely admitted.
                let bytes = words.saturating_mul(u64::from(tensor.bits()).div_ceil(8));
                needed[pid.0] = needed[pid.0].saturating_add(bytes);
            }
        }
        for (p, &bytes) in mem.partitions.iter().zip(&needed) {
            if !p.capacity.fits(bytes) {
                return Err(MappingError::CapacityExceeded {
                    level: mem.name.clone(),
                    partition: p.name.clone(),
                    needed_bytes: bytes,
                    capacity_bytes: p.capacity.bytes().unwrap_or(u64::MAX),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TemporalLevel;
    use sunstone_arch::presets;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn streaming_mapping_is_valid() {
        let w = conv1d();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let m = Mapping::streaming(&w, &arch);
        ctx.validate(&m).unwrap();
    }

    #[test]
    fn detects_factor_product_mismatch() {
        let w = conv1d();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut m = Mapping::streaming(&w, &arch);
        m.levels_mut()[0].factors_mut()[0] = 2; // K now covered 2 × 4.
        assert_eq!(
            ctx.validate(&m).unwrap_err(),
            MappingError::FactorProductMismatch { dim: 0, product: 8, size: 4 }
        );
    }

    #[test]
    fn detects_spatial_overflow() {
        let w = conv1d();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut m = Mapping::streaming(&w, &arch);
        // 14 × 4 × 4 × 3 = 672 ≤ 1024 units, so bump P beyond its size to
        // overflow; instead unroll a fake huge product: use K=4,C=4,P=14,R=3
        // on 1024 units is fine; force overflow via an absurd factor.
        m.levels_mut()[1].factors_mut()[2] = 2048;
        let err = ctx.validate(&m).unwrap_err();
        assert!(matches!(err, MappingError::SpatialOverflow { used: 2048, units: 1024, .. }));
    }

    #[test]
    fn detects_reduction_on_non_reducing_fabric() {
        let w = conv1d();
        let mut arch = presets::conventional();
        // Rebuild with a no-reduction grid.
        let levels: Vec<Level> = arch
            .levels()
            .iter()
            .cloned()
            .map(|l| match l {
                Level::Spatial(s) => Level::Spatial(s.without_reduction()),
                other => other,
            })
            .collect();
        arch = ArchSpec::new("noreduce", levels, arch.mac_energy_pj(), arch.ref_bits());
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut m = Mapping::streaming(&w, &arch);
        // Unroll C (a reduction dim) on the grid and remove it from DRAM.
        m.levels_mut()[1].factors_mut()[1] = 2;
        m.levels_mut()[3].factors_mut()[1] = 2;
        let err = ctx.validate(&m).unwrap_err();
        assert!(matches!(err, MappingError::ReductionNotSupported { dim: 1, .. }));
    }

    #[test]
    fn detects_capacity_overflow() {
        let w = {
            let mut b = Workload::builder("conv1d-big");
            let k = b.dim("K", 64);
            let c = b.dim("C", 64);
            let p = b.dim("P", 56);
            let r = b.dim("R", 3);
            b.input("ifmap", [c.expr(), p + r]);
            b.input("weight", [k.expr(), c.expr(), r.expr()]);
            b.output("ofmap", [k.expr(), p.expr()]);
            b.build().unwrap()
        };
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut m = Mapping::streaming(&w, &arch);
        // Put the whole problem in L1 (512 B): footprints exceed capacity.
        m.levels_mut()[0].factors_mut().copy_from_slice(&w.dim_sizes());
        for d in 0..4 {
            m.levels_mut()[3].factors_mut()[d] = 1;
        }
        let err = ctx.validate(&m).unwrap_err();
        assert!(
            matches!(err, MappingError::CapacityExceeded { ref level, .. } if level == "L1"),
            "{err:?}"
        );
    }

    #[test]
    fn detects_bad_order_permutation() {
        let w = conv1d();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut m = Mapping::streaming(&w, &arch);
        if let MappingLevel::Temporal(TemporalLevel { order, .. }) = &mut m.levels_mut()[0] {
            order[0] = order[1]; // duplicate dim
        }
        assert_eq!(ctx.validate(&m).unwrap_err(), MappingError::OrderNotPermutation { pos: 0 });
    }

    #[test]
    fn detects_zero_factor() {
        let w = conv1d();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut m = Mapping::streaming(&w, &arch);
        m.levels_mut()[0].factors_mut()[0] = 0;
        assert_eq!(ctx.validate(&m).unwrap_err(), MappingError::ZeroFactor { pos: 0, dim: 0 });
    }

    #[test]
    fn detects_structure_mismatch() {
        let w = conv1d();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let m =
            Mapping::from_levels(vec![MappingLevel::Temporal(TemporalLevel::unit(LevelId(0), 4))]);
        assert!(matches!(
            ctx.validate(&m).unwrap_err(),
            MappingError::StructureMismatch { expected: 4, got: 1 }
        ));
    }

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            MappingError::StructureMismatch { expected: 4, got: 1 },
            MappingError::KindMismatch { pos: 0 },
            MappingError::WrongArity { pos: 0 },
            MappingError::ZeroFactor { pos: 0, dim: 0 },
            MappingError::FactorProductMismatch { dim: 0, product: 8, size: 4 },
            MappingError::OrderNotPermutation { pos: 0 },
            MappingError::SpatialOverflow { pos: 0, used: 9, units: 8 },
            MappingError::ReductionNotSupported { pos: 0, dim: 0 },
            MappingError::CapacityExceeded {
                level: "L1".into(),
                partition: "l1".into(),
                needed_bytes: 9,
                capacity_bytes: 8,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
