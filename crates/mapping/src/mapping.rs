//! The mapping data structures.

use std::fmt;

use serde::{Deserialize, Serialize};
use sunstone_arch::{ArchSpec, Level, LevelId};
use sunstone_ir::{DimId, DimVec, Workload};

/// The temporal part of a mapping at one memory level: tiling factors and a
/// loop order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalLevel {
    /// The architecture memory level this belongs to.
    pub mem: LevelId,
    /// Per-dimension tiling factors (indexed by [`DimId::index`]).
    pub factors: Vec<u64>,
    /// Loop order, **innermost-first**: `order[0]` is the innermost loop.
    /// Must be a permutation of all workload dimensions.
    pub order: Vec<DimId>,
}

impl TemporalLevel {
    /// Creates a level with all factors 1 and the canonical order
    /// (dimension 0 innermost).
    pub fn unit(mem: LevelId, num_dims: usize) -> Self {
        TemporalLevel {
            mem,
            factors: vec![1; num_dims],
            order: (0..num_dims).map(DimId::from_index).collect(),
        }
    }

    /// The loop order outermost-first, as the paper writes it (e.g.
    /// `K_L2 P_L2 ...`).
    pub fn order_outermost_first(&self) -> Vec<DimId> {
        self.order.iter().rev().copied().collect()
    }

    /// Product of this level's factors (number of child-tile iterations).
    pub fn iterations(&self) -> u64 {
        self.factors.iter().product()
    }
}

/// The spatial part of a mapping at one fan-out level: per-dimension unroll
/// factors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialAssignment {
    /// The architecture spatial level this belongs to.
    pub fabric: LevelId,
    /// Per-dimension unroll factors; their product is the number of busy
    /// units and may not exceed the fabric's unit count.
    pub factors: Vec<u64>,
}

impl SpatialAssignment {
    /// Creates an assignment that uses a single unit (all factors 1).
    pub fn unit(fabric: LevelId, num_dims: usize) -> Self {
        SpatialAssignment { fabric, factors: vec![1; num_dims] }
    }

    /// Number of busy units (product of unroll factors).
    pub fn used_units(&self) -> u64 {
        self.factors.iter().product()
    }
}

/// One level of a mapping, mirroring [`sunstone_arch::Level`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingLevel {
    /// Temporal tiling at a memory level.
    Temporal(TemporalLevel),
    /// Spatial unrolling at a fan-out level.
    Spatial(SpatialAssignment),
}

impl MappingLevel {
    /// Per-dimension factors of this level regardless of kind.
    pub fn factors(&self) -> &[u64] {
        match self {
            MappingLevel::Temporal(t) => &t.factors,
            MappingLevel::Spatial(s) => &s.factors,
        }
    }

    /// Mutable access to the factors.
    pub fn factors_mut(&mut self) -> &mut [u64] {
        match self {
            MappingLevel::Temporal(t) => &mut t.factors,
            MappingLevel::Spatial(s) => &mut s.factors,
        }
    }

    /// Returns the temporal level, if this is one.
    pub fn as_temporal(&self) -> Option<&TemporalLevel> {
        match self {
            MappingLevel::Temporal(t) => Some(t),
            MappingLevel::Spatial(_) => None,
        }
    }

    /// Returns the spatial assignment, if this is one.
    pub fn as_spatial(&self) -> Option<&SpatialAssignment> {
        match self {
            MappingLevel::Temporal(_) => None,
            MappingLevel::Spatial(s) => Some(s),
        }
    }
}

/// A complete dataflow mapping: one [`MappingLevel`] per architecture
/// level, innermost first.
///
/// Construct with [`Mapping::streaming`] (a trivially valid starting
/// point) or by assembling levels directly, then check with
/// [`Mapping::validate`](crate::ValidationContext).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    levels: Vec<MappingLevel>,
}

impl Mapping {
    /// Creates a mapping from raw levels. The levels must mirror the
    /// architecture's level list; this is checked by `validate`.
    pub fn from_levels(levels: Vec<MappingLevel>) -> Self {
        Mapping { levels }
    }

    /// The *streaming* mapping: every loop lives at the outermost (DRAM)
    /// temporal level and every inner factor is 1 — the "naive" execution
    /// of Section V-D with no on-chip reuse.
    pub fn streaming(workload: &Workload, arch: &ArchSpec) -> Self {
        let n = workload.num_dims();
        let mut levels: Vec<MappingLevel> = arch
            .levels()
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                Level::Memory(_) => MappingLevel::Temporal(TemporalLevel::unit(LevelId(i), n)),
                Level::Spatial(_) => MappingLevel::Spatial(SpatialAssignment::unit(LevelId(i), n)),
            })
            .collect();
        if let Some(MappingLevel::Temporal(t)) = levels.last_mut() {
            t.factors = workload.dim_sizes();
        }
        Mapping { levels }
    }

    /// The mapping levels, innermost first.
    pub fn levels(&self) -> &[MappingLevel] {
        &self.levels
    }

    /// Mutable access to the levels.
    pub fn levels_mut(&mut self) -> &mut [MappingLevel] {
        &mut self.levels
    }

    /// The level at architecture position `pos` (0 = innermost).
    pub fn level(&self, pos: usize) -> &MappingLevel {
        &self.levels[pos]
    }

    /// Per-dimension tile spanned by all levels at positions `0..=pos`
    /// (temporal and spatial): the tile *resident* in a memory at `pos`.
    pub fn resident_tile(&self, pos: usize, num_dims: usize) -> DimVec {
        let mut tile = DimVec::ones(num_dims);
        self.resident_tile_into(pos, &mut tile);
        tile
    }

    /// Fills `tile` (pre-sized to the dimension count) with the resident
    /// tile at `pos`, without allocating.
    pub fn resident_tile_into(&self, pos: usize, tile: &mut [u64]) {
        tile.fill(1);
        for level in &self.levels[..=pos] {
            for (t, &f) in tile.iter_mut().zip(level.factors()) {
                *t *= f;
            }
        }
    }

    /// Product of every level's factor for dimension `d`; equals the
    /// problem size in a valid mapping.
    pub fn total_factor(&self, d: DimId) -> u64 {
        self.levels.iter().map(|l| l.factors()[d.index()]).product()
    }

    /// Total spatial fan-out used by the mapping (product of all spatial
    /// unroll factors).
    pub fn used_parallelism(&self) -> u64 {
        self.levels
            .iter()
            .filter_map(MappingLevel::as_spatial)
            .map(SpatialAssignment::used_units)
            .product()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, level) in self.levels.iter().enumerate().rev() {
            match level {
                MappingLevel::Temporal(t) => {
                    write!(f, "T{i}[")?;
                    let mut first = true;
                    for &d in t.order.iter().rev() {
                        let factor = t.factors[d.index()];
                        if factor > 1 {
                            if !first {
                                write!(f, " ")?;
                            }
                            write!(f, "d{}:{}", d.index(), factor)?;
                            first = false;
                        }
                    }
                    write!(f, "]")?;
                }
                MappingLevel::Spatial(s) => {
                    write!(f, "S{i}[")?;
                    let mut first = true;
                    for (d, &factor) in s.factors.iter().enumerate() {
                        if factor > 1 {
                            if !first {
                                write!(f, " ")?;
                            }
                            write!(f, "d{d}:{factor}")?;
                            first = false;
                        }
                    }
                    write!(f, "]")?;
                }
            }
            if i > 0 {
                write!(f, " ")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;

    fn conv1d() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 4);
        let c = b.dim("C", 4);
        let p = b.dim("P", 14);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn streaming_mapping_covers_problem() {
        let w = conv1d();
        let arch = presets::conventional();
        let m = Mapping::streaming(&w, &arch);
        assert_eq!(m.levels().len(), arch.num_levels());
        for d in w.dim_ids() {
            assert_eq!(m.total_factor(d), w.dim_size(d));
        }
        assert_eq!(m.used_parallelism(), 1);
    }

    #[test]
    fn resident_tile_accumulates_lower_levels() {
        let w = conv1d();
        let arch = presets::conventional();
        let mut m = Mapping::streaming(&w, &arch);
        // Move K=2, P=7 into L1 (level 0), K=2 onto the grid (level 1).
        m.levels_mut()[0].factors_mut()[0] = 2;
        m.levels_mut()[0].factors_mut()[2] = 7;
        m.levels_mut()[1].factors_mut()[0] = 2;
        m.levels_mut()[3].factors_mut()[0] = 1;
        m.levels_mut()[3].factors_mut()[2] = 2;
        assert_eq!(m.resident_tile(0, 4), vec![2, 1, 7, 1]);
        assert_eq!(m.resident_tile(1, 4), vec![4, 1, 7, 1]);
        assert_eq!(m.resident_tile(3, 4), vec![4, 4, 14, 3]);
        assert_eq!(m.used_parallelism(), 2);
    }

    #[test]
    fn order_outermost_first_reverses() {
        let t = TemporalLevel {
            mem: LevelId(0),
            factors: vec![1; 3],
            order: vec![DimId::from_index(2), DimId::from_index(0), DimId::from_index(1)],
        };
        assert_eq!(
            t.order_outermost_first(),
            vec![DimId::from_index(1), DimId::from_index(0), DimId::from_index(2)]
        );
    }

    #[test]
    fn display_skips_unit_factors() {
        let w = conv1d();
        let arch = presets::conventional();
        let m = Mapping::streaming(&w, &arch);
        let s = m.to_string();
        assert!(s.contains("d0:4"), "outer level shows K factor: {s}");
        assert!(s.contains("T0[]"), "inner levels are empty: {s}");
    }

    #[test]
    fn level_kind_accessors() {
        let t = MappingLevel::Temporal(TemporalLevel::unit(LevelId(0), 2));
        let s = MappingLevel::Spatial(SpatialAssignment::unit(LevelId(1), 2));
        assert!(t.as_temporal().is_some() && t.as_spatial().is_none());
        assert!(s.as_spatial().is_some() && s.as_temporal().is_none());
        assert_eq!(t.factors(), &[1, 1]);
    }
}
