//! Dataflow-mapping representation and validation.
//!
//! A [`Mapping`] assigns the workload's operation space onto an
//! accelerator: for every *memory* level a temporal tile (per-dimension
//! tiling factors plus a loop order) and for every *spatial* level a set of
//! unroll factors. Mapping levels mirror the architecture's level list
//! one-to-one, innermost first.
//!
//! ## Conventions
//!
//! * Loop orders are stored **innermost-first** — `order[0]` is the
//!   innermost loop of that level. (The paper writes orders
//!   outermost-to-innermost; [`TemporalLevel::order_outermost_first`]
//!   converts.)
//! * `factors[d]` is the per-dimension tiling/unroll factor, indexed by
//!   [`sunstone_ir::DimId::index`]. The product over all levels must equal the problem
//!   dimension exactly (equal tiles, as in the paper).
//! * The tile *resident* in memory level ℓ spans the factors of every level
//!   at or below ℓ (spatial levels included — a shared memory serves the
//!   union of its children's tiles).
//!
//! [`ValidationContext::validate`] checks structural agreement with the
//! architecture, exact factorization, spatial fan-out and reduction rules,
//! and per-partition capacity — the same conditions the paper uses to call
//! baseline mappings *invalid* (Figs 7–8).

pub mod constraints;
pub mod dataflows;
pub mod execute;
mod flatten;
mod mapping;
pub mod pretty;
pub mod templates;
mod validate;

pub use constraints::{
    BypassOverride, ConstraintError, DimRef, MappingConstraints, OrderConstraint, TileConstraint,
    UnrollConstraint,
};
pub use flatten::{FlatLoop, FlatNest, LoopKind};
pub use mapping::{Mapping, MappingLevel, SpatialAssignment, TemporalLevel};
pub use templates::DataflowTemplate;
pub use validate::{MappingError, ValidationContext};
