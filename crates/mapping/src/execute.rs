//! Functional execution of mappings on real data.
//!
//! A mapping is only a *schedule*: every valid mapping must compute
//! exactly the workload's einsum, merely in a different order. This
//! module makes that checkable — one of the paper's invalidity classes
//! for baseline tools is "the returned mapping does not correspond to
//! the original computation" (Fig 7 caption).
//!
//! [`execute_reference`] evaluates the einsum directly from the workload
//! definition; [`execute_mapping`] walks the mapping's flattened loop
//! nest (temporal and spatial loops alike), reconstructing each
//! dimension's global index from the per-level counters. For a valid
//! mapping the two outputs are identical: every point of the operation
//! space is visited exactly once. Inputs are filled with deterministic
//! pseudo-random values and arithmetic wraps, so any coverage error
//! (missed or doubled iteration) changes the output with overwhelming
//! probability.
//!
//! Intended for tests on small shapes — the cost is one pass over the
//! full operation space.

use std::num::Wrapping;

use sunstone_ir::{TensorDesc, TensorId, Workload};

use crate::{FlatNest, Mapping};

/// Dense storage for one tensor, row-major over the index-expression
/// extents at full problem size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorData {
    extents: Vec<u64>,
    values: Vec<Wrapping<u64>>,
}

impl TensorData {
    fn new(tensor: &TensorDesc, sizes: &[u64]) -> Self {
        let extents: Vec<u64> = tensor.indices().iter().map(|e| e.extent_of(sizes)).collect();
        let len = extents.iter().product::<u64>() as usize;
        TensorData { extents, values: vec![Wrapping(0); len] }
    }

    /// Deterministic pseudo-random fill (splitmix64 of the address).
    fn fill_random(&mut self, salt: u64) {
        for (i, v) in self.values.iter_mut().enumerate() {
            let mut z = Wrapping(i as u64 ^ salt) + Wrapping(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)) * Wrapping(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)) * Wrapping(0x94d0_49bb_1331_11eb);
            *v = z ^ (z >> 31);
        }
    }

    fn address(&self, tensor: &TensorDesc, dim_values: &[u64]) -> usize {
        let mut addr = 0u64;
        for (expr, &extent) in tensor.indices().iter().zip(&self.extents) {
            let coord: u64 =
                expr.terms().iter().map(|t| t.stride * dim_values[t.dim.index()]).sum();
            debug_assert!(coord < extent);
            addr = addr * extent + coord;
        }
        addr as usize
    }

    /// The raw values (row-major).
    pub fn values(&self) -> &[Wrapping<u64>] {
        &self.values
    }
}

/// Evaluates the einsum directly: for every point of the operation space,
/// `output[...] += Π inputs[...]`. Returns the output tensor data.
pub fn execute_reference(workload: &Workload) -> TensorData {
    let sizes = workload.dim_sizes();
    let inputs = input_data(workload, &sizes);
    let out_id = workload.output();
    let mut output = TensorData::new(workload.tensor(out_id), &sizes);
    for_each_point(&sizes, |dim_values| {
        accumulate(workload, &inputs, &mut output, out_id, dim_values);
    });
    output
}

/// Executes the workload *through a mapping*: iterates the flattened loop
/// nest and reconstructs global indices from per-level counters. For a
/// valid mapping the result equals [`execute_reference`].
pub fn execute_mapping(workload: &Workload, mapping: &Mapping) -> TensorData {
    let sizes = workload.dim_sizes();
    let inputs = input_data(workload, &sizes);
    let out_id = workload.output();
    let mut output = TensorData::new(workload.tensor(out_id), &sizes);

    // Strides: the global index of dim d is Σ_level counter × (product of
    // d-factors at levels below). Build per-loop strides from the flat
    // nest (which is outermost-first; factor-1 loops are dropped and
    // contribute index 0).
    let nest = FlatNest::of(mapping, workload);
    let loops = nest.loops();
    let ndims = workload.num_dims();
    // below[level][dim] = product of factors of levels < level.
    let n_levels = mapping.levels().len();
    let mut below = vec![vec![1u64; ndims]; n_levels + 1];
    for lvl in 0..n_levels {
        let factors = mapping.level(lvl).factors();
        below[lvl + 1] = below[lvl].iter().zip(factors).map(|(b, &f)| b * f).collect();
    }
    let strides: Vec<u64> = loops.iter().map(|l| below[l.arch_pos][l.dim.index()]).collect();

    let mut counters = vec![0u64; loops.len()];
    let mut dim_values = vec![0u64; ndims];
    loop {
        dim_values.iter_mut().for_each(|v| *v = 0);
        for ((l, &c), &s) in loops.iter().zip(&counters).zip(&strides) {
            dim_values[l.dim.index()] += c * s;
        }
        accumulate(workload, &inputs, &mut output, out_id, &dim_values);
        // Odometer.
        let mut i = loops.len();
        loop {
            if i == 0 {
                return output;
            }
            i -= 1;
            counters[i] += 1;
            if counters[i] < loops[i].factor {
                break;
            }
            counters[i] = 0;
        }
    }
}

fn input_data(workload: &Workload, sizes: &[u64]) -> Vec<TensorData> {
    workload
        .tensor_ids()
        .map(|t| {
            let mut data = TensorData::new(workload.tensor(t), sizes);
            if !workload.tensor(t).is_output() {
                data.fill_random(t.index() as u64 + 1);
            }
            data
        })
        .collect()
}

fn accumulate(
    workload: &Workload,
    inputs: &[TensorData],
    output: &mut TensorData,
    out_id: TensorId,
    dim_values: &[u64],
) {
    let mut product = Wrapping(1u64);
    for t in workload.tensor_ids() {
        let tensor = workload.tensor(t);
        if tensor.is_output() {
            continue;
        }
        let addr = inputs[t.index()].address(tensor, dim_values);
        product *= inputs[t.index()].values[addr];
    }
    let out_tensor = workload.tensor(out_id);
    let addr = output.address(out_tensor, dim_values);
    output.values[addr] += product;
}

fn for_each_point(sizes: &[u64], mut f: impl FnMut(&[u64])) {
    let mut values = vec![0u64; sizes.len()];
    loop {
        f(&values);
        let mut i = sizes.len();
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            values[i] += 1;
            if values[i] < sizes[i] {
                break;
            }
            values[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MappingLevel;
    use sunstone_arch::presets;
    use sunstone_ir::DimId;

    fn conv1d(k: u64, c: u64, p: u64, r: u64) -> Workload {
        let mut b = Workload::builder("conv1d");
        let kk = b.dim("K", k);
        let cc = b.dim("C", c);
        let pp = b.dim("P", p);
        let rr = b.dim("R", r);
        b.input("ifmap", [cc.expr(), pp + rr]);
        b.input("weight", [kk.expr(), cc.expr(), rr.expr()]);
        b.output("ofmap", [kk.expr(), pp.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn streaming_mapping_computes_the_einsum() {
        let w = conv1d(4, 4, 8, 3);
        let arch = presets::conventional();
        let reference = execute_reference(&w);
        let executed = execute_mapping(&w, &Mapping::streaming(&w, &arch));
        assert_eq!(reference, executed);
    }

    #[test]
    fn arbitrary_valid_mappings_compute_the_einsum() {
        let w = conv1d(4, 4, 8, 3);
        let d = |i: usize| DimId::from_index(i);
        let arch = presets::conventional();
        let reference = execute_reference(&w);
        // A tiled + spatially unrolled + reordered mapping.
        let mut m = Mapping::streaming(&w, &arch);
        for level in m.levels_mut() {
            level.factors_mut().iter_mut().for_each(|f| *f = 1);
        }
        m.levels_mut()[0].factors_mut().copy_from_slice(&[2, 2, 4, 3]);
        m.levels_mut()[1].factors_mut().copy_from_slice(&[2, 1, 1, 1]);
        m.levels_mut()[2].factors_mut().copy_from_slice(&[1, 2, 1, 1]);
        m.levels_mut()[3].factors_mut().copy_from_slice(&[1, 1, 2, 1]);
        if let MappingLevel::Temporal(t) = &mut m.levels_mut()[0] {
            t.order = vec![d(3), d(1), d(0), d(2)];
        }
        assert_eq!(reference, execute_mapping(&w, &m));
    }

    #[test]
    fn every_loop_order_gives_the_same_result() {
        let w = conv1d(2, 2, 4, 2);
        let arch = presets::conventional();
        let reference = execute_reference(&w);
        let mut dims = [0usize, 1, 2, 3];
        let mut orders = Vec::new();
        permute(&mut dims, 0, &mut orders);
        for order in orders {
            let mut m = Mapping::streaming(&w, &arch);
            if let MappingLevel::Temporal(t) = &mut m.levels_mut()[3] {
                t.order = order.iter().map(|&i| DimId::from_index(i)).collect();
            }
            assert_eq!(reference, execute_mapping(&w, &m), "{order:?}");
        }
    }

    #[test]
    fn a_broken_mapping_is_caught() {
        // Factor products that under-cover a dimension miss iterations;
        // the executor's output then differs from the reference (this is
        // what structural validation prevents).
        let w = conv1d(4, 4, 8, 3);
        let arch = presets::conventional();
        let reference = execute_reference(&w);
        let mut m = Mapping::streaming(&w, &arch);
        let last = m.levels().len() - 1;
        m.levels_mut()[last].factors_mut()[0] = 2; // K covered 2 of 4
        assert_ne!(reference, execute_mapping(&w, &m));
    }

    #[test]
    fn matmul_reference_matches_hand_computation() {
        // 2×2 matmul with tiny values, computed by hand through the
        // pseudo-random fill.
        let mut b = Workload::builder("mm");
        let m = b.dim("M", 2);
        let n = b.dim("N", 2);
        let k = b.dim("K", 2);
        b.input("a", [m.expr(), k.expr()]);
        b.input("b", [k.expr(), n.expr()]);
        b.output("out", [m.expr(), n.expr()]);
        let w = b.build().unwrap();
        let sizes = w.dim_sizes();
        let inputs = input_data(&w, &sizes);
        let reference = execute_reference(&w);
        // out[0,0] = a[0,0]b[0,0] + a[0,1]b[1,0]
        let a = &inputs[0];
        let bt = &inputs[1];
        let expected = a.values()[0] * bt.values()[0] + a.values()[1] * bt.values()[2];
        assert_eq!(reference.values()[0], expected);
    }

    fn permute(dims: &mut [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
        if k == dims.len() {
            out.push(*dims);
            return;
        }
        for i in k..dims.len() {
            dims.swap(k, i);
            permute(dims, k + 1, out);
            dims.swap(k, i);
        }
    }
}
