//! Additional DNN layer families beyond the paper's evaluation set:
//! fully-connected layers and grouped convolutions. Both are expressible
//! in the same IR with no scheduler changes — the versatility claim in
//! practice.

use sunstone_ir::Workload;

use crate::Precision;

/// A fully-connected layer: `out[n,k] = Σ_c in[n,c] × w[k,c]` — a matrix
/// multiplication with DNN naming.
pub fn fully_connected(batch: u64, out_features: u64, in_features: u64) -> Workload {
    let mut b = Workload::builder(format!("fc_{out_features}x{in_features}"));
    let n = b.dim("N", batch);
    let k = b.dim("K", out_features);
    let c = b.dim("C", in_features);
    b.input("ifmap", [n.expr(), c.expr()]);
    b.input("weight", [k.expr(), c.expr()]);
    b.output("ofmap", [n.expr(), k.expr()]);
    b.build().expect("fc layers are valid workloads")
}

/// A grouped convolution: channels are split into `groups` independent
/// convolutions. The group index `G` indexes every tensor, so no
/// cross-group reuse exists — a stress test for reuse inference.
///
/// `k` and `c` are the *per-group* channel counts.
#[allow(clippy::too_many_arguments)]
pub fn grouped_conv(
    batch: u64,
    groups: u64,
    k: u64,
    c: u64,
    p: u64,
    q: u64,
    r: u64,
    s: u64,
    bits: Precision,
) -> Workload {
    let mut b = Workload::builder(format!("gconv_g{groups}"));
    let n = b.dim("N", batch);
    let g = b.dim("G", groups);
    let kk = b.dim("K", k);
    let cc = b.dim("C", c);
    let pp = b.dim("P", p);
    let qq = b.dim("Q", q);
    let rr = b.dim("R", r);
    let ss = b.dim("S", s);
    b.input_bits("ifmap", [n.expr(), g.expr(), cc.expr(), pp + rr, qq + ss], bits.ifmap);
    b.input_bits("weight", [g.expr(), kk.expr(), cc.expr(), rr.expr(), ss.expr()], bits.weight);
    b.output_bits("ofmap", [n.expr(), g.expr(), kk.expr(), pp.expr(), qq.expr()], bits.ofmap);
    b.build().expect("grouped convs are valid workloads")
}

/// A depthwise convolution: `groups = channels`, one filter per channel —
/// the extreme case of [`grouped_conv`] with `k = c = 1`.
pub fn depthwise_conv(
    batch: u64,
    channels: u64,
    p: u64,
    q: u64,
    r: u64,
    s: u64,
    bits: Precision,
) -> Workload {
    grouped_conv(batch, channels, 1, 1, p, q, r, s, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_is_a_matmul_in_disguise() {
        let w = fully_connected(16, 1000, 512);
        assert_eq!(w.num_dims(), 3);
        assert_eq!(w.total_ops(), 16 * 1000 * 512);
        let c = w.dim_by_name("C").unwrap();
        assert_eq!(w.reduction_dims(), w.dim_set(&[c]));
    }

    #[test]
    fn grouped_conv_has_no_cross_group_reuse() {
        let w = grouped_conv(4, 8, 16, 16, 14, 14, 3, 3, Precision::conventional());
        let info = w.reuse_info();
        let g = w.dim_by_name("G").unwrap();
        for (t, r) in info.iter() {
            assert!(
                !r.full_reuse.contains(g),
                "G indexes every tensor, so nothing is reused across it: {}",
                w.tensor(t).name()
            );
        }
    }

    #[test]
    fn depthwise_conv_reuses_only_spatially() {
        let w = depthwise_conv(4, 64, 14, 14, 3, 3, Precision::conventional());
        // Per-group K and C are singleton dims; reuse comes from N/P/Q
        // only (weight across batch and positions, ifmap across nothing
        // chip-wide).
        let info = w.reuse_info();
        let weight = w.tensor_by_name("weight").unwrap();
        let n = w.dim_by_name("N").unwrap();
        let p = w.dim_by_name("P").unwrap();
        assert!(info.of(weight).full_reuse.contains(n));
        assert!(info.of(weight).full_reuse.contains(p));
    }

    #[test]
    fn extra_layers_schedule_end_to_end() {
        use sunstone::{Scheduler, SunstoneConfig};
        use sunstone_arch::presets;
        let arch = presets::conventional();
        let scheduler = Scheduler::new(SunstoneConfig::default());
        for w in [
            fully_connected(16, 256, 256),
            grouped_conv(2, 4, 8, 8, 14, 14, 3, 3, Precision::conventional()),
            depthwise_conv(2, 32, 14, 14, 3, 3, Precision::conventional()),
        ] {
            let r = scheduler.schedule(&w, &arch).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(r.report.edp > 0.0);
        }
    }
}

/// Multi-head attention scores: `out[h,i,j] = Σ_d Q[h,i,d] × K[h,j,d]` —
/// a batched matmul whose reuse pattern differs from single matmul (the
/// head dimension indexes everything, like a grouped conv's groups).
pub fn attention_scores(heads: u64, seq: u64, head_dim: u64) -> Workload {
    let mut b = Workload::builder(format!("attn_scores_h{heads}"));
    let h = b.dim("H", heads);
    let i = b.dim("I", seq);
    let j = b.dim("J", seq);
    let d = b.dim("D", head_dim);
    b.input("Q", [h.expr(), i.expr(), d.expr()]);
    b.input("K", [h.expr(), j.expr(), d.expr()]);
    b.output("out", [h.expr(), i.expr(), j.expr()]);
    b.build().expect("attention scores are a valid workload")
}

/// A transformer feed-forward layer (`tokens × d_model → d_ff`): the
/// dominant matmul of BERT-class models.
pub fn transformer_ffn(tokens: u64, d_model: u64, d_ff: u64) -> Workload {
    let mut b = Workload::builder("ffn");
    let t = b.dim("T", tokens);
    let f = b.dim("F", d_ff);
    let m = b.dim("M", d_model);
    b.input("x", [t.expr(), m.expr()]);
    b.input("weight", [f.expr(), m.expr()]);
    b.output("y", [t.expr(), f.expr()]);
    b.build().expect("ffn is a valid workload")
}

#[cfg(test)]
mod transformer_tests {
    use super::*;
    use sunstone::{Scheduler, SunstoneConfig};
    use sunstone_arch::presets;

    #[test]
    fn attention_reuse_mirrors_grouped_structure() {
        let w = attention_scores(12, 128, 64);
        let info = w.reuse_info();
        let h = w.dim_by_name("H").unwrap();
        for (_, r) in info.iter() {
            assert!(!r.full_reuse.contains(h), "H indexes every tensor");
        }
        // Q is reused across J, K across I, out across D.
        let q = w.tensor_by_name("Q").unwrap();
        let j = w.dim_by_name("J").unwrap();
        assert!(info.of(q).full_reuse.contains(j));
    }

    #[test]
    fn transformer_layers_schedule() {
        let arch = presets::conventional();
        let scheduler = Scheduler::new(SunstoneConfig::default());
        for w in [attention_scores(12, 128, 64), transformer_ffn(128, 768, 3072)] {
            let r = scheduler.schedule(&w, &arch).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(r.mapping.used_parallelism() > 1);
        }
    }
}
