//! The workload suite of the Sunstone paper (Table II and Section V).
//!
//! * [`ConvSpec`] — parameterized 2-D convolutions with optional stride
//!   and asymmetric kernels, convertible to inference or weight-update
//!   ([`ConvSpec::weight_update`]) nested-loop workloads;
//! * [`resnet18_layers`] — the unique convolution layers of ResNet-18,
//!   and [`resnet18_network`] — the full 20-conv sequence with block
//!   repeats (the batch-scheduling dedup input);
//! * [`inception_v3_layers`] — representative Inception-v3 layers,
//!   including the asymmetric 1×7 / 7×1 / 3×1 kernels of Fig 7;
//! * [`tensor`] — the non-DNN tensor algebra of Table II: MTTKRP, TTMc,
//!   SDDMM, MMc, and TCL with shapes derived from the FROSTT /
//!   SuiteSparse instances the paper cites.
//!
//! ## Shape substitution note
//!
//! The paper's analytic evaluation only consumes *loop extents* (its cost
//! model is dense), so sparse-tensor workloads are represented by their
//! mode sizes. We additionally round those sizes to highly composite
//! numbers (multiples of small powers of 2 and 3): the schedulers in this
//! reproduction use exact divisor tilings, and real deployments pad to
//! tile boundaries anyway. Each constant documents the original size.

mod conv;
pub mod extra;
mod inception;
pub mod mobilenet;
mod resnet;
pub mod tensor;

pub use conv::{ConvSpec, Precision};
pub use inception::inception_v3_layers;
pub use resnet::{resnet18_layers, resnet18_network};
