//! Parameterized 2-D convolutions.

use serde::{Deserialize, Serialize};
use sunstone_ir::Workload;

/// Element widths for the three convolution datatypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Precision {
    /// Bits per ifmap element.
    pub ifmap: u32,
    /// Bits per weight element.
    pub weight: u32,
    /// Bits per ofmap element.
    pub ofmap: u32,
}

impl Precision {
    /// The conventional accelerator's 16-bit datapath (Table IV).
    pub fn conventional() -> Self {
        Precision { ifmap: 16, weight: 16, ofmap: 16 }
    }

    /// The Simba-like accelerator's mixed precision (Table IV): 8-bit
    /// operands, 24-bit accumulations.
    pub fn simba() -> Self {
        Precision { ifmap: 8, weight: 8, ofmap: 24 }
    }
}

/// A 2-D convolution layer: `K` filters of `C × R × S` over a batch of
/// `N` inputs producing `P × Q` outputs with the given stride.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Layer name, e.g. `"conv3_1"`.
    pub name: String,
    /// Batch size.
    pub n: u64,
    /// Output channels (filters).
    pub k: u64,
    /// Input channels.
    pub c: u64,
    /// Output height.
    pub p: u64,
    /// Output width.
    pub q: u64,
    /// Kernel height.
    pub r: u64,
    /// Kernel width.
    pub s: u64,
    /// Convolution stride (both axes).
    pub stride: u64,
}

impl ConvSpec {
    /// Creates a layer spec.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        n: u64,
        k: u64,
        c: u64,
        p: u64,
        q: u64,
        r: u64,
        s: u64,
        stride: u64,
    ) -> Self {
        ConvSpec { name: name.into(), n, k, c, p, q, r, s, stride }
    }

    /// Returns `true` for asymmetric kernels (e.g. 1×7), which some
    /// baseline mappers cannot handle (Fig 7 of the paper).
    pub fn is_asymmetric(&self) -> bool {
        self.r != self.s
    }

    /// Total MACs of the layer.
    pub fn macs(&self) -> u64 {
        self.n * self.k * self.c * self.p * self.q * self.r * self.s
    }

    /// The inference workload:
    /// `ofmap[n,k,p,q] = Σ_{c,r,s} ifmap[n,c,s·p+r,s·q+s] × w[k,c,r,s]`.
    pub fn inference(&self, bits: Precision) -> Workload {
        let mut b = Workload::builder(self.name.clone());
        let n = b.dim("N", self.n);
        let k = b.dim("K", self.k);
        let c = b.dim("C", self.c);
        let p = b.dim("P", self.p);
        let q = b.dim("Q", self.q);
        let r = b.dim("R", self.r);
        let s = b.dim("S", self.s);
        b.input_bits(
            "ifmap",
            [n.expr(), c.expr(), p.strided(self.stride) + r, q.strided(self.stride) + s],
            bits.ifmap,
        );
        b.input_bits("weight", [k.expr(), c.expr(), r.expr(), s.expr()], bits.weight);
        b.output_bits("ofmap", [n.expr(), k.expr(), p.expr(), q.expr()], bits.ofmap);
        b.build().expect("conv specs are valid workloads")
    }

    /// The weight-update (training back-propagation) workload of Fig 7:
    /// `dW[k,c,r,s] = Σ_{n,p,q} dout[n,k,p,q] × ifmap[n,c,p+r,q+s]`.
    ///
    /// The output is the weight gradient; batch and output pixels are
    /// reduction dimensions, giving a very different reuse pattern from
    /// inference.
    pub fn weight_update(&self, bits: Precision) -> Workload {
        let mut b = Workload::builder(format!("{}_wu", self.name));
        let n = b.dim("N", self.n);
        let k = b.dim("K", self.k);
        let c = b.dim("C", self.c);
        let p = b.dim("P", self.p);
        let q = b.dim("Q", self.q);
        let r = b.dim("R", self.r);
        let s = b.dim("S", self.s);
        b.input_bits("dout", [n.expr(), k.expr(), p.expr(), q.expr()], bits.ofmap);
        b.input_bits(
            "ifmap",
            [n.expr(), c.expr(), p.strided(self.stride) + r, q.strided(self.stride) + s],
            bits.ifmap,
        );
        b.output_bits("dweight", [k.expr(), c.expr(), r.expr(), s.expr()], bits.weight.max(16));
        b.build().expect("conv specs are valid workloads")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvSpec {
        ConvSpec::new("test", 16, 64, 32, 28, 28, 3, 3, 1)
    }

    #[test]
    fn inference_has_seven_dims_and_three_tensors() {
        let w = layer().inference(Precision::conventional());
        assert_eq!(w.num_dims(), 7);
        assert_eq!(w.num_tensors(), 3);
        assert_eq!(w.total_ops(), layer().macs());
        let out = w.tensor(w.output());
        assert_eq!(out.name(), "ofmap");
    }

    #[test]
    fn weight_update_reduces_over_batch_and_pixels() {
        let w = layer().weight_update(Precision::conventional());
        let n = w.dim_by_name("N").unwrap();
        let p = w.dim_by_name("P").unwrap();
        let q = w.dim_by_name("Q").unwrap();
        assert_eq!(w.reduction_dims(), w.dim_set(&[n, p, q]));
        assert_eq!(w.tensor(w.output()).name(), "dweight");
    }

    #[test]
    fn strided_conv_shrinks_footprint_math() {
        let spec = ConvSpec::new("s2", 1, 8, 8, 14, 14, 3, 3, 2);
        let w = spec.inference(Precision::conventional());
        let ifmap = w.tensor(w.tensor_by_name("ifmap").unwrap());
        // Full tile: H = 2·(14−1) + 3 = 29 per axis.
        let tile = w.dim_sizes();
        assert_eq!(ifmap.footprint(&tile), 8 * 29 * 29);
    }

    #[test]
    fn asymmetric_detection() {
        assert!(ConvSpec::new("1x7", 1, 8, 8, 17, 17, 1, 7, 1).is_asymmetric());
        assert!(!layer().is_asymmetric());
    }

    #[test]
    fn simba_precision_propagates() {
        let w = layer().inference(Precision::simba());
        assert_eq!(w.tensor(w.tensor_by_name("ifmap").unwrap()).bits(), 8);
        assert_eq!(w.tensor(w.output()).bits(), 24);
    }
}
