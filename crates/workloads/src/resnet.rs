//! ResNet-18 convolution layers (He et al., CVPR 2016).

use crate::ConvSpec;

/// The unique convolution layers of ResNet-18 at 224×224 input, with the
/// given batch size. Repeated blocks are listed once (their multiplicity
/// does not change per-layer scheduling).
///
/// The input-channel count of the stem (3) is padded to 4 so the divisor
/// tilings used throughout this reproduction stay exact.
pub fn resnet18_layers(batch: u64) -> Vec<ConvSpec> {
    let n = batch;
    vec![
        ConvSpec::new("conv1", n, 64, 4, 112, 112, 7, 7, 2),
        ConvSpec::new("conv2_x", n, 64, 64, 56, 56, 3, 3, 1),
        ConvSpec::new("conv3_1", n, 128, 64, 28, 28, 3, 3, 2),
        ConvSpec::new("conv3_x", n, 128, 128, 28, 28, 3, 3, 1),
        ConvSpec::new("conv3_ds", n, 128, 64, 28, 28, 1, 1, 2),
        ConvSpec::new("conv4_1", n, 256, 128, 14, 14, 3, 3, 2),
        ConvSpec::new("conv4_x", n, 256, 256, 14, 14, 3, 3, 1),
        ConvSpec::new("conv4_ds", n, 256, 128, 14, 14, 1, 1, 2),
        ConvSpec::new("conv5_1", n, 512, 256, 7, 7, 3, 3, 2),
        ConvSpec::new("conv5_x", n, 512, 512, 7, 7, 3, 3, 1),
        ConvSpec::new("conv5_ds", n, 512, 256, 7, 7, 1, 1, 2),
    ]
}

/// The full ResNet-18 convolution sequence at 224×224 input, **with**
/// block repeats: 20 convolutions over the 11 unique shapes of
/// [`resnet18_layers`]. Names are per occurrence (`conv2_x/0` …), shapes
/// repeat — the input to session batch scheduling, whose shape dedup
/// makes the repeats free.
pub fn resnet18_network(batch: u64) -> Vec<ConvSpec> {
    let unique = resnet18_layers(batch);
    let spec = |name: &str| unique.iter().find(|l| l.name == name).expect("known layer").clone();
    let mut net = vec![spec("conv1")];
    // conv2 stage: two basic blocks, two 3×3 convs each, all one shape.
    for i in 0..4 {
        let mut l = spec("conv2_x");
        l.name = format!("conv2_x/{i}");
        net.push(l);
    }
    // conv3..conv5 stages: a strided conv + downsample projection, then
    // three more convs of the stage's square shape.
    for stage in ["conv3", "conv4", "conv5"] {
        net.push(spec(&format!("{stage}_1")));
        net.push(spec(&format!("{stage}_ds")));
        for i in 0..3 {
            let mut l = spec(&format!("{stage}_x"));
            l.name = format!("{stage}_x/{i}");
            net.push(l);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precision;

    #[test]
    fn has_the_expected_layer_set() {
        let layers = resnet18_layers(16);
        assert_eq!(layers.len(), 11);
        assert!(layers.iter().all(|l| l.n == 16));
        // Channel growth doubles per stage.
        let conv5 = layers.iter().find(|l| l.name == "conv5_x").unwrap();
        assert_eq!((conv5.k, conv5.c, conv5.p), (512, 512, 7));
    }

    #[test]
    fn all_layers_build_valid_workloads() {
        for l in resnet18_layers(16) {
            let w = l.inference(Precision::conventional());
            assert_eq!(w.total_ops(), l.macs());
            let wu = l.weight_update(Precision::conventional());
            assert_eq!(wu.total_ops(), l.macs());
        }
    }

    #[test]
    fn macs_are_in_the_published_ballpark() {
        // ResNet-18 is ~1.8 GMACs per image; our unique-layer list (not
        // counting block repeats) covers a large fraction of that.
        let total: u64 = resnet18_layers(1).iter().map(ConvSpec::macs).sum();
        assert!(total > 500_000_000 && total < 2_500_000_000, "{total}");
    }
}
