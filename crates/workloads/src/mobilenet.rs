//! MobileNetV2 inverted-residual layers (Sandler et al., CVPR 2018).
//!
//! Each block is expand (1×1) → depthwise (3×3) → project (1×1); the
//! depthwise stage uses [`crate::extra::grouped_conv`] with one channel
//! per group — a reuse pattern none of the paper's workloads exercise
//! (no cross-channel reuse at all), making it a good versatility probe.

use sunstone_ir::Workload;

use crate::extra::{depthwise_conv, grouped_conv};
use crate::{ConvSpec, Precision};

/// One inverted-residual block's three stages as workloads.
#[derive(Debug, Clone)]
pub struct InvertedResidual {
    /// Block name, e.g. `"block3"`.
    pub name: String,
    /// 1×1 expansion convolution.
    pub expand: ConvSpec,
    /// Depthwise 3×3 stage parameters: (batch, channels, p, q, stride).
    pub depthwise: (u64, u64, u64, u64, u64),
    /// 1×1 projection convolution.
    pub project: ConvSpec,
}

impl InvertedResidual {
    /// The three stages as schedulable workloads (expand, depthwise,
    /// project).
    pub fn workloads(&self, bits: Precision) -> [Workload; 3] {
        let (n, ch, p, q, stride) = self.depthwise;
        let dw = if stride == 1 {
            depthwise_conv(n, ch, p, q, 3, 3, bits)
        } else {
            grouped_conv(n, ch, 1, 1, p, q, 3, 3, bits)
        };
        [self.expand.inference(bits), dw, self.project.inference(bits)]
    }
}

/// Representative MobileNetV2 inverted-residual blocks at the given batch
/// size (spatial sizes rounded to composite numbers, channel counts are
/// the paper's).
pub fn mobilenet_v2_blocks(batch: u64) -> Vec<InvertedResidual> {
    let n = batch;
    let block = |name: &str, cin: u64, expanded: u64, cout: u64, pq: u64| InvertedResidual {
        name: name.to_string(),
        expand: ConvSpec::new(format!("{name}_expand"), n, expanded, cin, pq, pq, 1, 1, 1),
        depthwise: (n, expanded, pq, pq, 1),
        project: ConvSpec::new(format!("{name}_project"), n, cout, expanded, pq, pq, 1, 1, 1),
    };
    vec![
        block("block2", 24, 144, 24, 56),
        block("block4", 32, 192, 32, 28),
        block("block8", 64, 384, 64, 14),
        block("block12", 96, 576, 96, 14),
        block("block15", 160, 960, 160, 8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone::{Scheduler, SunstoneConfig};
    use sunstone_arch::presets;

    #[test]
    fn blocks_build_all_three_stages() {
        for b in mobilenet_v2_blocks(4) {
            let [expand, dw, project] = b.workloads(Precision::conventional());
            assert_eq!(expand.num_dims(), 7);
            assert_eq!(dw.num_dims(), 8, "depthwise adds the group dim");
            assert_eq!(project.num_dims(), 7);
        }
    }

    #[test]
    fn depthwise_stage_schedules_despite_no_channel_reuse() {
        let arch = presets::conventional();
        let scheduler = Scheduler::new(SunstoneConfig::default());
        let b = &mobilenet_v2_blocks(4)[2]; // block8
        let [expand, dw, project] = b.workloads(Precision::conventional());
        for w in [expand, dw, project] {
            let r = scheduler.schedule(&w, &arch).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(r.mapping.used_parallelism() > 1, "{}", w.name());
        }
    }

    #[test]
    fn depthwise_is_bandwidth_heavier_than_pointwise() {
        // Depthwise convs have far less reuse per byte: the scheduler
        // cannot hide that, so its energy-per-MAC must be higher than the
        // expand stage's.
        let arch = presets::conventional();
        let scheduler = Scheduler::new(SunstoneConfig::default());
        let b = &mobilenet_v2_blocks(4)[2];
        let [expand, dw, _] = b.workloads(Precision::conventional());
        let re = scheduler.schedule(&expand, &arch).expect("schedules");
        let rd = scheduler.schedule(&dw, &arch).expect("schedules");
        let per_mac =
            |r: &sunstone::ScheduleResult, w: &Workload| r.report.energy_pj / w.total_ops() as f64;
        assert!(
            per_mac(&rd, &dw) > per_mac(&re, &expand),
            "dw {} vs expand {}",
            per_mac(&rd, &dw),
            per_mac(&re, &expand)
        );
    }
}
