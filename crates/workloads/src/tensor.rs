//! Non-DNN tensor-algebra workloads (Table II of the paper).
//!
//! Shapes follow the instances the paper cites — FROSTT tensors for the
//! decomposition kernels and SuiteSparse matrices for SDDMM — with mode
//! sizes rounded to highly composite numbers (see the crate-level
//! substitution note). The original sizes are given next to each constant.

use sunstone_ir::Workload;

/// A 3-mode tensor shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape3(pub u64, pub u64, pub u64);

/// FROSTT `nell-2` (12092 × 9184 × 28818), rounded.
pub const NELL2: Shape3 = Shape3(12288, 9216, 28672);

/// FROSTT `netflix` (480189 × 17770 × 2182), rounded.
pub const NETFLIX: Shape3 = Shape3(491520, 17920, 2176);

/// The paper's `poisson1` 3-D tensor; a cubic 3-D Poisson-grid shape.
pub const POISSON1: Shape3 = Shape3(3072, 3072, 3072);

/// SuiteSparse `bcsstk17` (10974 × 10974), rounded.
pub const BCSSTK17: u64 = 10752;

/// SuiteSparse `cant` (62451 × 62451), rounded.
pub const CANT: u64 = 62464;

/// Matricized tensor times Khatri-Rao product (CP decomposition):
/// `out[i,j] = Σ_{k,l} A[i,k,l] × B[k,j] × C[l,j]`, rank `j`.
///
/// The paper evaluates rank 32 (Fig 6).
pub fn mttkrp(shape: Shape3, rank: u64) -> Workload {
    let Shape3(si, sk, sl) = shape;
    let mut b = Workload::builder(format!("mttkrp_r{rank}"));
    let i = b.dim("I", si);
    let j = b.dim("J", rank);
    let k = b.dim("K", sk);
    let l = b.dim("L", sl);
    b.input("A", [i.expr(), k.expr(), l.expr()]);
    b.input("B", [k.expr(), j.expr()]);
    b.input("C", [l.expr(), j.expr()]);
    b.output("out", [i.expr(), j.expr()]);
    b.build().expect("mttkrp is a valid workload")
}

/// Tensor-times-matrix chain (Tucker decomposition):
/// `out[i,l,m] = Σ_{j,k} A[i,j,k] × B[j,l] × C[k,m]`, rank `l = m`.
///
/// The paper evaluates rank 8 (Fig 6).
pub fn ttmc(shape: Shape3, rank: u64) -> Workload {
    let Shape3(si, sj, sk) = shape;
    let mut b = Workload::builder(format!("ttmc_r{rank}"));
    let i = b.dim("I", si);
    let j = b.dim("J", sj);
    let k = b.dim("K", sk);
    let l = b.dim("L", rank);
    let m = b.dim("M", rank);
    b.input("A", [i.expr(), j.expr(), k.expr()]);
    b.input("B", [j.expr(), l.expr()]);
    b.input("C", [k.expr(), m.expr()]);
    b.output("out", [i.expr(), l.expr(), m.expr()]);
    b.build().expect("ttmc is a valid workload")
}

/// Sampled dense-dense matrix multiplication (alternating least squares):
/// `out[i,j] = A[i,j] × Σ_k B[i,k] × C[k,j]`, rank `k`.
///
/// The paper evaluates rank 512 (Fig 6).
pub fn sddmm(side: u64, rank: u64) -> Workload {
    let mut b = Workload::builder(format!("sddmm_r{rank}"));
    let i = b.dim("I", side);
    let j = b.dim("J", side);
    let k = b.dim("K", rank);
    b.input("A", [i.expr(), j.expr()]);
    b.input("B", [i.expr(), k.expr()]);
    b.input("C", [k.expr(), j.expr()]);
    b.output("out", [i.expr(), j.expr()]);
    b.build().expect("sddmm is a valid workload")
}

/// Matrix-multiplication chain (transformer attention):
/// `out[i,l] = Σ_{j,k} A[i,j] × B[j,k] × C[k,l]`.
///
/// Defaults model one attention head: sequence 512, head width 64.
pub fn mmc(i: u64, j: u64, k: u64, l: u64) -> Workload {
    let mut b = Workload::builder("mmc");
    let di = b.dim("I", i);
    let dj = b.dim("J", j);
    let dk = b.dim("K", k);
    let dl = b.dim("L", l);
    b.input("A", [di.expr(), dj.expr()]);
    b.input("B", [dj.expr(), dk.expr()]);
    b.input("C", [dk.expr(), dl.expr()]);
    b.output("out", [di.expr(), dl.expr()]);
    b.build().expect("mmc is a valid workload")
}

/// The attention-model MMc instance of Table II.
pub fn attention_mmc() -> Workload {
    mmc(512, 512, 64, 512)
}

/// Tensor contraction layer (Kossaifi et al.):
/// `out[l,m,n] = Σ_{i,j,k} A[i,j,k] × B[i,l] × C[j,m] × D[k,n]`.
///
/// Defaults model the AlexNet final activation (256×6×6, padded to
/// 256×8×8) contracted to rank 64 per mode.
pub fn tcl(modes: Shape3, ranks: Shape3) -> Workload {
    let Shape3(si, sj, sk) = modes;
    let Shape3(rl, rm, rn) = ranks;
    let mut b = Workload::builder("tcl");
    let i = b.dim("I", si);
    let j = b.dim("J", sj);
    let k = b.dim("K", sk);
    let l = b.dim("L", rl);
    let m = b.dim("M", rm);
    let n = b.dim("N", rn);
    b.input("A", [i.expr(), j.expr(), k.expr()]);
    b.input("B", [i.expr(), l.expr()]);
    b.input("C", [j.expr(), m.expr()]);
    b.input("D", [k.expr(), n.expr()]);
    b.output("out", [l.expr(), m.expr(), n.expr()]);
    b.build().expect("tcl is a valid workload")
}

/// The AlexNet TCL instance of Table II.
pub fn alexnet_tcl() -> Workload {
    tcl(Shape3(256, 8, 8), Shape3(64, 4, 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttkrp_structure() {
        let w = mttkrp(NELL2, 32);
        assert_eq!(w.num_dims(), 4);
        assert_eq!(w.num_tensors(), 4, "three inputs and the output");
        let k = w.dim_by_name("K").unwrap();
        let l = w.dim_by_name("L").unwrap();
        assert_eq!(w.reduction_dims(), w.dim_set(&[k, l]));
    }

    #[test]
    fn ttmc_output_is_rank_expanded() {
        let w = ttmc(POISSON1, 8);
        let out = w.tensor(w.output());
        assert_eq!(out.rank(), 3);
        assert_eq!(w.dim_size(w.dim_by_name("L").unwrap()), 8);
    }

    #[test]
    fn sddmm_has_elementwise_scaling_input() {
        let w = sddmm(BCSSTK17, 512);
        let a = w.tensor(w.tensor_by_name("A").unwrap());
        let out = w.tensor(w.output());
        assert_eq!(a.indexing_dims(), out.indexing_dims(), "A is indexed like out");
    }

    #[test]
    fn mmc_and_tcl_build() {
        assert_eq!(attention_mmc().num_dims(), 4);
        let t = alexnet_tcl();
        assert_eq!(t.num_dims(), 6);
        assert_eq!(t.num_tensors(), 5);
    }

    #[test]
    fn rounded_shapes_are_highly_composite() {
        for v in [NELL2.0, NELL2.1, NELL2.2, NETFLIX.0, NETFLIX.1, NETFLIX.2, BCSSTK17, CANT] {
            let divisors = sunstone::tiling::sorted_divisors(v);
            assert!(divisors.len() >= 10, "{v} has {} divisors", divisors.len());
        }
    }

    #[test]
    fn workloads_have_distinct_reuse_patterns() {
        // The paper's versatility claim rests on differing reuse; check
        // MTTKRP and SDDMM are not reuse-isomorphic.
        let m = mttkrp(NELL2, 32);
        let s = sddmm(BCSSTK17, 512);
        let mr = m.reuse_info();
        let sr = s.reuse_info();
        let m_profile: Vec<usize> = mr.iter().map(|(_, r)| r.full_reuse.len()).collect();
        let s_profile: Vec<usize> = sr.iter().map(|(_, r)| r.full_reuse.len()).collect();
        assert_ne!(m_profile, s_profile);
    }
}
