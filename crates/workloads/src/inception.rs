//! Representative Inception-v3 convolution layers (Szegedy et al., CVPR
//! 2016), including the asymmetric 1×7 / 7×1 / 3×1 factorized kernels
//! that break symmetric-convolution mappers (Fig 7 of the paper).
//!
//! Spatial grid sizes are rounded to nearby composite numbers
//! (149→144, 73→72, 35→36, 17→16) so exact divisor tilings exist; see the
//! crate-level substitution note.

use crate::ConvSpec;

/// Representative Inception-v3 layers at the given batch size.
pub fn inception_v3_layers(batch: u64) -> Vec<ConvSpec> {
    let n = batch;
    vec![
        // Stem (input channels padded 3→4).
        ConvSpec::new("conv1_3x3_s2", n, 32, 4, 144, 144, 3, 3, 2),
        ConvSpec::new("conv2_3x3", n, 32, 32, 144, 144, 3, 3, 1),
        // 35×35 inception blocks.
        ConvSpec::new("1x1_mid", n, 64, 288, 36, 36, 1, 1, 1),
        ConvSpec::new("5x5_mid", n, 64, 48, 36, 36, 5, 5, 1),
        ConvSpec::new("3x3_mid", n, 96, 96, 36, 36, 3, 3, 1),
        // 17×17 factorized blocks (asymmetric kernels).
        ConvSpec::new("1x7_deep", n, 128, 128, 16, 16, 1, 7, 1),
        ConvSpec::new("7x1_deep", n, 128, 128, 16, 16, 7, 1, 1),
        // 8×8 factorized blocks.
        ConvSpec::new("3x1_deep", n, 384, 384, 8, 8, 3, 1, 1),
        ConvSpec::new("1x3_deep", n, 384, 384, 8, 8, 1, 3, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precision;

    #[test]
    fn includes_the_asymmetric_layers_of_fig7() {
        let layers = inception_v3_layers(16);
        let asym: Vec<&str> =
            layers.iter().filter(|l| l.is_asymmetric()).map(|l| l.name.as_str()).collect();
        assert!(asym.contains(&"1x7_deep"));
        assert!(asym.contains(&"7x1_deep"));
        assert!(asym.contains(&"3x1_deep"));
        assert_eq!(asym.len(), 4);
    }

    #[test]
    fn all_layers_build_weight_update_workloads() {
        for l in inception_v3_layers(16) {
            let w = l.weight_update(Precision::conventional());
            assert_eq!(w.total_ops(), l.macs());
            assert_eq!(w.num_dims(), 7);
        }
    }
}
