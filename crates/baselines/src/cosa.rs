//! A CoSA-like mapper (Huang et al., ISCA 2021): one-shot constrained
//! optimization by linear relaxation.
//!
//! CoSA formulates scheduling as a mixed-integer program over the *prime
//! factors* of each dimension, with a log-linear (sums of logs)
//! approximation of buffer footprints so an off-the-shelf linear solver
//! applies. This reproduction keeps the one-shot, log-linear character
//! with a greedy assignment in the same relaxed space:
//!
//! * prime factors are placed innermost-first — spatial fabrics first
//!   (maximizing utilization), then each buffer level until its
//!   *approximate* capacity is reached, and the remainder at DRAM;
//! * the capacity approximation sums per-dimension logs and **ignores
//!   sliding-window halos** (the `+R−1` terms are non-linear), exactly
//!   the relaxation error the paper blames for CoSA's invalid mappings:
//!   "one or more tiles did not fit in their designated memories"
//!   (Section V-B3, 60% invalid in Table I).
//!
//! The result is produced in one pass (no search), so it is very fast —
//! faster than Sunstone, as in Fig 8b — but frequently invalid or
//! suboptimal.

use std::time::Instant;

use sunstone_arch::{ArchSpec, Binding, Level, LevelId};
use sunstone_ir::Workload;
use sunstone_mapping::{Mapping, MappingLevel, ValidationContext};
use sunstone_model::CostModel;

use crate::{MapOutcome, MapStats, Mapper};

/// The CoSA-like one-shot mapper.
#[derive(Debug, Clone, Default)]
pub struct CosaMapper {
    _private: (),
}

impl CosaMapper {
    /// Creates the mapper.
    pub fn new() -> Self {
        CosaMapper::default()
    }
}

impl Mapper for CosaMapper {
    fn name(&self) -> &str {
        "CoSA"
    }

    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome {
        let start = Instant::now();
        let mut stats = MapStats { evaluated: 1, ..MapStats::default() };
        let binding = match Binding::resolve(arch, workload) {
            Ok(b) => b,
            Err(e) => return MapOutcome::invalid(self.name(), e.to_string(), stats),
        };
        let mapping = self.solve(workload, arch, &binding);
        let ctx = ValidationContext::new(workload, arch, &binding);
        stats.elapsed = start.elapsed();
        match ctx.validate(&mapping) {
            Ok(()) => {
                let model = CostModel::new(workload, arch, &binding);
                let report = model.evaluate_unchecked(&mapping);
                MapOutcome::valid(self.name(), mapping, report, stats)
            }
            Err(e) => {
                stats.invalid = 1;
                MapOutcome::invalid(
                    self.name(),
                    format!("linear relaxation produced an infeasible mapping: {e}"),
                    stats,
                )
            }
        }
    }
}

impl CosaMapper {
    fn solve(&self, workload: &Workload, arch: &ArchSpec, binding: &Binding) -> Mapping {
        let ndims = workload.num_dims();
        let sizes = workload.dim_sizes();
        let mut mapping = Mapping::streaming(workload, arch);
        for level in mapping.levels_mut() {
            level.factors_mut().iter_mut().for_each(|f| *f = 1);
        }
        // Remaining prime factors of each dimension, largest first so big
        // factors land innermost (CoSA's utilization term dominates).
        let mut primes: Vec<Vec<u64>> = sizes
            .iter()
            .map(|&s| {
                let mut f = prime_factors(s);
                f.sort_unstable_by(|a, b| b.cmp(a));
                f
            })
            .collect();

        let last = arch.num_levels() - 1;
        for pos in 0..last {
            match arch.level(LevelId(pos)) {
                Level::Spatial(fabric) => {
                    // Fill the fabric round-robin across dimensions.
                    let mut used = 1u64;
                    let mut progress = true;
                    while progress {
                        progress = false;
                        for (d, pf) in primes.iter_mut().enumerate() {
                            if !fabric.allow_reduction
                                && workload
                                    .reduction_dims()
                                    .contains(sunstone_ir::DimId::from_index(d))
                            {
                                continue;
                            }
                            if let Some(&p) = pf.last() {
                                if used * p <= fabric.units {
                                    pf.pop();
                                    used *= p;
                                    mapping.levels_mut()[pos].factors_mut()[d] *= p;
                                    progress = true;
                                }
                            }
                        }
                    }
                }
                Level::Memory(mem) => {
                    // Approximate capacity in the relaxed (log-linear)
                    // space, per buffer partition: per-tensor footprint ≈
                    // product of tile sizes over *single* dimensions of
                    // each index expression — compound (sliding-window)
                    // expressions contribute only their first dimension,
                    // dropping the halo. That dropped halo is exactly the
                    // relaxation error that later fails validation.
                    // Only dimensions indexing a tensor *stored* at this
                    // level belong here; loops over other dimensions give
                    // the level no reuse and are placed higher.
                    let mut placeable = sunstone_ir::DimSet::EMPTY;
                    for t in workload.tensor_ids() {
                        if binding.partition_of(LevelId(pos), t).is_some() {
                            placeable = placeable.union(workload.tensor(t).indexing_dims());
                        }
                    }
                    let mut progress = true;
                    while progress {
                        progress = false;
                        for d in placeable.iter().map(|d| d.index()) {
                            if let Some(&p) = primes[d].last() {
                                let mut trial = mapping.resident_tile(pos, ndims);
                                trial[d] *= p;
                                if approx_fits(workload, binding, LevelId(pos), mem, &trial) {
                                    primes[d].pop();
                                    mapping.levels_mut()[pos].factors_mut()[d] *= p;
                                    progress = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Remainder at DRAM; reduction dims innermost everywhere (CoSA's
        // psum-traffic heuristic).
        for (d, pf) in primes.iter().enumerate() {
            let rest: u64 = pf.iter().product();
            mapping.levels_mut()[last].factors_mut()[d] *= rest;
        }
        let reductions = workload.reduction_dims();
        for level in mapping.levels_mut() {
            if let MappingLevel::Temporal(t) = level {
                t.order.sort_by_key(|d| (!reductions.contains(*d)) as u8);
            }
        }
        mapping
    }
}

/// The relaxed per-partition capacity check: halos of compound
/// (sliding-window) expressions are dropped, which is precisely where the
/// relaxation under-counts.
fn approx_fits(
    workload: &Workload,
    binding: &Binding,
    level: LevelId,
    mem: &sunstone_arch::MemoryLevel,
    tile: &[u64],
) -> bool {
    let mut needed = vec![0u64; mem.partitions.len()];
    for t in workload.tensor_ids() {
        let Some(pid) = binding.partition_of(level, t) else { continue };
        let tensor = workload.tensor(t);
        let mut words = 1u64;
        for expr in tensor.indices() {
            let first = expr.terms().first().expect("expressions are non-empty");
            words *= tile[first.dim.index()];
        }
        needed[pid.0] += words * u64::from(tensor.bits()).div_ceil(8);
    }
    mem.partitions.iter().zip(&needed).all(|(p, &b)| p.capacity.fits(b))
}

fn prime_factors(mut v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= v {
        while v.is_multiple_of(p) {
            out.push(p);
            v /= p;
        }
        p += 1;
    }
    if v > 1 {
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;
    use sunstone_workloads::{resnet18_layers, ConvSpec, Precision};

    #[test]
    fn prime_factorization() {
        assert_eq!(prime_factors(12), vec![2, 2, 3]);
        assert_eq!(prime_factors(7), vec![7]);
        assert_eq!(prime_factors(1), Vec::<u64>::new());
    }

    #[test]
    fn one_shot_is_fast_and_structurally_sound() {
        let w = ConvSpec::new("t", 2, 64, 64, 14, 14, 3, 3, 1).inference(Precision::conventional());
        let arch = presets::conventional();
        let out = CosaMapper::new().map(&w, &arch);
        assert_eq!(out.stats.evaluated, 1, "one shot");
        // Whatever the verdict, the solve covered the problem exactly.
        if let Some(m) = &out.mapping {
            for d in w.dim_ids() {
                assert_eq!(m.total_factor(d), w.dim_size(d));
            }
        }
    }

    #[test]
    fn produces_some_invalid_mappings_on_simba() {
        // The paper reports CoSA returning invalid mappings most of the
        // time on the Simba-like hierarchy; at least one ResNet layer
        // must trip the relaxation here.
        let arch = presets::simba_like();
        let mut invalid = 0;
        let mut total = 0;
        for layer in resnet18_layers(16) {
            let w = layer.inference(Precision::simba());
            let out = CosaMapper::new().map(&w, &arch);
            total += 1;
            if !out.is_valid() {
                invalid += 1;
            }
        }
        assert!(invalid > 0, "relaxation error must show up ({invalid}/{total})");
    }

    #[test]
    fn valid_results_carry_reports() {
        let w = ConvSpec::new("t", 2, 32, 32, 28, 28, 3, 3, 1).inference(Precision::conventional());
        let out = CosaMapper::new().map(&w, &presets::conventional());
        if out.is_valid() {
            assert!(out.edp().unwrap() > 0.0);
        } else {
            assert!(out.invalid_reason.is_some());
        }
    }
}
