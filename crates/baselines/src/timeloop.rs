//! A Timeloop-like mapper: undirected random search with `timeout` /
//! `victory_condition` termination (Parashar et al., ISPASS 2019;
//! hyperparameters from Table V of the Sunstone paper).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sunstone::tiling::sorted_divisors;
use sunstone_arch::{ArchSpec, Binding, Level};
use sunstone_ir::Workload;
use sunstone_mapping::{Mapping, MappingLevel, ValidationContext};
use sunstone_model::{CostModel, CostReport};

use crate::{MapOutcome, MapStats, Mapper};

/// Termination hyperparameters (Table V).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeloopConfig {
    /// Consecutive invalid mappings before a search thread gives up.
    pub timeout: u64,
    /// Consecutive valid-but-not-better mappings before a thread declares
    /// victory.
    pub victory_condition: u64,
    /// Worker threads (0 = available parallelism; the paper uses 8).
    pub threads: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Wall-clock cap; the paper terminates Timeloop after one hour per
    /// layer.
    pub max_wall: Option<Duration>,
}

impl TimeloopConfig {
    /// The `TL-fast` configuration of Table V: timeout 20000, victory
    /// condition 25.
    pub fn fast() -> Self {
        TimeloopConfig {
            timeout: 20_000,
            victory_condition: 25,
            threads: 0,
            seed: 0x5375_6e73,
            max_wall: Some(Duration::from_secs(3600)),
        }
    }

    /// The `TL-slow` configuration of Table V: timeout 80000, victory
    /// condition 1500.
    pub fn slow() -> Self {
        TimeloopConfig { timeout: 80_000, victory_condition: 1_500, ..Self::fast() }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// The Timeloop-like random-search mapper.
#[derive(Debug, Clone)]
pub struct TimeloopMapper {
    name: String,
    config: TimeloopConfig,
}

impl TimeloopMapper {
    /// Creates a mapper with the given display name (e.g. `"TL-fast"`).
    pub fn new(name: impl Into<String>, config: TimeloopConfig) -> Self {
        TimeloopMapper { name: name.into(), config }
    }
}

struct Shared {
    best: Mutex<Option<(f64, Mapping, CostReport)>>,
    stop: AtomicBool,
}

impl Mapper for TimeloopMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome {
        let start = Instant::now();
        let binding = match Binding::resolve(arch, workload) {
            Ok(b) => b,
            Err(e) => return MapOutcome::invalid(&self.name, e.to_string(), MapStats::default()),
        };
        let shared = Shared { best: Mutex::new(None), stop: AtomicBool::new(false) };
        let threads = self.config.effective_threads();
        let stats = Mutex::new(MapStats::default());

        std::thread::scope(|scope| {
            for tid in 0..threads {
                let shared = &shared;
                let stats = &stats;
                let binding = &binding;
                let config = &self.config;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(config.seed ^ (tid as u64) << 32);
                    let ctx = ValidationContext::new(workload, arch, binding);
                    let model = CostModel::new(workload, arch, binding);
                    let mut consecutive_invalid = 0u64;
                    let mut consecutive_flat = 0u64;
                    let mut local = MapStats::default();
                    loop {
                        if shared.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(cap) = config.max_wall {
                            if start.elapsed() > cap {
                                break;
                            }
                        }
                        let mapping = random_mapping(workload, arch, &mut rng);
                        match ctx.validate(&mapping) {
                            Err(_) => {
                                local.invalid += 1;
                                consecutive_invalid += 1;
                                if consecutive_invalid >= config.timeout {
                                    break;
                                }
                            }
                            Ok(()) => {
                                consecutive_invalid = 0;
                                local.evaluated += 1;
                                let report = model.evaluate_unchecked(&mapping);
                                // Poison recovery: the slot holds a plain
                                // best-so-far triple, valid at every
                                // unwind point; a panicked sibling thread
                                // must not abort the whole search.
                                let mut best =
                                    shared.best.lock().unwrap_or_else(|e| e.into_inner());
                                let improved =
                                    best.as_ref().is_none_or(|(e, _, _)| report.edp < *e);
                                if improved {
                                    *best = Some((report.edp, mapping, report));
                                    consecutive_flat = 0;
                                } else {
                                    consecutive_flat += 1;
                                    if consecutive_flat >= config.victory_condition {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    let mut s = stats.lock().unwrap_or_else(|e| e.into_inner());
                    s.evaluated += local.evaluated;
                    s.invalid += local.invalid;
                });
            }
        });

        let mut stats = stats.into_inner().unwrap_or_else(|e| e.into_inner());
        stats.elapsed = start.elapsed();
        match shared.best.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some((_, mapping, report)) => MapOutcome::valid(&self.name, mapping, report, stats),
            None => MapOutcome::invalid(&self.name, "random search found no valid mapping", stats),
        }
    }
}

/// Samples a structurally consistent random mapping: random divisor
/// splits of every dimension across the levels (spatial splits capped by
/// the fabric size) and random loop orders. Capacity is *not* considered
/// — that is what makes the samples frequently invalid, as in Timeloop.
fn random_mapping(workload: &Workload, arch: &ArchSpec, rng: &mut StdRng) -> Mapping {
    let ndims = workload.num_dims();
    let mut mapping = Mapping::streaming(workload, arch);
    let last = arch.num_levels() - 1;
    // Reset the streaming remainder; we re-factor from scratch.
    for level in mapping.levels_mut() {
        level.factors_mut().iter_mut().for_each(|f| *f = 1);
    }
    for d in 0..ndims {
        let mut remaining = workload.dim_size(sunstone_ir::DimId::from_index(d));
        for pos in 0..last {
            let level_is_spatial =
                matches!(arch.level(sunstone_arch::LevelId(pos)), Level::Spatial(_));
            let budget = if level_is_spatial {
                let fabric = arch.level(sunstone_arch::LevelId(pos)).as_spatial().unwrap();
                let used: u64 = mapping.level(pos).factors().iter().product();
                fabric.units / used.max(1)
            } else {
                u64::MAX
            };
            let divisors = sorted_divisors(remaining);
            let feasible: Vec<u64> = divisors.into_iter().filter(|&f| f <= budget).collect();
            let f = feasible[rng.gen_range(0..feasible.len())];
            mapping.levels_mut()[pos].factors_mut()[d] = f;
            remaining /= f;
        }
        mapping.levels_mut()[last].factors_mut()[d] = remaining;
    }
    // Random loop orders.
    for level in mapping.levels_mut() {
        if let MappingLevel::Temporal(t) = level {
            for i in (1..t.order.len()).rev() {
                t.order.swap(i, rng.gen_range(0..=i));
            }
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;

    fn conv() -> Workload {
        let mut b = Workload::builder("conv1d");
        let k = b.dim("K", 16);
        let c = b.dim("C", 16);
        let p = b.dim("P", 28);
        let r = b.dim("R", 3);
        b.input("ifmap", [c.expr(), p + r]);
        b.input("weight", [k.expr(), c.expr(), r.expr()]);
        b.output("ofmap", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    fn quick_config() -> TimeloopConfig {
        TimeloopConfig {
            timeout: 500,
            victory_condition: 50,
            threads: 2,
            seed: 7,
            max_wall: Some(Duration::from_secs(10)),
        }
    }

    #[test]
    fn finds_a_valid_mapping() {
        let tl = TimeloopMapper::new("TL-test", quick_config());
        let out = tl.map(&conv(), &presets::conventional());
        assert!(out.is_valid(), "{:?}", out.invalid_reason);
        assert!(out.stats.evaluated > 0);
    }

    #[test]
    fn random_mappings_are_structurally_consistent() {
        let w = conv();
        let arch = presets::conventional();
        let binding = Binding::resolve(&arch, &w).unwrap();
        let ctx = ValidationContext::new(&w, &arch, &binding);
        let mut rng = StdRng::seed_from_u64(42);
        let mut valid = 0;
        for _ in 0..200 {
            let m = random_mapping(&w, &arch, &mut rng);
            // Structure (products, permutations, fabric limits) always
            // holds; only capacity may fail.
            ctx.validate_structure(&m).unwrap();
            if ctx.validate_capacity(&m).is_ok() {
                valid += 1;
            }
        }
        assert!(valid > 0, "some random samples are fully valid");
        assert!(valid < 200, "and some overflow capacity");
    }

    #[test]
    fn slow_config_explores_more_than_fast() {
        let w = conv();
        let arch = presets::conventional();
        let fast = TimeloopMapper::new(
            "TL-fast",
            TimeloopConfig { threads: 2, seed: 1, ..TimeloopConfig::fast() },
        );
        let slow = TimeloopMapper::new(
            "TL-slow",
            TimeloopConfig {
                threads: 2,
                seed: 1,
                victory_condition: 200,
                timeout: 5_000,
                max_wall: Some(Duration::from_secs(20)),
            },
        );
        let fo = fast.map(&w, &arch);
        let so = slow.map(&w, &arch);
        assert!(so.stats.evaluated + so.stats.invalid >= fo.stats.evaluated + fo.stats.invalid);
        // More search never hurts quality.
        if let (Some(fe), Some(se)) = (fo.edp(), so.edp()) {
            assert!(se <= fe * 1.5, "fast={fe} slow={se}");
        }
    }
}
