//! A GAMMA-like mapper (Kao & Krishna, ICCAD 2020): a genetic algorithm
//! over complete mappings.
//!
//! The Sunstone paper cites GAMMA among the black-box optimizers
//! (Section VI) without comparing against it; this implementation closes
//! that gap. Individuals are full mappings (divisor splits per dimension
//! per level plus loop orders); fitness is the objective under the shared
//! analytic cost model; variation operators are
//!
//! * **crossover** — per-dimension factor-column exchange between two
//!   parents (a dimension's whole split across levels moves as a gene,
//!   keeping the factor product exact),
//! * **mutation** — move a factor between two levels of one dimension,
//!   or swap two loops in one level's order,
//!
//! with tournament selection and elitism. Invalid individuals (capacity
//! overflow) are penalized rather than discarded, as in GAMMA.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sunstone::tiling::sorted_divisors;
use sunstone_arch::{ArchSpec, Binding, Level, LevelId};
use sunstone_ir::Workload;
use sunstone_mapping::{Mapping, MappingLevel, ValidationContext};
use sunstone_model::CostModel;

use crate::{MapOutcome, MapStats, Mapper};

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-individual mutation probability.
    pub mutation_rate: f64,
    /// Fraction of elites copied unchanged.
    pub elitism: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            population: 60,
            generations: 40,
            mutation_rate: 0.6,
            elitism: 0.1,
            seed: 0x6761_6d6d,
        }
    }
}

/// The GAMMA-like genetic mapper.
#[derive(Debug, Clone, Default)]
pub struct GammaMapper {
    config: GammaConfig,
}

impl GammaMapper {
    /// Creates the mapper with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the mapper with explicit hyperparameters.
    pub fn with_config(config: GammaConfig) -> Self {
        GammaMapper { config }
    }
}

impl Mapper for GammaMapper {
    fn name(&self) -> &str {
        "GAMMA"
    }

    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome {
        let start = Instant::now();
        let mut stats = MapStats::default();
        let binding = match Binding::resolve(arch, workload) {
            Ok(b) => b,
            Err(e) => return MapOutcome::invalid(self.name(), e.to_string(), stats),
        };
        let ctx = ValidationContext::new(workload, arch, &binding);
        let model = CostModel::new(workload, arch, &binding);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let fitness = |m: &Mapping, stats: &mut MapStats| -> f64 {
            match ctx.validate(m) {
                Ok(()) => {
                    stats.evaluated += 1;
                    model.evaluate_unchecked(m).edp
                }
                Err(_) => {
                    stats.invalid += 1;
                    f64::INFINITY
                }
            }
        };

        let mut population: Vec<(Mapping, f64)> = (0..self.config.population)
            .map(|_| {
                let m = random_individual(workload, arch, &mut rng);
                let f = fitness(&m, &mut stats);
                (m, f)
            })
            .collect();

        let elites = ((self.config.population as f64 * self.config.elitism) as usize).max(1);
        for _gen in 0..self.config.generations {
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut next: Vec<(Mapping, f64)> = population[..elites].to_vec();
            while next.len() < self.config.population {
                let a = tournament(&population, &mut rng);
                let b = tournament(&population, &mut rng);
                let mut child = crossover(workload, &population[a].0, &population[b].0, &mut rng);
                if rng.gen_bool(self.config.mutation_rate) {
                    mutate(workload, arch, &mut child, &mut rng);
                }
                let f = fitness(&child, &mut stats);
                next.push((child, f));
            }
            population = next;
        }
        population.sort_by(|a, b| a.1.total_cmp(&b.1));
        stats.elapsed = start.elapsed();

        let (best, f) = population.swap_remove(0);
        if f.is_finite() {
            let report = model.evaluate_unchecked(&best);
            MapOutcome::valid(self.name(), best, report, stats)
        } else {
            MapOutcome::invalid(self.name(), "no valid individual evolved", stats)
        }
    }
}

/// A random structurally consistent individual (same sampler family as
/// the Timeloop baseline).
fn random_individual(workload: &Workload, arch: &ArchSpec, rng: &mut StdRng) -> Mapping {
    let ndims = workload.num_dims();
    let mut mapping = Mapping::streaming(workload, arch);
    for level in mapping.levels_mut() {
        level.factors_mut().iter_mut().for_each(|f| *f = 1);
    }
    let last = arch.num_levels() - 1;
    for d in 0..ndims {
        let mut remaining = workload.dim_size(sunstone_ir::DimId::from_index(d));
        for pos in 0..last {
            let budget = match arch.level(LevelId(pos)) {
                Level::Spatial(s) => {
                    let used: u64 = mapping.level(pos).factors().iter().product();
                    s.units / used.max(1)
                }
                Level::Memory(_) => u64::MAX,
            };
            let feasible: Vec<u64> =
                sorted_divisors(remaining).into_iter().filter(|&f| f <= budget).collect();
            let f = feasible[rng.gen_range(0..feasible.len())];
            mapping.levels_mut()[pos].factors_mut()[d] = f;
            remaining /= f;
        }
        mapping.levels_mut()[last].factors_mut()[d] = remaining;
    }
    for level in mapping.levels_mut() {
        if let MappingLevel::Temporal(t) = level {
            for i in (1..t.order.len()).rev() {
                t.order.swap(i, rng.gen_range(0..=i));
            }
        }
    }
    mapping
}

fn tournament(population: &[(Mapping, f64)], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..population.len());
    let b = rng.gen_range(0..population.len());
    if population[a].1 <= population[b].1 {
        a
    } else {
        b
    }
}

/// Exchanges whole per-dimension factor columns between parents; loop
/// orders come from one parent per level.
fn crossover(workload: &Workload, a: &Mapping, b: &Mapping, rng: &mut StdRng) -> Mapping {
    let mut child = a.clone();
    for d in 0..workload.num_dims() {
        if rng.gen_bool(0.5) {
            for (pos, level) in child.levels_mut().iter_mut().enumerate() {
                level.factors_mut()[d] = b.level(pos).factors()[d];
            }
        }
    }
    for (pos, level) in child.levels_mut().iter_mut().enumerate() {
        if rng.gen_bool(0.5) {
            if let (MappingLevel::Temporal(t), MappingLevel::Temporal(src)) =
                (level, &b.levels()[pos])
            {
                t.order = src.order.clone();
            }
        }
    }
    child
}

/// Moves a prime factor of one dimension between two levels, or swaps two
/// loops in one order.
fn mutate(workload: &Workload, arch: &ArchSpec, m: &mut Mapping, rng: &mut StdRng) {
    let ndims = workload.num_dims();
    if rng.gen_bool(0.5) {
        // Factor migration.
        let d = rng.gen_range(0..ndims);
        let from = rng.gen_range(0..m.levels().len());
        let to = rng.gen_range(0..m.levels().len());
        if from == to {
            return;
        }
        let f = m.level(from).factors()[d];
        if f == 1 {
            return;
        }
        let divisors = sorted_divisors(f);
        let moved = divisors[rng.gen_range(1..divisors.len())];
        // Respect fabric limits at the destination.
        if let Level::Spatial(s) = arch.level(LevelId(to)) {
            let used: u64 = m.level(to).factors().iter().product();
            if used * moved > s.units {
                return;
            }
        }
        m.levels_mut()[from].factors_mut()[d] /= moved;
        m.levels_mut()[to].factors_mut()[d] *= moved;
    } else {
        // Order swap.
        let pos = rng.gen_range(0..m.levels().len());
        if let MappingLevel::Temporal(t) = &mut m.levels_mut()[pos] {
            let i = rng.gen_range(0..t.order.len());
            let j = rng.gen_range(0..t.order.len());
            t.order.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;
    use sunstone_workloads::{ConvSpec, Precision};

    fn quick() -> GammaConfig {
        GammaConfig { population: 24, generations: 12, ..GammaConfig::default() }
    }

    #[test]
    fn evolves_a_valid_mapping() {
        let w = ConvSpec::new("t", 2, 16, 16, 14, 14, 3, 3, 1).inference(Precision::conventional());
        let arch = presets::conventional();
        let out = GammaMapper::with_config(quick()).map(&w, &arch);
        assert!(out.is_valid(), "{:?}", out.invalid_reason);
        assert!(out.stats.evaluated > 0);
        // Whatever evolved covers the problem exactly.
        let m = out.mapping.unwrap();
        for d in w.dim_ids() {
            assert_eq!(m.total_factor(d), w.dim_size(d));
        }
    }

    #[test]
    fn more_generations_never_hurt() {
        let w = ConvSpec::new("t", 2, 16, 16, 14, 14, 3, 3, 1).inference(Precision::conventional());
        let arch = presets::conventional();
        let short =
            GammaMapper::with_config(GammaConfig { generations: 2, ..quick() }).map(&w, &arch);
        let long =
            GammaMapper::with_config(GammaConfig { generations: 30, ..quick() }).map(&w, &arch);
        assert!(long.edp().unwrap() <= short.edp().unwrap() * 1.0001, "elitism is monotone");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let w = ConvSpec::new("t", 1, 8, 8, 8, 8, 3, 3, 1).inference(Precision::conventional());
        let arch = presets::conventional();
        let a = GammaMapper::with_config(quick()).map(&w, &arch);
        let b = GammaMapper::with_config(quick()).map(&w, &arch);
        assert_eq!(a.edp(), b.edp());
    }

    #[test]
    fn handles_simba_hierarchy() {
        // Unlike dMaze/INTER, a black-box GA runs on any hierarchy — just
        // not necessarily well.
        let w = ConvSpec::new("t", 1, 16, 16, 8, 8, 3, 3, 1).inference(Precision::simba());
        let arch = presets::simba_like();
        let out = GammaMapper::with_config(quick()).map(&w, &arch);
        // Valid or honestly invalid; either way it must have searched.
        assert!(out.stats.evaluated + out.stats.invalid > 0);
    }
}
