//! A dMazeRunner-like mapper (Dave et al., TECS 2019): directed search
//! over divisor tilings pruned by minimum-utilization thresholds
//! (Table V of the Sunstone paper).
//!
//! Faithful to the limitations the paper observes (Fig 7):
//!
//! * assumes **symmetric** convolutions — asymmetric kernels (1×7, 3×1)
//!   are rejected;
//! * supports architectures with a single spatial level and 2–3 memory
//!   levels — the Simba-like hierarchy is unsupported;
//! * when no tiling meets the utilization thresholds (light early
//!   layers), it returns *invalid* rather than relaxing them.

use std::time::Instant;

use sunstone::ordering::OrderingTrie;
use sunstone::tiling::sorted_divisors;
use sunstone::unrolling::enumerate_unrollings;
use sunstone_arch::{ArchSpec, Binding, LevelId};
use sunstone_ir::{DimSet, Workload};
use sunstone_mapping::{Mapping, MappingLevel, ValidationContext};
use sunstone_model::CostModel;

use crate::{MapOutcome, MapStats, Mapper};

/// dMazeRunner configuration (Table V).
#[derive(Debug, Clone, PartialEq)]
pub struct DMazeConfig {
    /// Minimum L1 (innermost buffer) utilization.
    pub l1_util: f64,
    /// Minimum L2 (shared buffer) utilization.
    pub l2_util: f64,
    /// Minimum PE-array utilization.
    pub pe_util: f64,
    /// Whether spatial reduction (unrolling reduction dims) is permitted.
    pub allow_spatial_reduction: bool,
    /// Evaluation budget: the search stops after this many candidate
    /// mappings (keeps worst-case runtime bounded).
    pub max_evaluations: u64,
}

impl DMazeConfig {
    /// The repository-default `dMaze-fast` configuration: 80% / 50% / 80%
    /// utilization, no spatial reduction.
    pub fn fast() -> Self {
        DMazeConfig {
            l1_util: 0.8,
            l2_util: 0.5,
            pe_util: 0.8,
            allow_spatial_reduction: false,
            max_evaluations: 200_000,
        }
    }

    /// The `dMaze-slow` configuration: 60% / 40% / 80%, spatial reduction
    /// allowed.
    pub fn slow() -> Self {
        DMazeConfig {
            l1_util: 0.6,
            l2_util: 0.4,
            pe_util: 0.8,
            allow_spatial_reduction: true,
            max_evaluations: 400_000,
        }
    }
}

/// The dMazeRunner-like mapper.
#[derive(Debug, Clone)]
pub struct DMazeMapper {
    name: String,
    config: DMazeConfig,
}

impl DMazeMapper {
    /// Creates a mapper with the given display name (e.g. `"dMaze-fast"`).
    pub fn new(name: impl Into<String>, config: DMazeConfig) -> Self {
        DMazeMapper { name: name.into(), config }
    }

    fn check_support(&self, workload: &Workload, arch: &ArchSpec) -> Result<(), String> {
        // Symmetric-convolution assumption.
        if let (Some(r), Some(s)) = (workload.dim_by_name("R"), workload.dim_by_name("S")) {
            if workload.dim_size(r) != workload.dim_size(s) {
                return Err("assumes symmetric convolutions (R = S)".to_string());
            }
        }
        if arch.num_memory_levels() > 3 {
            return Err("supports at most 3 memory levels".to_string());
        }
        if arch.spatial_levels().count() > 1 {
            return Err("supports a single spatial level".to_string());
        }
        Ok(())
    }
}

impl Mapper for DMazeMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome {
        let start = Instant::now();
        let mut stats = MapStats::default();
        if let Err(reason) = self.check_support(workload, arch) {
            stats.elapsed = start.elapsed();
            return MapOutcome::invalid(&self.name, reason, stats);
        }
        let binding = match Binding::resolve(arch, workload) {
            Ok(b) => b,
            Err(e) => return MapOutcome::invalid(&self.name, e.to_string(), stats),
        };
        let ctx = ValidationContext::new(workload, arch, &binding);
        let model = CostModel::new(workload, arch, &binding);
        let trie = OrderingTrie::new(workload);
        let ndims = workload.num_dims();
        let mems: Vec<usize> = arch.memory_levels().map(|(id, _)| id.index()).collect();
        let spatial_pos = arch.spatial_levels().next().map(|(id, s)| (id.index(), s.units));

        // Utility: bytes needed at a memory level for a tile.
        let bytes_at = |pos: usize, tile: &[u64]| -> (u64, u64) {
            let mem = arch.level(LevelId(pos)).as_memory().expect("memory level");
            let mut needed = 0u64;
            let mut capacity = 0u64;
            for t in workload.tensor_ids() {
                if binding.partition_of(LevelId(pos), t).is_some() {
                    let tensor = workload.tensor(t);
                    needed += tensor.footprint(tile) * u64::from(tensor.bits()).div_ceil(8);
                }
            }
            for p in &mem.partitions {
                capacity += p.capacity.bytes().unwrap_or(u64::MAX);
            }
            (needed, capacity)
        };

        // 1. L1 tiles meeting the utilization threshold (all dimensions —
        //    dMazeRunner enumerates divisor combinations directly).
        let l1 = mems[0];
        let sizes = workload.dim_sizes();
        let mut l1_tiles: Vec<Vec<u64>> = Vec::new();
        enumerate_divisor_tiles(
            &sizes,
            &mut vec![1; ndims],
            0,
            &mut |tile| {
                let (needed, capacity) = bytes_at(l1, tile);
                needed > capacity
            },
            &mut |tile| {
                let (needed, capacity) = bytes_at(l1, tile);
                if needed as f64 >= self.config.l1_util * capacity as f64 {
                    l1_tiles.push(tile.to_vec());
                }
            },
        );
        if l1_tiles.is_empty() {
            stats.elapsed = start.elapsed();
            return MapOutcome::invalid(
                &self.name,
                "no L1 tiling meets the minimum utilization constraints",
                stats,
            );
        }
        // Keep the search bounded: prefer the highest-utilization tiles
        // (dMazeRunner's own objective) and cap the combination counts.
        l1_tiles.sort_by(|a, b| {
            let (na, _) = bytes_at(l1, a);
            let (nb, _) = bytes_at(l1, b);
            nb.cmp(&na)
        });
        l1_tiles.truncate(256);

        // 2–4. For each L1 tile: unrollings meeting PE utilization, L2
        //      tiles meeting L2 utilization, orderings from the reduced
        //      set. Evaluate within the budget.
        let (orderings, _) = trie.candidates(DimSet::first_n(ndims));
        let mut best: Option<(f64, Mapping)> = None;
        'outer: for l1_tile in &l1_tiles {
            let quotas: Vec<u64> = sizes.iter().zip(l1_tile).map(|(s, t)| s / t).collect();
            let unroll_sets: Vec<Vec<u64>> = match spatial_pos {
                None => vec![vec![1; ndims]],
                Some((_, units)) => {
                    let allowed = if self.config.allow_spatial_reduction {
                        DimSet::first_n(ndims)
                    } else {
                        DimSet::first_n(ndims).difference(workload.reduction_dims())
                    };
                    enumerate_unrollings(
                        &quotas,
                        allowed,
                        units,
                        |_| true,
                        self.config.pe_util,
                        true,
                    )
                    .unrollings
                    .into_iter()
                    .filter(|u| {
                        u.iter().product::<u64>() as f64 >= self.config.pe_util * units as f64
                    })
                    .map(Vec::from)
                    .collect()
                }
            };
            for unroll in unroll_sets.iter().take(8) {
                let after_unroll: Vec<u64> =
                    quotas.iter().zip(unroll).map(|(q, u)| q / u).collect();
                // L2 tiles (only when a distinct L2 exists below DRAM).
                let l2_options: Vec<Vec<u64>> = if mems.len() >= 3 {
                    let l2 = mems[1];
                    let base: Vec<u64> = l1_tile.iter().zip(unroll).map(|(t, u)| t * u).collect();
                    let mut tiles = Vec::new();
                    enumerate_divisor_tiles(
                        &after_unroll,
                        &mut vec![1; ndims],
                        0,
                        &mut |f| {
                            let tile: Vec<u64> = base.iter().zip(f).map(|(b, x)| b * x).collect();
                            let (needed, capacity) = bytes_at(l2, &tile);
                            needed > capacity
                        },
                        &mut |f| {
                            let tile: Vec<u64> = base.iter().zip(f).map(|(b, x)| b * x).collect();
                            let (needed, capacity) = bytes_at(l2, &tile);
                            if needed as f64 >= self.config.l2_util * capacity as f64 {
                                tiles.push(f.to_vec());
                            }
                        },
                    );
                    tiles
                } else {
                    vec![vec![1; ndims]]
                };
                for l2_factors in l2_options.iter().take(32) {
                    for ordering in &orderings {
                        if stats.evaluated >= self.config.max_evaluations {
                            break 'outer;
                        }
                        let mapping = build_mapping(
                            workload,
                            arch,
                            &mems,
                            spatial_pos.map(|(p, _)| p),
                            l1_tile,
                            unroll,
                            l2_factors,
                            &ordering.order,
                        );
                        match ctx.validate(&mapping) {
                            Ok(()) => {
                                stats.evaluated += 1;
                                let report = model.evaluate_unchecked(&mapping);
                                if best.as_ref().is_none_or(|(e, _)| report.edp < *e) {
                                    best = Some((report.edp, mapping));
                                }
                            }
                            Err(_) => stats.invalid += 1,
                        }
                    }
                }
            }
        }
        stats.elapsed = start.elapsed();
        match best {
            Some((_, mapping)) => {
                let report = model.evaluate_unchecked(&mapping);
                MapOutcome::valid(&self.name, mapping, report, stats)
            }
            None => MapOutcome::invalid(
                &self.name,
                "no mapping meets the minimum utilization constraints",
                stats,
            ),
        }
    }
}

/// Depth-first enumeration of divisor tiles. `prune` cuts a subtree as
/// soon as the partial tile already violates capacity (footprints grow
/// monotonically in every factor); `leaf` receives each complete tile.
fn enumerate_divisor_tiles(
    sizes: &[u64],
    tile: &mut Vec<u64>,
    dim: usize,
    prune: &mut impl FnMut(&[u64]) -> bool,
    leaf: &mut impl FnMut(&[u64]),
) {
    if dim == sizes.len() {
        leaf(tile);
        return;
    }
    for f in sorted_divisors(sizes[dim]) {
        tile[dim] = f;
        if prune(tile) {
            break;
        }
        enumerate_divisor_tiles(sizes, tile, dim + 1, prune, leaf);
    }
    tile[dim] = 1;
}

#[allow(clippy::too_many_arguments)]
fn build_mapping(
    workload: &Workload,
    arch: &ArchSpec,
    mems: &[usize],
    spatial: Option<usize>,
    l1_tile: &[u64],
    unroll: &[u64],
    l2_factors: &[u64],
    order: &[sunstone_ir::DimId],
) -> Mapping {
    let sizes = workload.dim_sizes();
    let mut mapping = Mapping::streaming(workload, arch);
    for level in mapping.levels_mut() {
        level.factors_mut().iter_mut().for_each(|f| *f = 1);
    }
    let ndims = sizes.len();
    for d in 0..ndims {
        mapping.levels_mut()[mems[0]].factors_mut()[d] = l1_tile[d];
        if let Some(sp) = spatial {
            mapping.levels_mut()[sp].factors_mut()[d] = unroll[d];
        }
        let mut consumed = l1_tile[d] * unroll[d];
        if mems.len() >= 3 {
            mapping.levels_mut()[mems[1]].factors_mut()[d] = l2_factors[d];
            consumed *= l2_factors[d];
        }
        let last = *mems.last().expect("memories exist");
        mapping.levels_mut()[last].factors_mut()[d] = sizes[d] / consumed;
    }
    for &m in &mems[1..] {
        if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[m] {
            t.order = order.to_vec();
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;
    use sunstone_workloads::{ConvSpec, Precision};

    fn small_conv() -> Workload {
        ConvSpec::new("t", 2, 16, 16, 14, 14, 3, 3, 1).inference(Precision::conventional())
    }

    #[test]
    fn rejects_asymmetric_convolutions() {
        let w =
            ConvSpec::new("1x7", 2, 16, 16, 16, 16, 1, 7, 1).inference(Precision::conventional());
        let out = DMazeMapper::new("dMaze", DMazeConfig::fast()).map(&w, &presets::conventional());
        assert!(!out.is_valid());
        assert!(out.invalid_reason.unwrap().contains("symmetric"));
    }

    #[test]
    fn rejects_simba_hierarchy() {
        let w = small_conv();
        let out = DMazeMapper::new("dMaze", DMazeConfig::fast()).map(&w, &presets::simba_like());
        assert!(!out.is_valid());
    }

    #[test]
    fn maps_a_conventional_conv() {
        // Heavy enough that the L2-utilization floor is reachable (the
        // paper's dMaze fails on *light* layers whose entire footprint
        // is below 40–50% of L2; it must succeed on deep heavy ones).
        let w =
            ConvSpec::new("t", 16, 256, 256, 14, 14, 3, 3, 1).inference(Precision::conventional());
        let out =
            DMazeMapper::new("dMaze-slow", DMazeConfig::slow()).map(&w, &presets::conventional());
        assert!(out.is_valid(), "{:?}", out.invalid_reason);
        assert!(out.edp().unwrap() > 0.0);
    }

    #[test]
    fn utilization_thresholds_can_reject_light_layers() {
        // A tiny layer cannot fill 80% of the 512 B L1 across 1024 PEs
        // with 80% PE utilization at the same time.
        let w = ConvSpec::new("tiny", 1, 4, 4, 4, 4, 1, 1, 1).inference(Precision::conventional());
        let out =
            DMazeMapper::new("dMaze-fast", DMazeConfig::fast()).map(&w, &presets::conventional());
        assert!(!out.is_valid(), "tiny layer should fail utilization constraints");
    }
}
