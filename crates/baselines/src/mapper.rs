//! The common mapper interface.

use std::time::Duration;

use sunstone::{ScheduleError, Scheduler, SunstoneConfig};
use sunstone_arch::ArchSpec;
use sunstone_ir::Workload;
use sunstone_mapping::Mapping;
use sunstone_model::CostReport;

/// Search statistics common to every mapper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapStats {
    /// Mappings evaluated with the cost model.
    pub evaluated: u64,
    /// Invalid mappings encountered during the search.
    pub invalid: u64,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// The outcome of one mapping run.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// Tool name that produced this outcome.
    pub mapper: String,
    /// The best mapping found, if any valid one exists.
    pub mapping: Option<Mapping>,
    /// Its cost report.
    pub report: Option<CostReport>,
    /// Why no (valid) mapping was returned — the paper's "invalid"
    /// category: utilization constraints unmet, preset unrolling unusable,
    /// tiles overflowing buffers, or unsupported workload shape.
    pub invalid_reason: Option<String>,
    /// Search statistics.
    pub stats: MapStats,
}

impl MapOutcome {
    /// Returns `true` if a valid mapping was produced.
    pub fn is_valid(&self) -> bool {
        self.mapping.is_some() && self.report.is_some()
    }

    /// The EDP of the result, or `None` when invalid.
    pub fn edp(&self) -> Option<f64> {
        self.report.as_ref().map(|r| r.edp)
    }

    pub(crate) fn invalid(mapper: &str, reason: impl Into<String>, stats: MapStats) -> Self {
        MapOutcome {
            mapper: mapper.to_string(),
            mapping: None,
            report: None,
            invalid_reason: Some(reason.into()),
            stats,
        }
    }

    pub(crate) fn valid(
        mapper: &str,
        mapping: Mapping,
        report: CostReport,
        stats: MapStats,
    ) -> Self {
        MapOutcome {
            mapper: mapper.to_string(),
            mapping: Some(mapping),
            report: Some(report),
            invalid_reason: None,
            stats,
        }
    }
}

/// A dataflow mapper: finds a mapping of a workload onto an architecture.
pub trait Mapper {
    /// The tool's display name (e.g. `"TL-fast"`).
    fn name(&self) -> &str;

    /// Runs the search.
    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome;
}

/// The real Sunstone scheduler behind the [`Mapper`] interface.
///
/// The mapper holds a [`Scheduler`] *session*, so mapping many layers
/// through one `SunstoneMapper` shares the session estimate cache across
/// calls (repeated layer shapes skip the analytic model entirely).
#[derive(Debug, Clone)]
pub struct SunstoneMapper {
    name: String,
    scheduler: Scheduler,
}

impl SunstoneMapper {
    /// Creates a mapper with its own fresh session.
    pub fn new(config: SunstoneConfig) -> Self {
        Self::with_session(Scheduler::new(config))
    }

    /// Wraps an existing session (to share its cache with other users).
    pub fn with_session(scheduler: Scheduler) -> Self {
        SunstoneMapper { name: "Sunstone".to_string(), scheduler }
    }

    /// The backing session.
    pub fn session(&self) -> &Scheduler {
        &self.scheduler
    }
}

impl Default for SunstoneMapper {
    fn default() -> Self {
        Self::new(SunstoneConfig::default())
    }
}

impl Mapper for SunstoneMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome {
        match self.scheduler.schedule(workload, arch) {
            Ok(result) => MapOutcome::valid(
                &self.name,
                result.mapping,
                result.report,
                MapStats {
                    evaluated: result.stats.probed,
                    invalid: 0,
                    elapsed: result.stats.elapsed,
                },
            ),
            Err(ScheduleError::NoValidMapping | ScheduleError::InfeasibleLevel { .. }) => {
                MapOutcome::invalid(&self.name, "no valid mapping", MapStats::default())
            }
            Err(e) => MapOutcome::invalid(&self.name, e.to_string(), MapStats::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;

    fn matmul() -> Workload {
        let mut b = Workload::builder("mm");
        let m = b.dim("M", 64);
        let n = b.dim("N", 64);
        let k = b.dim("K", 64);
        b.input("a", [m.expr(), k.expr()]);
        b.input("b", [k.expr(), n.expr()]);
        b.output("out", [m.expr(), n.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn sunstone_mapper_reports_valid_outcome() {
        let out = SunstoneMapper::default().map(&matmul(), &presets::conventional());
        assert!(out.is_valid());
        assert!(out.edp().unwrap() > 0.0);
        assert!(out.invalid_reason.is_none());
        assert_eq!(out.mapper, "Sunstone");
    }

    #[test]
    fn outcome_helpers() {
        let inv = MapOutcome::invalid("X", "reason", MapStats::default());
        assert!(!inv.is_valid());
        assert_eq!(inv.edp(), None);
        assert_eq!(inv.invalid_reason.as_deref(), Some("reason"));
    }
}
