//! Optimization-space size estimators (Table I of the paper).
//!
//! Each estimator counts the raw space the corresponding tool's search is
//! defined over, following the construction the paper describes:
//! temporal divisor splits per dimension per level × loop permutations
//! per level × spatial unroll choices. Counts are returned as `f64`
//! because they reach 10¹⁰ and beyond.

use sunstone::tiling::sorted_divisors;
use sunstone_arch::{ArchSpec, Level};
use sunstone_ir::Workload;

/// Number of ordered ways to write `v` as a product of `levels` factors
/// (multiplicative compositions): `Π_i C(e_i + L − 1, L − 1)` over the
/// prime exponents `e_i` of `v`.
pub fn compositions(v: u64, levels: u64) -> f64 {
    let mut n = v;
    let mut total = 1.0f64;
    let mut p = 2u64;
    while p * p <= n {
        let mut e = 0u64;
        while n.is_multiple_of(p) {
            e += 1;
            n /= p;
        }
        if e > 0 {
            total *= binomial(e + levels - 1, levels - 1);
        }
        p += 1;
    }
    if n > 1 {
        total *= binomial(levels, levels - 1);
    }
    total
}

fn binomial(n: u64, k: u64) -> f64 {
    let k = k.min(n - k.min(n));
    let mut r = 1.0f64;
    for i in 0..k {
        r *= (n - i) as f64 / (i + 1) as f64;
    }
    r
}

/// Timeloop's space: every dimension split across every level (temporal
/// and spatial). No pruning (Table I: "nothing").
///
/// Loop-order permutations are excluded, matching the paper's own Table I
/// accounting — the ordering axis is identical across tools and the
/// paper's Timeloop count (3.69 × 10¹⁰ for its example layer) corresponds
/// to the pure tiling/unrolling space.
pub fn timeloop_space(workload: &Workload, arch: &ArchSpec) -> f64 {
    let levels = arch.num_levels() as u64;
    workload.dims().iter().map(|d| compositions(d.size(), levels)).product()
}

/// CoSA's space is "similar to Timeloop" (Table I) — the MIP is defined
/// over the same variables; the solver prunes internally.
pub fn cosa_space(workload: &Workload, arch: &ArchSpec) -> f64 {
    timeloop_space(workload, arch)
}

/// Marvel's space: off-chip and on-chip mappings are decoupled — the
/// off-chip level is searched separately from the on-chip levels, so the
/// product collapses into a sum of two smaller spaces.
pub fn marvel_space(workload: &Workload, arch: &ArchSpec) -> f64 {
    let on_chip_levels = (arch.num_levels() as u64).saturating_sub(1).max(1);
    let off: f64 = workload.dims().iter().map(|d| compositions(d.size(), 2)).product();
    let on: f64 = workload.dims().iter().map(|d| compositions(d.size(), on_chip_levels)).product();
    off + on
}

/// Interstellar's space: like Timeloop's temporal space, but spatial
/// unrolling is preset to the input/output channels, and its
/// high-throughput heuristic keeps only the maximal (fabric-filling)
/// C/K unrollings.
pub fn interstellar_space(workload: &Workload, arch: &ArchSpec) -> f64 {
    use sunstone::unrolling::enumerate_unrollings;
    use sunstone_ir::DimSet;

    let n_temporal = arch.num_memory_levels() as u64;
    let splits: f64 = workload.dims().iter().map(|d| compositions(d.size(), n_temporal)).product();
    let mut unroll_choices = 1.0f64;
    let ck: DimSet = ["C", "K"].iter().filter_map(|name| workload.dim_by_name(name)).collect();
    for level in arch.levels() {
        if let Level::Spatial(s) = level {
            let count =
                enumerate_unrollings(&workload.dim_sizes(), ck, s.units, |_| true, 0.0, true)
                    .unrollings
                    .len();
            unroll_choices *= count.max(1) as f64;
        }
    }
    splits * unroll_choices
}

/// dMazeRunner's space, *measured* structurally: the number of
/// (L1 tile, unrolling, L2 tile) combinations that survive its
/// utilization thresholds, times the orderings its analysis keeps. No
/// cost evaluation is performed — this counts candidates the way the
/// paper's Table I does.
pub fn dmaze_space(workload: &Workload, arch: &ArchSpec, l1_util: f64, l2_util: f64) -> f64 {
    use sunstone::unrolling::enumerate_unrollings;
    use sunstone_arch::{Binding, LevelId};
    use sunstone_ir::DimSet;

    let Ok(binding) = Binding::resolve(arch, workload) else {
        return 0.0;
    };
    let ndims = workload.num_dims();
    let sizes = workload.dim_sizes();
    let mems: Vec<usize> = arch.memory_levels().map(|(id, _)| id.index()).collect();
    let units: u64 = arch.spatial_levels().map(|(_, s)| s.units).product();

    let bytes_at = |pos: usize, tile: &[u64]| -> (u64, u64) {
        let mem = arch.level(LevelId(pos)).as_memory().expect("memory level");
        let mut needed = 0u64;
        for t in workload.tensor_ids() {
            if binding.partition_of(LevelId(pos), t).is_some() {
                let tensor = workload.tensor(t);
                needed += tensor.footprint(tile) * u64::from(tensor.bits()).div_ceil(8);
            }
        }
        let capacity = mem.partitions.iter().map(|p| p.capacity.bytes().unwrap_or(u64::MAX)).sum();
        (needed, capacity)
    };

    // Surviving L1 tiles.
    let mut l1_tiles: Vec<Vec<u64>> = Vec::new();
    count_tiles(
        &sizes,
        &mut vec![1; ndims],
        0,
        &mut |tile| {
            let (needed, capacity) = bytes_at(mems[0], tile);
            needed > capacity
        },
        &mut |tile| {
            let (needed, capacity) = bytes_at(mems[0], tile);
            if needed as f64 >= l1_util * capacity as f64 {
                l1_tiles.push(tile.to_vec());
            }
        },
    );
    if l1_tiles.is_empty() {
        return 0.0;
    }

    // Average surviving unrollings and L2 tiles over a tile sample.
    let reduction = workload.reduction_dims();
    let allowed = DimSet::first_n(ndims).difference(reduction);
    let sample: Vec<&Vec<u64>> = l1_tiles.iter().step_by((l1_tiles.len() / 32).max(1)).collect();
    let mut unroll_sum = 0.0f64;
    let mut l2_sum = 0.0f64;
    for tile in &sample {
        let quotas: Vec<u64> = sizes.iter().zip(tile.iter()).map(|(s, t)| s / t).collect();
        let good = enumerate_unrollings(&quotas, allowed, units, |_| true, 0.8, true)
            .unrollings
            .into_iter()
            .filter(|u| u.iter().product::<u64>() as f64 >= 0.8 * units as f64)
            .count();
        unroll_sum += good as f64;
        if mems.len() >= 3 {
            let mut l2_count = 0u64;
            count_tiles(
                &quotas,
                &mut vec![1; ndims],
                0,
                &mut |f| {
                    let full: Vec<u64> = tile.iter().zip(f).map(|(t, x)| t * x).collect();
                    let (needed, capacity) = bytes_at(mems[1], &full);
                    needed > capacity
                },
                &mut |f| {
                    let full: Vec<u64> = tile.iter().zip(f).map(|(t, x)| t * x).collect();
                    let (needed, capacity) = bytes_at(mems[1], &full);
                    if needed as f64 >= l2_util * capacity as f64 {
                        l2_count += 1;
                    }
                },
            );
            l2_sum += l2_count as f64;
        } else {
            l2_sum += 1.0;
        }
    }
    let avg_unrolls = unroll_sum / sample.len() as f64;
    let avg_l2 = l2_sum / sample.len() as f64;
    // Its ordering analysis keeps roughly one ordering per reused tensor.
    let orderings = workload.num_tensors() as f64;
    l1_tiles.len() as f64 * avg_unrolls.max(0.0) * avg_l2.max(0.0) * orderings
}

/// DFS over divisor tiles: `prune` cuts a subtree (capacity grows
/// monotonically in every factor), `leaf` receives complete tiles.
fn count_tiles(
    sizes: &[u64],
    tile: &mut Vec<u64>,
    dim: usize,
    prune: &mut impl FnMut(&[u64]) -> bool,
    leaf: &mut impl FnMut(&[u64]),
) {
    if dim == sizes.len() {
        leaf(tile);
        return;
    }
    for f in sorted_divisors(sizes[dim]) {
        tile[dim] = f;
        if prune(tile) {
            break;
        }
        count_tiles(sizes, tile, dim + 1, prune, leaf);
    }
    tile[dim] = 1;
}

/// Sunstone's space for Table I is *measured*, not estimated: run the
/// scheduler and report how many candidates it examined.
pub fn sunstone_space(stats: &sunstone::SearchStats) -> f64 {
    stats.probed as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;
    use sunstone_workloads::{inception_v3_layers, Precision};

    #[test]
    fn compositions_ground_truth() {
        // 8 = 2³ into 2 factors: (1,8),(2,4),(4,2),(8,1) = C(4,1) = 4.
        assert_eq!(compositions(8, 2), 4.0);
        // 12 = 2²·3 into 2 factors: C(3,1)·C(2,1) = 6.
        assert_eq!(compositions(12, 2), 6.0);
        assert_eq!(compositions(1, 5), 1.0);
        // A prime into 3 factors: 3 placements.
        assert_eq!(compositions(7, 3), 3.0);
    }

    #[test]
    fn table_i_ordering_of_magnitudes() {
        // For an Inception-v3 example layer on the conventional
        // accelerator, the tools' spaces must be ordered as in Table I:
        // Timeloop ≈ CoSA ≫ Marvel ≳ Interstellar ≫ dMaze.
        let layer = &inception_v3_layers(16)[4]; // 3x3_mid
        let w = layer.inference(Precision::conventional());
        let arch = presets::conventional();
        let tl = timeloop_space(&w, &arch);
        let cosa = cosa_space(&w, &arch);
        let marvel = marvel_space(&w, &arch);
        let inter = interstellar_space(&w, &arch);
        let dmaze = dmaze_space(&w, &arch, 0.8, 0.5);
        assert!(tl >= 1e9, "Timeloop space is astronomical: {tl:.2e}");
        assert_eq!(tl, cosa);
        assert!(marvel < tl, "decoupling shrinks the space: {marvel:.2e} < {tl:.2e}");
        assert!(inter < tl, "preset unrolling shrinks the space: {inter:.2e}");
        assert!(dmaze < inter, "utilization pruning shrinks it further: {dmaze:.2e}");
    }

    #[test]
    fn sunstone_space_is_smallest_by_far() {
        let layer = &inception_v3_layers(16)[4];
        let w = layer.inference(Precision::conventional());
        let arch = presets::conventional();
        let result = sunstone::Scheduler::new(sunstone::SunstoneConfig::default())
            .schedule(&w, &arch)
            .unwrap();
        let ss = sunstone_space(&result.stats);
        let dm = dmaze_space(&w, &arch, 0.8, 0.5);
        assert!(ss < dm, "sunstone={ss:.2e} dmaze={dm:.2e}");
        assert!(ss < 1e6);
    }
}
