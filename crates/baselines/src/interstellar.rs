//! An Interstellar-like mapper (Yang et al., ASPLOS 2020): spatial
//! unrolling preset to the input/output channel dimensions (C, K), with
//! fallback unrolling of other dimensions only when C·K cannot fill the
//! PE array, followed by a throughput-driven tiling search.
//!
//! As the paper observes (Fig 7), the restrictive unrolling preset
//! shrinks the search space but sometimes excludes better mappings —
//! e.g. solutions that reuse the output both temporally and spatially.

use std::time::Instant;

use sunstone::ordering::OrderingTrie;
use sunstone::tiling::enumerate_tiles;
use sunstone::unrolling::enumerate_unrollings;
use sunstone_arch::{ArchSpec, Binding, LevelId};
use sunstone_ir::{DimSet, Workload};
use sunstone_mapping::{Mapping, MappingLevel, ValidationContext};
use sunstone_model::CostModel;

use crate::{MapOutcome, MapStats, Mapper};

/// The Interstellar-like mapper.
#[derive(Debug, Clone)]
pub struct InterstellarMapper {
    name: String,
    /// Utilization below which the C/K preset falls back to other dims.
    full_util_threshold: f64,
}

impl InterstellarMapper {
    /// Creates the mapper with the paper's settings: C/K preset, fallback
    /// when the preset cannot fully utilize the grid.
    pub fn new() -> Self {
        InterstellarMapper { name: "INTER".to_string(), full_util_threshold: 1.0 }
    }
}

impl Default for InterstellarMapper {
    fn default() -> Self {
        Self::new()
    }
}

impl Mapper for InterstellarMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, workload: &Workload, arch: &ArchSpec) -> MapOutcome {
        let start = Instant::now();
        let mut stats = MapStats::default();
        // DNN-specific: requires C and K dimensions.
        let (Some(c), Some(k)) = (workload.dim_by_name("C"), workload.dim_by_name("K")) else {
            stats.elapsed = start.elapsed();
            return MapOutcome::invalid(
                &self.name,
                "workload has no C/K channel dimensions (DNN-specific mapper)",
                stats,
            );
        };
        if arch.num_memory_levels() > 3 || arch.spatial_levels().count() > 1 {
            stats.elapsed = start.elapsed();
            return MapOutcome::invalid(&self.name, "multi-level hierarchies unsupported", stats);
        }
        let binding = match Binding::resolve(arch, workload) {
            Ok(b) => b,
            Err(e) => return MapOutcome::invalid(&self.name, e.to_string(), stats),
        };
        let ctx = ValidationContext::new(workload, arch, &binding);
        let model = CostModel::new(workload, arch, &binding);
        let ndims = workload.num_dims();
        let sizes = workload.dim_sizes();
        let mems: Vec<usize> = arch.memory_levels().map(|(id, _)| id.index()).collect();
        let spatial = arch.spatial_levels().next().map(|(id, s)| (id.index(), s.units));

        // Preset unrolling: C and K only; fall back to every dimension if
        // the preset cannot fully utilize the grid.
        let unrolls: Vec<Vec<u64>> = match spatial {
            None => vec![vec![1; ndims]],
            Some((_, units)) => {
                let ck: DimSet = [c, k].into_iter().collect();
                let preset: Vec<Vec<u64>> =
                    enumerate_unrollings(&sizes, ck, units, |_| true, 0.0, true)
                        .unrollings
                        .into_iter()
                        .map(Vec::from)
                        .collect();
                let best_util = preset
                    .iter()
                    .map(|u| u.iter().product::<u64>() as f64 / units as f64)
                    .fold(0.0f64, f64::max);
                if best_util >= self.full_util_threshold {
                    preset
                } else {
                    let mut all: Vec<Vec<u64>> = enumerate_unrollings(
                        &sizes,
                        DimSet::first_n(ndims),
                        units,
                        |_| true,
                        0.5,
                        true,
                    )
                    .unrollings
                    .into_iter()
                    .map(Vec::from)
                    .collect();
                    all.extend(preset);
                    all
                }
            }
        };
        if unrolls.is_empty() {
            stats.elapsed = start.elapsed();
            return MapOutcome::invalid(
                &self.name,
                "no mapping can use the preset unrolling",
                stats,
            );
        }

        let trie = OrderingTrie::new(workload);
        let (orderings, _) = trie.candidates(DimSet::first_n(ndims));
        let mut best: Option<(f64, Mapping)> = None;
        for unroll in &unrolls {
            let quotas: Vec<u64> = sizes.iter().zip(unroll).map(|(s, u)| s / u).collect();
            // High-throughput tiling: maximal L1 tiles over all dims.
            let fits_l1 = |tile: &[u64]| {
                let mem = arch.level(LevelId(mems[0])).as_memory().expect("memory");
                let mut needed = 0u64;
                for t in workload.tensor_ids() {
                    if binding.partition_of(LevelId(mems[0]), t).is_some() {
                        let tensor = workload.tensor(t);
                        needed += tensor.footprint(tile) * u64::from(tensor.bits()).div_ceil(8);
                    }
                }
                mem.partitions.iter().map(|p| p.capacity.bytes().unwrap_or(u64::MAX)).sum::<u64>()
                    >= needed
            };
            let l1_tiles =
                enumerate_tiles(&vec![1; ndims], &quotas, DimSet::first_n(ndims), fits_l1, true)
                    .tiles;
            for l1_tile in &l1_tiles {
                for ordering in &orderings {
                    let mapping = assemble(
                        workload,
                        arch,
                        &mems,
                        spatial.map(|(p, _)| p),
                        l1_tile,
                        unroll,
                        &ordering.order,
                    );
                    match ctx.validate(&mapping) {
                        Ok(()) => {
                            stats.evaluated += 1;
                            let report = model.evaluate_unchecked(&mapping);
                            if best.as_ref().is_none_or(|(e, _)| report.edp < *e) {
                                best = Some((report.edp, mapping));
                            }
                        }
                        Err(_) => stats.invalid += 1,
                    }
                }
            }
        }
        stats.elapsed = start.elapsed();
        match best {
            Some((_, mapping)) => {
                let report = model.evaluate_unchecked(&mapping);
                MapOutcome::valid(&self.name, mapping, report, stats)
            }
            None => {
                MapOutcome::invalid(&self.name, "no mapping can use the preset unrolling", stats)
            }
        }
    }
}

fn assemble(
    workload: &Workload,
    arch: &ArchSpec,
    mems: &[usize],
    spatial: Option<usize>,
    l1_tile: &[u64],
    unroll: &[u64],
    order: &[sunstone_ir::DimId],
) -> Mapping {
    let sizes = workload.dim_sizes();
    let mut mapping = Mapping::streaming(workload, arch);
    for level in mapping.levels_mut() {
        level.factors_mut().iter_mut().for_each(|f| *f = 1);
    }
    for d in 0..sizes.len() {
        mapping.levels_mut()[mems[0]].factors_mut()[d] = l1_tile[d];
        if let Some(sp) = spatial {
            mapping.levels_mut()[sp].factors_mut()[d] = unroll[d];
        }
        let last = *mems.last().expect("memories exist");
        mapping.levels_mut()[last].factors_mut()[d] = sizes[d] / (l1_tile[d] * unroll[d]);
    }
    for &m in &mems[1..] {
        if let MappingLevel::Temporal(t) = &mut mapping.levels_mut()[m] {
            t.order = order.to_vec();
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_arch::presets;
    use sunstone_workloads::{tensor, ConvSpec, Precision};

    #[test]
    fn maps_a_conv_with_ck_unrolling() {
        let w = ConvSpec::new("t", 2, 64, 64, 14, 14, 3, 3, 1).inference(Precision::conventional());
        let out = InterstellarMapper::new().map(&w, &presets::conventional());
        assert!(out.is_valid(), "{:?}", out.invalid_reason);
        // The chosen unroll uses C and/or K (64 × 64 covers 1024 PEs).
        let m = out.mapping.unwrap();
        let c = w.dim_by_name("C").unwrap();
        let k = w.dim_by_name("K").unwrap();
        let sp = &m.levels()[1];
        let ck_units = sp.factors()[c.index()] * sp.factors()[k.index()];
        assert!(ck_units >= 512, "C/K dominate the unroll: {:?}", sp.factors());
    }

    #[test]
    fn rejects_non_dnn_workloads() {
        let w = tensor::mttkrp(tensor::Shape3(64, 64, 64), 32);
        let out = InterstellarMapper::new().map(&w, &presets::conventional());
        assert!(!out.is_valid());
    }

    #[test]
    fn rejects_simba() {
        let w = ConvSpec::new("t", 2, 64, 64, 14, 14, 3, 3, 1).inference(Precision::simba());
        let out = InterstellarMapper::new().map(&w, &presets::simba_like());
        assert!(!out.is_valid());
    }
}
