//! Baseline mappers the paper compares Sunstone against (Section V-B).
//!
//! Each baseline reimplements the *search strategy* of the corresponding
//! tool over the same workload/architecture/cost-model substrate, so the
//! comparisons measure the strategies rather than implementation details:
//!
//! * [`TimeloopMapper`] — Timeloop's random sampling with `timeout` and
//!   `victory_condition` termination (Table V's TL-fast / TL-slow).
//! * [`DMazeMapper`] — dMazeRunner's utilization-threshold directed
//!   search; assumes symmetric convolutions and 2–3 memory levels, and
//!   returns *invalid* when its thresholds cannot be met (Fig 7).
//! * [`InterstellarMapper`] — Interstellar's preset C/K spatial unrolling
//!   with fallback, plus a throughput-driven tiling search.
//! * [`CosaMapper`] — CoSA's one-shot linear-relaxation assignment of
//!   prime factors to levels; fast, but its log-linear capacity
//!   approximation ignores sliding-window halos and can overflow real
//!   buffers, reproducing the invalid-mapping behaviour of Fig 8.
//! * [`GammaMapper`] — a GAMMA-like genetic algorithm, representing the
//!   black-box optimizers of the paper's related work (§VI).
//!
//! All implement the [`Mapper`] trait; [`SunstoneMapper`] wraps the real
//! scheduler behind the same interface for the benchmark harness.
//! [`space`] provides the optimization-space size estimators behind
//! Table I.

mod cosa;
mod dmaze;
mod gamma;
mod interstellar;
mod mapper;
pub mod space;
mod timeloop;

pub use cosa::CosaMapper;
pub use dmaze::{DMazeConfig, DMazeMapper};
pub use gamma::{GammaConfig, GammaMapper};
pub use interstellar::InterstellarMapper;
pub use mapper::{MapOutcome, MapStats, Mapper, SunstoneMapper};
pub use timeloop::{TimeloopConfig, TimeloopMapper};
