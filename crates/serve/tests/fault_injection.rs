//! Chaos soak for the serve layer, compiled only under the
//! `fault-injection` feature:
//!
//! ```text
//! cargo test -p sunstone-serve --features fault-injection --test fault_injection
//! ```
//!
//! Every serve failpoint ([`faultpoint::SERVE_POINTS`]) is cycled
//! through a panic and a delay while eight concurrent clients hammer the
//! daemon. A panic at `serve.store_append` fires *between the two write
//! halves* of a record line, so it doubles as the short-write fault: a
//! genuinely torn record on disk that the next open must quarantine.
//!
//! Invariants per cycle:
//! * no served response ever carries a wrong mapping fingerprint;
//! * every client finishes (connection deaths are retried) and every
//!   join is bounded — a wedged daemon fails the test, it does not hang
//!   it;
//! * after the cycle, a fresh daemon restarts from whatever the store
//!   holds and serves every layer correctly.

#![cfg(feature = "fault-injection")]

use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::Duration;

use sunstone::faultpoint::{self, FaultAction};
use sunstone::fingerprint::mapping_fingerprint;
use sunstone::prelude::*;
use sunstone_ir::Workload;
use sunstone_serve::json::{self, Json};
use sunstone_serve::wire::{self, workload_to_json};
use sunstone_serve::{ServeConfig, Server};

/// Bound on every join in the soak: a daemon or client that has not
/// finished by then is wedged, which is exactly the failure this test
/// exists to catch.
const WEDGE_TIMEOUT: Duration = Duration::from_secs(30);

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let n = b.dim("N", 1);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [n.expr(), cd.expr(), p + rd, q + s]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [n.expr(), kd.expr(), p.expr(), q.expr()]);
    b.build().unwrap()
}

fn mix() -> Vec<Workload> {
    vec![conv("a", 8, 8, 7, 3), conv("b", 16, 4, 7, 1), conv("c", 4, 16, 14, 3)]
}

/// The per-cycle layer: a fast shape no other cycle (and nothing in
/// [`mix`]) shares, so every cycle forces at least one fresh search —
/// and therefore one store append and one fsync — no matter how warm
/// the store already is. Structural uniqueness matters: the context
/// fingerprint hashes the shape, not the workload name.
fn cycle_layer(cycle: usize) -> Workload {
    conv(&format!("cycle{cycle}"), 8 + 4 * cycle as u64, 4, 5, 1)
}

/// One request over a fresh connection. `Err` is a transient transport
/// failure (the daemon may have injected a panic into this very
/// handler); `Ok` is a parsed response frame.
fn request_once(socket: &Path, w: &Workload) -> Result<Json, String> {
    let stream = std::os::unix::net::UnixStream::connect(socket).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(WEDGE_TIMEOUT)).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = std::io::BufWriter::new(stream);
    let req = Json::Obj(vec![
        ("op".into(), Json::Str("schedule".into())),
        ("arch".into(), Json::Str("conventional".into())),
        ("workload".into(), workload_to_json(w)),
    ]);
    wire::write_frame(&mut writer, &req.to_string()).map_err(|e| e.to_string())?;
    let payload = wire::read_frame(&mut reader)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| "connection closed before a response".to_string())?;
    json::parse(&payload).map_err(|e| e.to_string())
}

/// Requests `w` until an `ok:true` response arrives (faulted attempts
/// retry on fresh connections) and returns its mapping fingerprint.
fn request_fp(socket: &Path, w: &Workload) -> u64 {
    let mut last = String::new();
    for _ in 0..10 {
        match request_once(socket, w) {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                return v.get("mapping_fp").and_then(Json::as_u64_str).expect("mapping_fp");
            }
            Ok(v) => last = v.to_string(),
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no ok response for {:?} after 10 attempts (last: {last})", w.name());
}

/// Starts a daemon on its own thread, panic-contained: an injected fault
/// that unwinds out of `run` (e.g. at `serve.compact_rename`) must look
/// like a daemon crash, not a test crash. Returns the completion channel.
fn start_contained(config: ServeConfig) -> mpsc::Receiver<()> {
    let server = Server::bind(config).expect("binds");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = std::panic::catch_unwind(AssertUnwindSafe(move || {
            let _ = server.run();
        }));
        let _ = tx.send(());
    });
    rx
}

/// Sends a shutdown request, retrying while the daemon sorts itself out
/// after an injected fault.
fn shutdown(socket: &Path) {
    for _ in 0..5 {
        let ok = (|| {
            let stream = std::os::unix::net::UnixStream::connect(socket).ok()?;
            stream.set_read_timeout(Some(WEDGE_TIMEOUT)).unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().ok()?);
            let mut writer = std::io::BufWriter::new(stream);
            let req = Json::Obj(vec![("op".into(), Json::Str("shutdown".into()))]);
            wire::write_frame(&mut writer, &req.to_string()).ok()?;
            let payload = wire::read_frame(&mut reader).ok()??;
            json::parse(&payload).ok()
        })();
        if ok.and_then(|v| v.get("ok").and_then(Json::as_bool)) == Some(true) {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon refused shutdown after 5 attempts");
}

fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("sunstone-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    (base.join("sock"), base.join("store"))
}

#[test]
fn chaos_soak_every_serve_failpoint_under_concurrent_clients() {
    const CLIENTS: usize = 8;
    let (socket, store) = scratch("soak");

    // Library-path references for every layer any cycle will request.
    let cycles: Vec<(&'static str, FaultAction)> = sunstone::faultpoint::SERVE_POINTS
        .iter()
        .flat_map(|p| {
            [(*p, FaultAction::Panic), (*p, FaultAction::Delay(Duration::from_millis(30)))]
        })
        .collect();
    let mut layers = mix();
    for cycle in 0..cycles.len() {
        layers.push(cycle_layer(cycle));
    }
    let reference = Scheduler::new(SunstoneConfig::default());
    let arch = wire::arch_by_name("conventional").unwrap();
    let expected: Vec<u64> = layers
        .iter()
        .map(|w| mapping_fingerprint(&reference.schedule(w, &arch).expect("reference").mapping))
        .collect();

    for (cycle, (point, action)) in cycles.into_iter().enumerate() {
        faultpoint::disarm_all();
        faultpoint::arm(point, 1, action.clone());
        let daemon = start_contained(ServeConfig::new(&socket).with_store(&store));

        // Eight clients walk the three shared layers plus this cycle's
        // fresh one, each from a different offset, retrying through
        // whatever the armed fault does to their connections.
        let work: Vec<Workload> =
            vec![mix()[0].clone(), mix()[1].clone(), mix()[2].clone(), cycle_layer(cycle)];
        let want = [expected[0], expected[1], expected[2], expected[3 + cycle]];
        let (tx, rx) = mpsc::channel();
        for i in 0..CLIENTS {
            let tx = tx.clone();
            let socket = socket.clone();
            let work = work.clone();
            std::thread::spawn(move || {
                let fps: Vec<(usize, u64)> = (0..work.len())
                    .map(|j| {
                        let idx = (i + j) % work.len();
                        (idx, request_fp(&socket, &work[idx]))
                    })
                    .collect();
                let _ = tx.send(fps);
            });
        }
        drop(tx);
        for _ in 0..CLIENTS {
            let fps = rx
                .recv_timeout(WEDGE_TIMEOUT)
                .unwrap_or_else(|_| panic!("client wedged in cycle {cycle} ({point})"));
            for (idx, fp) in fps {
                assert_eq!(
                    fp, want[idx],
                    "cycle {cycle} ({point}, {action:?}): wrong fingerprint served for layer {idx}"
                );
            }
        }
        shutdown(&socket);
        daemon
            .recv_timeout(WEDGE_TIMEOUT)
            .unwrap_or_else(|_| panic!("daemon wedged at shutdown in cycle {cycle} ({point})"));
        // Checked after shutdown because `serve.compact_rename` only
        // fires during the shutdown compaction itself.
        assert!(
            faultpoint::hits(point) >= 1,
            "cycle {cycle}: failpoint {point} never fired, the soak tested nothing"
        );

        // Recovery gate: with no faults armed, a fresh daemon must start
        // from whatever the store now holds (including torn appends and
        // aborted compactions) and serve every layer correctly.
        faultpoint::disarm_all();
        let daemon = start_contained(ServeConfig::new(&socket).with_store(&store));
        for (j, w) in work.iter().enumerate() {
            assert_eq!(
                request_fp(&socket, w),
                want[j],
                "cycle {cycle} ({point}): wrong fingerprint after restart-from-store"
            );
        }
        shutdown(&socket);
        daemon
            .recv_timeout(WEDGE_TIMEOUT)
            .unwrap_or_else(|_| panic!("recovery daemon wedged in cycle {cycle} ({point})"));
    }
}
