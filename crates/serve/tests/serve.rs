//! End-to-end daemon tests: concurrent clients, bit-identity against the
//! library path, crash-safety of the store, and restart warm-loading.
//!
//! Each test binds its own socket under the temp dir and runs the accept
//! loop on a background thread; `shutdown` requests (the same path real
//! clients use) bring the daemon down.

use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use sunstone::fingerprint::mapping_fingerprint;
use sunstone::prelude::*;
use sunstone_ir::Workload;
use sunstone_serve::json::{self, Json};
use sunstone_serve::wire::{self, workload_to_json};
use sunstone_serve::{ServeConfig, Server};

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let n = b.dim("N", 1);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [n.expr(), cd.expr(), p + rd, q + s]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [n.expr(), kd.expr(), p.expr(), q.expr()]);
    b.build().unwrap()
}

/// A small mixed-shape layer set (fast to search in debug builds).
fn mix() -> Vec<Workload> {
    vec![conv("a", 8, 8, 7, 3), conv("b", 16, 4, 7, 1), conv("c", 4, 16, 14, 3)]
}

/// Unique per-test scratch paths (socket + store dir).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("sunstone-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    (base.join("sock"), base.join("store"))
}

fn start(config: ServeConfig) -> JoinHandle<()> {
    let server = Server::bind(config).expect("binds");
    std::thread::spawn(move || server.run().expect("runs"))
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        let stream = UnixStream::connect(socket).expect("connects");
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { reader, writer: BufWriter::new(stream) }
    }

    fn call(&mut self, request: &Json) -> Json {
        wire::write_frame(&mut self.writer, &request.to_string()).expect("writes");
        let payload = wire::read_frame(&mut self.reader).expect("reads").expect("response");
        json::parse(&payload).expect("valid response JSON")
    }

    fn schedule(&mut self, w: &Workload) -> Json {
        self.call(&Json::Obj(vec![
            ("op".into(), Json::Str("schedule".into())),
            ("arch".into(), Json::Str("conventional".into())),
            ("workload".into(), workload_to_json(w)),
        ]))
    }

    fn stats(&mut self) -> Json {
        self.call(&Json::Obj(vec![("op".into(), Json::Str("cache_stats".into()))]))
    }

    fn shutdown(&mut self) {
        let r = self.call(&Json::Obj(vec![("op".into(), Json::Str("shutdown".into()))]));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    }
}

fn fp_of(response: &Json) -> u64 {
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true), "daemon error: {response}");
    response.get("mapping_fp").and_then(Json::as_u64_str).expect("mapping_fp")
}

fn source_of(response: &Json) -> &str {
    response.get("source").and_then(Json::as_str).expect("source")
}

/// Library-path reference fingerprints, same config as the daemon.
fn reference_fps(layers: &[Workload]) -> Vec<u64> {
    let scheduler = Scheduler::new(SunstoneConfig::default());
    let arch = wire::arch_by_name("conventional").unwrap();
    layers
        .iter()
        .map(|w| mapping_fingerprint(&scheduler.schedule(w, &arch).expect("schedules").mapping))
        .collect()
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let (socket, _) = scratch("concurrent");
    let handle = start(ServeConfig::new(&socket));
    let layers = mix();
    let expected = reference_fps(&layers);

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let socket = socket.clone();
            let layers = layers.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket);
                // Each client walks the mix from a different offset, so
                // every layer is requested concurrently by several
                // clients, some while the first search is in flight.
                (0..layers.len())
                    .map(|j| {
                        let w = &layers[(i + j) % layers.len()];
                        ((i + j) % layers.len(), fp_of(&client.schedule(w)))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in clients {
        for (idx, fp) in handle.join().expect("client thread") {
            assert_eq!(fp, expected[idx], "served mapping diverged from the library");
        }
    }

    let mut control = Client::connect(&socket);
    let stats = control.stats();
    assert_eq!(stats.get("searches").and_then(Json::as_f64), Some(3.0), "one search per layer");
    assert_eq!(stats.get("errors").and_then(Json::as_f64), Some(0.0));
    control.shutdown();
    handle.join().unwrap();
}

#[test]
fn client_killed_mid_frame_leaves_daemon_serving() {
    let (socket, _) = scratch("killed");
    let handle = start(ServeConfig::new(&socket));
    let layers = mix();
    let expected = reference_fps(&layers);

    let mut survivor = Client::connect(&socket);
    assert_eq!(fp_of(&survivor.schedule(&layers[0])), expected[0]);

    // A client dies mid-request: the frame header promises 512 bytes but
    // the connection drops after 7. The daemon must drop the connection
    // and keep serving everyone else.
    {
        let mut doomed = UnixStream::connect(&socket).unwrap();
        doomed.write_all(&512u32.to_le_bytes()).unwrap();
        doomed.write_all(b"{\"op\":\"").unwrap();
        doomed.flush().unwrap();
    } // dropped here, mid-frame

    for (i, w) in layers.iter().enumerate() {
        assert_eq!(fp_of(&survivor.schedule(w)), expected[i], "daemon wedged after client death");
    }
    let mut fresh = Client::connect(&socket);
    assert_eq!(fp_of(&fresh.schedule(&layers[1])), expected[1], "new connections still accepted");
    survivor.shutdown();
    handle.join().unwrap();
}

#[test]
fn schedule_batch_answers_every_layer() {
    let (socket, _) = scratch("batch");
    let handle = start(ServeConfig::new(&socket));
    let layers = mix();
    let expected = reference_fps(&layers);

    let mut client = Client::connect(&socket);
    let response = client.call(&Json::Obj(vec![
        ("op".into(), Json::Str("schedule_batch".into())),
        ("arch".into(), Json::Str("conventional".into())),
        ("workloads".into(), Json::Arr(layers.iter().map(workload_to_json).collect())),
    ]));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let rows = response.get("layers").and_then(Json::as_arr).expect("layers");
    assert_eq!(rows.len(), layers.len());
    for (row, fp) in rows.iter().zip(&expected) {
        assert_eq!(fp_of(row), *fp);
    }
    client.shutdown();
    handle.join().unwrap();
}

/// Snapshot of a store directory taken *before* clean shutdown — exactly
/// the on-disk state an unclean daemon death leaves behind (per-record
/// flushed appends, no compaction).
fn snapshot_store(store: &Path, tag: &str) -> PathBuf {
    let dest = store.with_file_name(format!("store-{tag}"));
    std::fs::create_dir_all(&dest).unwrap();
    for entry in std::fs::read_dir(store).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dest.join(entry.file_name())).unwrap();
    }
    dest
}

#[test]
fn store_survives_unclean_shutdown_and_truncated_tail() {
    let (socket, store) = scratch("unclean");
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let layers = mix();
    let expected = reference_fps(&layers);

    let mut client = Client::connect(&socket);
    for w in &layers {
        assert_eq!(source_of(&client.schedule(w)), "search");
    }
    // Crash state: appends are flushed per record, compaction never ran.
    let crashed = snapshot_store(&store, "crashed");
    client.shutdown();
    handle.join().unwrap();

    // A torn final append (daemon died mid-write) on every shard.
    let mut torn_any = false;
    for entry in std::fs::read_dir(&crashed).unwrap() {
        let path = entry.unwrap().path();
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"ctx_fp\":\"12345\",\"mapping_").unwrap();
        torn_any = true;
    }
    assert!(torn_any, "store had no shards to tear");

    let socket2 = socket.with_file_name("sock2");
    let handle2 = start(ServeConfig::new(&socket2).with_store(&crashed));
    let mut client2 = Client::connect(&socket2);
    for (i, w) in layers.iter().enumerate() {
        let response = client2.schedule(w);
        assert_eq!(source_of(&response), "store", "layer {i} not served from the store");
        assert_eq!(fp_of(&response), expected[i]);
    }
    let stats = client2.stats();
    let store_stats = stats.get("store").expect("store stats");
    assert_eq!(store_stats.get("loaded").and_then(Json::as_f64), Some(layers.len() as f64));
    assert_eq!(store_stats.get("load_skipped").and_then(Json::as_f64), Some(0.0));
    assert!(
        store_stats.get("corrupt_lines").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
        "torn tails must be counted"
    );
    assert_eq!(stats.get("store_hits").and_then(Json::as_f64), Some(layers.len() as f64));
    client2.shutdown();
    handle2.join().unwrap();
}

#[test]
fn restarted_daemon_serves_repeated_layer_from_store() {
    let (socket, store) = scratch("restart");
    let layers = mix();

    // Session 1: search, persist, clean shutdown (compacts).
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    let first = client.schedule(&layers[0]);
    assert_eq!(source_of(&first), "search");
    let fp = fp_of(&first);
    // A repeat within the session is a memo hit, not a store hit.
    assert_eq!(source_of(&client.schedule(&layers[0])), "memo");
    client.shutdown();
    handle.join().unwrap();

    // Session 2: the very first request for the repeated layer must be
    // answered from the warm-loaded store, and counted as such.
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    let again = client.schedule(&layers[0]);
    assert_eq!(source_of(&again), "store");
    assert_eq!(fp_of(&again), fp, "restart changed the served mapping");
    let stats = client.stats();
    assert_eq!(stats.get("store_hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("searches").and_then(Json::as_f64), Some(0.0));
    assert_eq!(stats.get("store").and_then(|s| s.get("loaded")).and_then(Json::as_f64), Some(1.0));
    client.shutdown();
    handle.join().unwrap();
}
