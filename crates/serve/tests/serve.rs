//! End-to-end daemon tests: concurrent clients, bit-identity against the
//! library path, crash-safety of the store, and restart warm-loading.
//!
//! Each test binds its own socket under the temp dir and runs the accept
//! loop on a background thread; `shutdown` requests (the same path real
//! clients use) bring the daemon down.

use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use sunstone::fingerprint::mapping_fingerprint;
use sunstone::prelude::*;
use sunstone_ir::Workload;
use sunstone_serve::json::{self, Json};
use sunstone_serve::wire::{self, workload_to_json};
use sunstone_serve::{ServeConfig, ServeError, Server};

fn conv(name: &str, k: u64, c: u64, pq: u64, r: u64) -> Workload {
    let mut b = Workload::builder(name);
    let n = b.dim("N", 1);
    let kd = b.dim("K", k);
    let cd = b.dim("C", c);
    let p = b.dim("P", pq);
    let q = b.dim("Q", pq);
    let rd = b.dim("R", r);
    let s = b.dim("S", r);
    b.input("ifmap", [n.expr(), cd.expr(), p + rd, q + s]);
    b.input("weight", [kd.expr(), cd.expr(), rd.expr(), s.expr()]);
    b.output("ofmap", [n.expr(), kd.expr(), p.expr(), q.expr()]);
    b.build().unwrap()
}

/// A small mixed-shape layer set (fast to search in debug builds).
fn mix() -> Vec<Workload> {
    vec![conv("a", 8, 8, 7, 3), conv("b", 16, 4, 7, 1), conv("c", 4, 16, 14, 3)]
}

/// Unique per-test scratch paths (socket + store dir).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("sunstone-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    (base.join("sock"), base.join("store"))
}

fn start(config: ServeConfig) -> JoinHandle<()> {
    let server = Server::bind(config).expect("binds");
    std::thread::spawn(move || server.run().expect("runs"))
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        let stream = UnixStream::connect(socket).expect("connects");
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { reader, writer: BufWriter::new(stream) }
    }

    fn call(&mut self, request: &Json) -> Json {
        wire::write_frame(&mut self.writer, &request.to_string()).expect("writes");
        let payload = wire::read_frame(&mut self.reader).expect("reads").expect("response");
        json::parse(&payload).expect("valid response JSON")
    }

    fn schedule(&mut self, w: &Workload) -> Json {
        self.call(&Json::Obj(vec![
            ("op".into(), Json::Str("schedule".into())),
            ("arch".into(), Json::Str("conventional".into())),
            ("workload".into(), workload_to_json(w)),
        ]))
    }

    fn stats(&mut self) -> Json {
        self.call(&Json::Obj(vec![("op".into(), Json::Str("cache_stats".into()))]))
    }

    fn shutdown(&mut self) {
        let r = self.call(&Json::Obj(vec![("op".into(), Json::Str("shutdown".into()))]));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    }
}

fn fp_of(response: &Json) -> u64 {
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true), "daemon error: {response}");
    response.get("mapping_fp").and_then(Json::as_u64_str).expect("mapping_fp")
}

fn source_of(response: &Json) -> &str {
    response.get("source").and_then(Json::as_str).expect("source")
}

/// Library-path reference fingerprints, same config as the daemon.
fn reference_fps(layers: &[Workload]) -> Vec<u64> {
    let scheduler = Scheduler::new(SunstoneConfig::default());
    let arch = wire::arch_by_name("conventional").unwrap();
    layers
        .iter()
        .map(|w| mapping_fingerprint(&scheduler.schedule(w, &arch).expect("schedules").mapping))
        .collect()
}

#[test]
fn concurrent_clients_get_bit_identical_results() {
    let (socket, _) = scratch("concurrent");
    let handle = start(ServeConfig::new(&socket));
    let layers = mix();
    let expected = reference_fps(&layers);

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let socket = socket.clone();
            let layers = layers.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket);
                // Each client walks the mix from a different offset, so
                // every layer is requested concurrently by several
                // clients, some while the first search is in flight.
                (0..layers.len())
                    .map(|j| {
                        let w = &layers[(i + j) % layers.len()];
                        ((i + j) % layers.len(), fp_of(&client.schedule(w)))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in clients {
        for (idx, fp) in handle.join().expect("client thread") {
            assert_eq!(fp, expected[idx], "served mapping diverged from the library");
        }
    }

    let mut control = Client::connect(&socket);
    let stats = control.stats();
    assert_eq!(stats.get("searches").and_then(Json::as_f64), Some(3.0), "one search per layer");
    assert_eq!(stats.get("errors").and_then(Json::as_f64), Some(0.0));
    control.shutdown();
    handle.join().unwrap();
}

#[test]
fn client_killed_mid_frame_leaves_daemon_serving() {
    let (socket, _) = scratch("killed");
    let handle = start(ServeConfig::new(&socket));
    let layers = mix();
    let expected = reference_fps(&layers);

    let mut survivor = Client::connect(&socket);
    assert_eq!(fp_of(&survivor.schedule(&layers[0])), expected[0]);

    // A client dies mid-request: the frame header promises 512 bytes but
    // the connection drops after 7. The daemon must drop the connection
    // and keep serving everyone else.
    {
        let mut doomed = UnixStream::connect(&socket).unwrap();
        doomed.write_all(&512u32.to_le_bytes()).unwrap();
        doomed.write_all(b"{\"op\":\"").unwrap();
        doomed.flush().unwrap();
    } // dropped here, mid-frame

    for (i, w) in layers.iter().enumerate() {
        assert_eq!(fp_of(&survivor.schedule(w)), expected[i], "daemon wedged after client death");
    }
    let mut fresh = Client::connect(&socket);
    assert_eq!(fp_of(&fresh.schedule(&layers[1])), expected[1], "new connections still accepted");
    survivor.shutdown();
    handle.join().unwrap();
}

#[test]
fn schedule_batch_answers_every_layer() {
    let (socket, _) = scratch("batch");
    let handle = start(ServeConfig::new(&socket));
    let layers = mix();
    let expected = reference_fps(&layers);

    let mut client = Client::connect(&socket);
    let response = client.call(&Json::Obj(vec![
        ("op".into(), Json::Str("schedule_batch".into())),
        ("arch".into(), Json::Str("conventional".into())),
        ("workloads".into(), Json::Arr(layers.iter().map(workload_to_json).collect())),
    ]));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let rows = response.get("layers").and_then(Json::as_arr).expect("layers");
    assert_eq!(rows.len(), layers.len());
    for (row, fp) in rows.iter().zip(&expected) {
        assert_eq!(fp_of(row), *fp);
    }
    client.shutdown();
    handle.join().unwrap();
}

/// Snapshot of a store directory taken *before* clean shutdown — exactly
/// the on-disk state an unclean daemon death leaves behind (per-record
/// flushed appends, no compaction).
fn snapshot_store(store: &Path, tag: &str) -> PathBuf {
    let dest = store.with_file_name(format!("store-{tag}"));
    std::fs::create_dir_all(&dest).unwrap();
    for entry in std::fs::read_dir(store).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dest.join(entry.file_name())).unwrap();
    }
    dest
}

#[test]
fn store_survives_unclean_shutdown_and_truncated_tail() {
    let (socket, store) = scratch("unclean");
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let layers = mix();
    let expected = reference_fps(&layers);

    let mut client = Client::connect(&socket);
    for w in &layers {
        assert_eq!(source_of(&client.schedule(w)), "search");
    }
    // Crash state: appends are flushed per record, compaction never ran.
    let crashed = snapshot_store(&store, "crashed");
    client.shutdown();
    handle.join().unwrap();

    // A torn final append (daemon died mid-write) on every shard.
    let mut torn_any = false;
    for entry in std::fs::read_dir(&crashed).unwrap() {
        let path = entry.unwrap().path();
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"ctx_fp\":\"12345\",\"mapping_").unwrap();
        torn_any = true;
    }
    assert!(torn_any, "store had no shards to tear");

    let socket2 = socket.with_file_name("sock2");
    let handle2 = start(ServeConfig::new(&socket2).with_store(&crashed));
    let mut client2 = Client::connect(&socket2);
    for (i, w) in layers.iter().enumerate() {
        let response = client2.schedule(w);
        assert_eq!(source_of(&response), "store", "layer {i} not served from the store");
        assert_eq!(fp_of(&response), expected[i]);
    }
    let stats = client2.stats();
    let store_stats = stats.get("store").expect("store stats");
    assert_eq!(store_stats.get("loaded").and_then(Json::as_f64), Some(layers.len() as f64));
    assert_eq!(store_stats.get("load_skipped").and_then(Json::as_f64), Some(0.0));
    assert!(
        store_stats.get("corrupt_lines").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
        "torn tails must be counted"
    );
    assert_eq!(stats.get("store_hits").and_then(Json::as_f64), Some(layers.len() as f64));
    client2.shutdown();
    handle2.join().unwrap();
}

#[test]
fn restarted_daemon_serves_repeated_layer_from_store() {
    let (socket, store) = scratch("restart");
    let layers = mix();

    // Session 1: search, persist, clean shutdown (compacts).
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    let first = client.schedule(&layers[0]);
    assert_eq!(source_of(&first), "search");
    let fp = fp_of(&first);
    // A repeat within the session is a memo hit, not a store hit.
    assert_eq!(source_of(&client.schedule(&layers[0])), "memo");
    client.shutdown();
    handle.join().unwrap();

    // Session 2: the very first request for the repeated layer must be
    // answered from the warm-loaded store, and counted as such.
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    let again = client.schedule(&layers[0]);
    assert_eq!(source_of(&again), "store");
    assert_eq!(fp_of(&again), fp, "restart changed the served mapping");
    let stats = client.stats();
    assert_eq!(stats.get("store_hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("searches").and_then(Json::as_f64), Some(0.0));
    assert_eq!(stats.get("store").and_then(|s| s.get("loaded")).and_then(Json::as_f64), Some(1.0));
    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn bind_refuses_a_live_daemon_and_a_non_socket_but_claims_a_stale_socket() {
    let (socket, _) = scratch("bindsafety");
    let handle = start(ServeConfig::new(&socket));
    // Make sure the daemon is accepting before racing a second bind.
    let mut client = Client::connect(&socket);
    client.stats();

    // A second daemon must refuse to steal the live socket...
    match Server::bind(ServeConfig::new(&socket)) {
        Err(ServeError::AlreadyRunning { socket: s }) => assert_eq!(s, socket),
        other => panic!("expected AlreadyRunning, got {other:?}", other = other.err()),
    }
    // ...and the first daemon must be unharmed by the attempt.
    assert_eq!(client.stats().get("ok").and_then(Json::as_bool), Some(true));
    client.shutdown();
    handle.join().unwrap();

    // A plain file at the socket path is never deleted.
    let decoy = socket.with_file_name("decoy");
    std::fs::write(&decoy, b"operator data").unwrap();
    match Server::bind(ServeConfig::new(&decoy)) {
        Err(ServeError::NotASocket { path }) => assert_eq!(path, decoy),
        other => panic!("expected NotASocket, got {other:?}", other = other.err()),
    }
    assert_eq!(std::fs::read(&decoy).unwrap(), b"operator data");

    // A stale socket (bound once, daemon long gone, file left behind) is
    // taken over: connect gets ECONNREFUSED, so the path is reclaimed.
    let stale = socket.with_file_name("stale");
    drop(std::os::unix::net::UnixListener::bind(&stale).unwrap());
    assert!(stale.exists(), "listener drop must leave the socket file");
    let server = Server::bind(ServeConfig::new(&stale)).expect("stale socket is reclaimed");
    drop(server);
}

#[test]
fn protocol_violations_get_typed_responses() {
    let (socket, _) = scratch("protoerr");
    let handle = start(ServeConfig::new(&socket));

    // An over-MAX_FRAME length prefix: one typed protocol_error frame,
    // then close — not a silent drop.
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        let huge = (wire::MAX_FRAME as u32 + 1).to_le_bytes();
        w.write_all(&huge).unwrap();
        w.flush().unwrap();
        let payload = wire::read_frame(&mut r).expect("typed response").expect("frame");
        let v = json::parse(&payload).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("protocol_error"));
        assert!(wire::read_frame(&mut r).expect("clean close").is_none(), "connection must close");
    }

    // Malformed JSON in a well-framed payload: same typed answer + close.
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        let mut r = BufReader::new(stream);
        wire::write_frame(&mut w, "{not json").unwrap();
        let payload = wire::read_frame(&mut r).expect("typed response").expect("frame");
        let v = json::parse(&payload).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("protocol_error"));
        assert!(wire::read_frame(&mut r).expect("clean close").is_none(), "connection must close");
    }

    // Valid JSON that is not a valid request: typed "protocol" error and
    // the connection stays usable (framing was never in doubt).
    let mut client = Client::connect(&socket);
    let v = client.call(&Json::Obj(vec![("op".into(), Json::Str("fly".into()))]));
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("protocol"));
    assert_eq!(fp_of(&client.schedule(&mix()[0])), reference_fps(&mix()[..1])[0]);
    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn connection_cap_sheds_with_typed_overloaded_response() {
    let (socket, _) = scratch("connshed");
    let mut config = ServeConfig::new(&socket);
    config.max_connections = 1;
    config.retry_after_ms = 40;
    let handle = start(config);

    // First client occupies the only slot (a completed call proves its
    // handler is registered, not still racing through accept).
    let mut first = Client::connect(&socket);
    first.stats();

    // Second connection: one overloaded frame, then EOF.
    {
        let stream = UnixStream::connect(&socket).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let payload = wire::read_frame(&mut r).expect("shed frame").expect("frame");
        let v = json::parse(&payload).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_f64), Some(40.0));
        assert!(wire::read_frame(&mut r).expect("clean close").is_none());
    }

    // The admitted client is untouched, and the shed is counted.
    let stats = first.stats();
    assert_eq!(stats.get("shed_connections").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("conns_live").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("conns_peak").and_then(Json::as_f64), Some(1.0));
    first.shutdown();
    handle.join().unwrap();
}

#[test]
fn search_queue_cap_sheds_requests_but_serves_memo_hits() {
    let (socket, _) = scratch("queueshed");
    let mut config = ServeConfig::new(&socket);
    // Zero queued searches: every memo miss is deterministically shed.
    config.max_queued_searches = 0;
    let handle = start(config);
    let layers = mix();

    let mut client = Client::connect(&socket);
    let v = client.schedule(&layers[0]);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("overloaded"));
    assert!(v.get("retry_after_ms").and_then(Json::as_f64).is_some());
    // The connection survives a shed request.
    let stats = client.stats();
    assert_eq!(stats.get("shed_requests").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("searches").and_then(Json::as_f64), Some(0.0));
    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn deadline_cut_search_serves_degraded_best_so_far_and_is_not_memoized() {
    let (socket, _) = scratch("deadline");
    let handle = start(ServeConfig::new(&socket));
    // A shape whose full search takes hundreds of milliseconds while its
    // first claim chunk takes single-digit milliseconds, so the deadline
    // reliably cuts the search *and* the degraded answer reliably lands
    // inside 2x the deadline.
    let w = conv("slow", 512, 512, 224, 3);
    let deadline_ms = 60u64;

    let mut client = Client::connect(&socket);
    let request = Json::Obj(vec![
        ("op".into(), Json::Str("schedule".into())),
        ("arch".into(), Json::Str("conventional".into())),
        ("workload".into(), workload_to_json(&w)),
        ("deadline_ms".into(), Json::Num(deadline_ms as f64)),
    ]);
    let started = std::time::Instant::now();
    let v = client.call(&request);
    let elapsed = started.elapsed();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "deadline hit is not an error");
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true), "must be marked degraded");
    assert_eq!(source_of(&v), "search");
    assert!(v.get("mapping_fp").and_then(Json::as_u64_str).is_some(), "carries a usable mapping");
    assert!(
        elapsed < std::time::Duration::from_millis(deadline_ms * 2),
        "deadline-hit response took {elapsed:?}, over 2x the {deadline_ms}ms deadline"
    );

    // A degraded result must not be memoized: the next request searches
    // again with its own budget instead of inheriting the cut result.
    let v2 = client.call(&request);
    assert_eq!(source_of(&v2), "search", "degraded results must not enter the memo");
    let stats = client.stats();
    assert_eq!(stats.get("searches").and_then(Json::as_f64), Some(2.0));
    assert_eq!(stats.get("degraded").and_then(Json::as_f64), Some(2.0));

    // An undeadlined request completes and serves the true best.
    let full = client.schedule(&w);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(full.get("degraded").and_then(Json::as_bool), Some(false));
    assert_eq!(source_of(&full), "search");
    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn flipped_bit_in_store_is_quarantined_and_never_served() {
    let (socket, store) = scratch("bitflip");
    let layers = mix();
    let expected = reference_fps(&layers);

    // Session 1: persist all three layers, clean shutdown.
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    for w in &layers {
        client.schedule(w);
    }
    client.shutdown();
    handle.join().unwrap();

    // Flip one bit in the middle of one record line of one shard.
    let mut flipped = false;
    for entry in std::fs::read_dir(&store).unwrap() {
        let path = entry.unwrap().path();
        if flipped || path.extension().map(|e| e != "log").unwrap_or(true) {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        if header_end + 1 >= bytes.len() {
            continue; // header-only shard
        }
        let rest = &bytes[header_end + 1..];
        let line_len = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
        let target = header_end + 1 + line_len / 2;
        bytes[target] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        flipped = true;
    }
    assert!(flipped, "no shard with a record to corrupt");

    // Session 2: the corrupt record is quarantined, counted, and its
    // layer re-searched to the same answer — never served from the bad
    // bytes.
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    let mut sources = Vec::new();
    for (i, w) in layers.iter().enumerate() {
        let v = client.schedule(w);
        assert_eq!(fp_of(&v), expected[i], "layer {i} served a wrong mapping after corruption");
        sources.push(source_of(&v).to_string());
    }
    assert_eq!(
        sources.iter().filter(|s| s.as_str() == "search").count(),
        1,
        "exactly the corrupted layer must be re-searched (sources: {sources:?})"
    );
    let stats = client.stats();
    let store_stats = stats.get("store").expect("store stats");
    assert_eq!(store_stats.get("quarantined").and_then(Json::as_f64), Some(1.0));
    assert_eq!(store_stats.get("load_skipped").and_then(Json::as_f64), Some(0.0));
    let sidecars = std::fs::read_dir(&store)
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().path().extension().map(|x| x == "quarantine").unwrap_or(false)
        })
        .count();
    assert_eq!(sidecars, 1, "the corrupt line must land in a quarantine sidecar");
    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn v1_fixture_migrates_serves_bit_identically_and_survives_compaction() {
    use sunstone_serve::MappingStore;

    // A store written by the v1 daemon (PR 8 vintage): plain JSON record
    // lines, no checksums. Committed as a fixture so migration is tested
    // against real historical bytes, not a synthetic reconstruction.
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/store-v1/shard-00.log");
    let raw = std::fs::read_to_string(&fixture).expect("fixture exists");
    let mut lines = raw.lines();
    let header = lines.next().expect("fixture header");
    assert!(header.contains("sunstone-store/v1"), "fixture must be v1");
    // (ctx_fp, mapping_fp, full record JSON) per fixture line.
    let expected: Vec<(u64, u64, Json)> = lines
        .map(|l| {
            let v = json::parse(l).expect("fixture line parses");
            (
                v.get("ctx_fp").and_then(Json::as_u64_str).unwrap(),
                v.get("mapping_fp").and_then(Json::as_u64_str).unwrap(),
                v,
            )
        })
        .collect();
    assert_eq!(expected.len(), 3, "fixture carries three records");

    let (socket, store) = scratch("v1migrate");
    std::fs::create_dir_all(&store).unwrap();
    // Patch the header's cost-model version to the current one: the
    // fixture pins the *layout*, not the pricing epoch (a genuinely
    // version-skewed shard is rightly discarded, which
    // version_skew_discards_the_shard covers at the unit level).
    let patched = raw.replacen(
        "\"cost_model\":1",
        &format!("\"cost_model\":{}", sunstone_model::COST_MODEL_VERSION),
        1,
    );
    std::fs::write(store.join("shard-00.log"), patched).unwrap();

    // Library-level: opening migrates, preserving every record field
    // bit-identically, and rewrites the shard as checksummed v2.
    {
        let s = MappingStore::open(&store, 1).unwrap();
        assert_eq!(s.stats().migrated_shards, 1);
        assert_eq!(s.stats().quarantined, 0);
        assert_eq!(s.len(), 3);
        for (ctx_fp, mapping_fp, v) in &expected {
            let rec = s.get(*ctx_fp).expect("record survived migration");
            assert_eq!(rec.mapping_fp, *mapping_fp);
            assert_eq!(Json::Num(rec.edp), *v.get("edp").unwrap());
            assert_eq!(Json::Num(rec.energy_pj), *v.get("energy_pj").unwrap());
            assert_eq!(Json::Num(rec.delay_cycles), *v.get("delay_cycles").unwrap());
            assert_eq!(rec.workload.to_string(), v.get("workload").unwrap().to_string());
            assert_eq!(rec.mapping.to_string(), v.get("mapping").unwrap().to_string());
        }
        let migrated = std::fs::read_to_string(store.join("shard-00.log")).unwrap();
        assert!(migrated.lines().next().unwrap().contains("sunstone-store/v2"));
        assert_eq!(migrated.lines().count(), 4, "header + three checksummed records");
    }

    // Round-trip through compaction, then reopen: nothing lost, no
    // second migration.
    {
        let mut s = MappingStore::open(&store, 1).unwrap();
        assert_eq!(s.stats().migrated_shards, 0, "migration must be one-shot");
        s.compact().unwrap();
    }
    let s = MappingStore::open(&store, 1).unwrap();
    assert_eq!(s.len(), 3);
    assert_eq!(s.stats().quarantined, 0);
    drop(s);

    // Daemon-level: a daemon started on the migrated store warm-loads
    // and re-serves every fixture record with its original fingerprint.
    let handle = start(ServeConfig::new(&socket).with_store(&store));
    let mut client = Client::connect(&socket);
    for (_, mapping_fp, v) in &expected {
        let w = wire::workload_from_json(v.get("workload").unwrap()).unwrap();
        let response = client.schedule(&w);
        assert_eq!(source_of(&response), "store", "fixture record must serve from the store");
        assert_eq!(fp_of(&response), *mapping_fp, "fixture mapping diverged");
    }
    let stats = client.stats();
    assert_eq!(stats.get("store").and_then(|s| s.get("loaded")).and_then(Json::as_f64), Some(3.0));
    assert_eq!(
        stats.get("store").and_then(|s| s.get("load_skipped")).and_then(Json::as_f64),
        Some(0.0)
    );
    client.shutdown();
    handle.join().unwrap();
}

#[test]
fn stats_report_uptime_and_degraded_defaults() {
    let (socket, _) = scratch("statshape");
    let handle = start(ServeConfig::new(&socket));
    let mut client = Client::connect(&socket);
    let stats = client.stats();
    for key in
        ["uptime_secs", "conns_live", "conns_peak", "shed_connections", "shed_requests", "degraded"]
    {
        assert!(stats.get(key).and_then(Json::as_f64).is_some(), "cache_stats missing {key}");
    }
    // A normal scheduled response advertises degraded:false explicitly.
    let v = client.schedule(&mix()[1]);
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(false));
    client.shutdown();
    handle.join().unwrap();
}
