//! The daemon's wire protocol: length-prefixed JSON frames over a Unix
//! socket, plus the workload/mapping codecs shared with the on-disk
//! store.
//!
//! # Framing
//!
//! Every message — request or response — is one frame: a 4-byte
//! little-endian byte length followed by that many bytes of UTF-8 JSON.
//! Frames larger than [`MAX_FRAME`] are rejected before allocation (a
//! corrupt length prefix must not trigger a multi-gigabyte allocation),
//! and a clean EOF *between* frames is a normal disconnect while an EOF
//! *inside* a frame is an error (the "client killed mid-request" case the
//! stress tests exercise).
//!
//! # Requests
//!
//! ```json
//! {"op":"schedule","arch":"simba_like","workload":{...},"deadline_ms":500}
//! {"op":"schedule_batch","arch":"simba_like","workloads":[{...},...]}
//! {"op":"cache_stats"}
//! {"op":"shutdown"}
//! ```
//!
//! `deadline_ms` (optional, both schedule ops) bounds the whole request:
//! a search that hits the deadline stops gracefully and returns its best
//! mapping so far with `"degraded":true` in the response, rather than an
//! error — clients that set deadlines have decided latency beats
//! optimality. Memo and store hits ignore the deadline (they are
//! microseconds). A batch shares one deadline across its layers.
//!
//! Architectures are referenced by preset name ([`arch_by_name`]) — the
//! store keys results by the full arch fingerprint regardless, so a
//! renamed preset can never alias a stale entry.
//!
//! # Workload and mapping encodings
//!
//! A workload is self-contained (name, dims, tensors with affine index
//! expressions), so a store record can be replayed on a fresh daemon
//! without the original client. A mapping serializes its level list
//! verbatim; both codecs reject structurally invalid input with a typed
//! [`WireError`] instead of panicking.

use std::io::{Read, Write};

use sunstone_arch::{presets, ArchSpec, LevelId};
use sunstone_ir::{DimId, Workload};
use sunstone_mapping::{Mapping, MappingLevel, SpatialAssignment, TemporalLevel};

use crate::json::{self, u64_str, Json};

/// Hard cap on one frame's payload size. Far above any legitimate
/// request (a whole-network batch is tens of kilobytes) and far below
/// anything that could pressure memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Protocol-level failures: framing, JSON, and codec errors.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The payload was not valid JSON.
    Json(json::ParseError),
    /// The JSON was valid but not a valid protocol message.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<json::ParseError> for WireError {
    fn from(e: json::ParseError) -> Self {
        WireError::Json(e)
    }
}

fn protocol(m: impl Into<String>) -> WireError {
    WireError::Protocol(m.into())
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean disconnect (EOF before any
/// prefix byte); EOF mid-frame and oversized prefixes are errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut prefix = [0u8; 4];
    // Distinguish "no more requests" from "died mid-prefix" by hand: a
    // clean disconnect is EOF on the very first byte.
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(protocol("connection closed inside a frame header")),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(protocol(format!("frame of {len} bytes exceeds the {MAX_FRAME} byte cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            protocol("connection closed inside a frame payload")
        } else {
            WireError::Io(e)
        }
    })?;
    let text = String::from_utf8(payload).map_err(|_| protocol("frame is not UTF-8"))?;
    Ok(Some(text))
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Schedule one workload on the named architecture preset, optionally
    /// bounded by a deadline in milliseconds.
    Schedule { workload: Workload, arch: String, deadline_ms: Option<u64> },
    /// Schedule a batch of workloads on the named architecture preset;
    /// the deadline (if any) covers the whole batch.
    ScheduleBatch { workloads: Vec<Workload>, arch: String, deadline_ms: Option<u64> },
    /// Report daemon, session-cache, and store statistics.
    CacheStats,
    /// Compact the store and stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Json`] for malformed JSON, [`WireError::Protocol`]
    /// for a well-formed frame that is not a valid request.
    pub fn parse(payload: &str) -> Result<Request, WireError> {
        let v = json::parse(payload)?;
        let op = v.get("op").and_then(Json::as_str).ok_or_else(|| protocol("missing \"op\""))?;
        match op {
            "schedule" => Ok(Request::Schedule {
                workload: workload_from_json(
                    v.get("workload").ok_or_else(|| protocol("missing \"workload\""))?,
                )?,
                arch: request_arch(&v)?,
                deadline_ms: request_deadline(&v)?,
            }),
            "schedule_batch" => {
                let items = v
                    .get("workloads")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| protocol("missing \"workloads\""))?;
                let workloads =
                    items.iter().map(workload_from_json).collect::<Result<Vec<_>, _>>()?;
                Ok(Request::ScheduleBatch {
                    workloads,
                    arch: request_arch(&v)?,
                    deadline_ms: request_deadline(&v)?,
                })
            }
            "cache_stats" => Ok(Request::CacheStats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(protocol(format!("unknown op {other:?}"))),
        }
    }
}

fn request_arch(v: &Json) -> Result<String, WireError> {
    Ok(v.get("arch")
        .and_then(Json::as_str)
        .ok_or_else(|| protocol("missing \"arch\""))?
        .to_string())
}

/// Extracts the optional `deadline_ms` field. Absence is fine (no
/// deadline); a present-but-invalid value is a protocol error — silently
/// ignoring a malformed deadline would run the request unbounded, the
/// opposite of what the client asked for.
fn request_deadline(v: &Json) -> Result<Option<u64>, WireError> {
    match v.get("deadline_ms") {
        None => Ok(None),
        Some(d) => {
            let ms = d
                .as_u64()
                .filter(|&ms| ms > 0)
                .ok_or_else(|| protocol("\"deadline_ms\" must be a positive integer"))?;
            Ok(Some(ms))
        }
    }
}

/// Resolves an architecture preset by name. The four presets cover the
/// paper's evaluation; the store records the name so a reloaded record
/// rebuilds the same spec (and the context fingerprint verifies it did).
pub fn arch_by_name(name: &str) -> Option<ArchSpec> {
    match name {
        "conventional" => Some(presets::conventional()),
        "eyeriss_like" => Some(presets::eyeriss_like()),
        "simba_like" => Some(presets::simba_like()),
        "diannao_like" => Some(presets::diannao_like()),
        _ => None,
    }
}

/// Serializes a workload to its self-contained JSON encoding.
pub fn workload_to_json(w: &Workload) -> Json {
    let dims = w
        .dims()
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("name".into(), Json::Str(d.name().to_string())),
                // Sizes are ordinary u64s but can exceed 2^53 in the
                // degenerate grids; string encoding keeps full fidelity.
                ("size".into(), u64_str(d.size())),
            ])
        })
        .collect();
    let tensors = w
        .tensors()
        .iter()
        .map(|t| {
            let indices = t
                .indices()
                .iter()
                .map(|e| {
                    Json::Arr(
                        e.terms()
                            .iter()
                            .map(|term| {
                                Json::Arr(vec![
                                    Json::Num(term.dim.index() as f64),
                                    u64_str(term.stride),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(t.name().to_string())),
                ("output".into(), Json::Bool(t.is_output())),
                ("bits".into(), Json::Num(f64::from(t.bits()))),
                ("indices".into(), Json::Arr(indices)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("name".into(), Json::Str(w.name().to_string())),
        ("dims".into(), Json::Arr(dims)),
        ("tensors".into(), Json::Arr(tensors)),
    ])
}

/// Rebuilds a workload from its JSON encoding, revalidating through
/// [`Workload::builder`] (a hand-crafted or corrupt encoding fails with a
/// typed error, never a panic).
pub fn workload_from_json(v: &Json) -> Result<Workload, WireError> {
    let name =
        v.get("name").and_then(Json::as_str).ok_or_else(|| protocol("workload missing name"))?;
    let dims =
        v.get("dims").and_then(Json::as_arr).ok_or_else(|| protocol("workload missing dims"))?;
    let mut b = Workload::builder(name);
    let mut n_dims = 0usize;
    for d in dims {
        let dname =
            d.get("name").and_then(Json::as_str).ok_or_else(|| protocol("dim missing name"))?;
        let size =
            d.get("size").and_then(Json::as_u64_str).ok_or_else(|| protocol("dim missing size"))?;
        b.dim(dname, size);
        n_dims += 1;
    }
    let tensors = v
        .get("tensors")
        .and_then(Json::as_arr)
        .ok_or_else(|| protocol("workload missing tensors"))?;
    for t in tensors {
        let tname =
            t.get("name").and_then(Json::as_str).ok_or_else(|| protocol("tensor missing name"))?;
        let output = t.get("output").and_then(Json::as_bool).unwrap_or(false);
        let bits = t
            .get("bits")
            .and_then(Json::as_u64)
            .and_then(|b| u32::try_from(b).ok())
            .ok_or_else(|| protocol("tensor missing bits"))?;
        let ranks = t
            .get("indices")
            .and_then(Json::as_arr)
            .ok_or_else(|| protocol("tensor missing indices"))?;
        let mut exprs = Vec::with_capacity(ranks.len());
        for rank in ranks {
            let terms = rank.as_arr().ok_or_else(|| protocol("index rank is not an array"))?;
            if terms.is_empty() {
                return Err(protocol("index expression has no terms"));
            }
            let mut expr = None;
            for term in terms {
                let pair = term.as_arr().ok_or_else(|| protocol("index term is not a pair"))?;
                let (dim, stride) = match pair {
                    [d, s] => (
                        d.as_u64().ok_or_else(|| protocol("index term dim is not an integer"))?,
                        s.as_u64_str()
                            .ok_or_else(|| protocol("index term stride is not a string"))?,
                    ),
                    _ => return Err(protocol("index term is not a [dim, stride] pair")),
                };
                let dim = usize::try_from(dim).ok().filter(|&d| d < n_dims).ok_or_else(|| {
                    protocol(format!("index term references unknown dimension {dim}"))
                })?;
                let next = DimId::from_index(dim).strided(stride);
                expr = Some(match expr {
                    None => next,
                    Some(e) => e + next,
                });
            }
            exprs.push(expr.expect("at least one term"));
        }
        if output {
            b.output_bits(tname, exprs, bits);
        } else {
            b.input_bits(tname, exprs, bits);
        }
    }
    b.build().map_err(|e| protocol(format!("invalid workload: {e}")))
}

/// Serializes a mapping's level list.
pub fn mapping_to_json(m: &Mapping) -> Json {
    let levels = m
        .levels()
        .iter()
        .map(|level| match level {
            MappingLevel::Temporal(t) => Json::Obj(vec![(
                "t".into(),
                Json::Obj(vec![
                    ("mem".into(), Json::Num(t.mem.0 as f64)),
                    ("factors".into(), Json::Arr(t.factors.iter().map(|&f| u64_str(f)).collect())),
                    (
                        "order".into(),
                        Json::Arr(t.order.iter().map(|d| Json::Num(d.index() as f64)).collect()),
                    ),
                ]),
            )]),
            MappingLevel::Spatial(s) => Json::Obj(vec![(
                "s".into(),
                Json::Obj(vec![
                    ("fabric".into(), Json::Num(s.fabric.0 as f64)),
                    ("factors".into(), Json::Arr(s.factors.iter().map(|&f| u64_str(f)).collect())),
                ]),
            )]),
        })
        .collect();
    Json::Obj(vec![("levels".into(), Json::Arr(levels))])
}

fn factors_from_json(v: &Json) -> Result<Vec<u64>, WireError> {
    v.get("factors")
        .and_then(Json::as_arr)
        .ok_or_else(|| protocol("level missing factors"))?
        .iter()
        .map(|f| f.as_u64_str().ok_or_else(|| protocol("factor is not a u64 string")))
        .collect()
}

/// Rebuilds a mapping from its JSON encoding. Structural validity against
/// a concrete (workload, arch) pair is *not* checked here — that is
/// [`Scheduler::prime_mapping`](sunstone::Scheduler::prime_mapping)'s
/// job — but ids out of representable range are rejected.
pub fn mapping_from_json(v: &Json) -> Result<Mapping, WireError> {
    let levels =
        v.get("levels").and_then(Json::as_arr).ok_or_else(|| protocol("mapping missing levels"))?;
    let mut out = Vec::with_capacity(levels.len());
    for level in levels {
        if let Some(t) = level.get("t") {
            let mem = t
                .get("mem")
                .and_then(Json::as_u64)
                .and_then(|m| usize::try_from(m).ok())
                .ok_or_else(|| protocol("temporal level missing mem"))?;
            let order = t
                .get("order")
                .and_then(Json::as_arr)
                .ok_or_else(|| protocol("temporal level missing order"))?
                .iter()
                .map(|d| {
                    d.as_u64()
                        .and_then(|d| usize::try_from(d).ok())
                        .filter(|&d| d < sunstone_ir::DimId::MAX_DIMS)
                        .map(DimId::from_index)
                        .ok_or_else(|| protocol("order entry is not a dimension index"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            out.push(MappingLevel::Temporal(TemporalLevel {
                mem: LevelId(mem),
                factors: factors_from_json(t)?,
                order,
            }));
        } else if let Some(s) = level.get("s") {
            let fabric = s
                .get("fabric")
                .and_then(Json::as_u64)
                .and_then(|f| usize::try_from(f).ok())
                .ok_or_else(|| protocol("spatial level missing fabric"))?;
            out.push(MappingLevel::Spatial(SpatialAssignment {
                fabric: LevelId(fabric),
                factors: factors_from_json(s)?,
            }));
        } else {
            return Err(protocol("level is neither temporal (\"t\") nor spatial (\"s\")"));
        }
    }
    Ok(Mapping::from_levels(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> Workload {
        let mut b = Workload::builder("conv");
        let k = b.dim("K", 32);
        let c = b.dim("C", 16);
        let p = b.dim("P", 28);
        let r = b.dim("R", 3);
        b.input_bits("I", [c.expr(), p.strided(1) + r.strided(1)], 8);
        b.input("W", [k.expr(), c.expr(), r.expr()]);
        b.output("O", [k.expr(), p.expr()]);
        b.build().unwrap()
    }

    #[test]
    fn workload_round_trips_with_identical_fingerprint() {
        let w = conv();
        let text = workload_to_json(&w).to_string();
        let back = workload_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            sunstone::fingerprint::workload_fingerprint(&w),
            sunstone::fingerprint::workload_fingerprint(&back),
        );
        assert_eq!(w.name(), back.name());
    }

    #[test]
    fn mapping_round_trips_with_identical_fingerprint() {
        let w = conv();
        let arch = presets::simba_like();
        let m = Mapping::streaming(&w, &arch);
        let text = mapping_to_json(&m).to_string();
        let back = mapping_from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
        assert_eq!(
            sunstone::fingerprint::mapping_fingerprint(&m),
            sunstone::fingerprint::mapping_fingerprint(&back),
        );
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"cache_stats\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"op\":\"cache_stats\"}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert!(read_frame(&mut r).unwrap().is_none());

        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "abcdef").unwrap();
        // Cut the payload mid-way: "client killed mid-request".
        buf.truncate(7);
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.to_string().contains("closed inside"));
    }

    #[test]
    fn requests_parse_and_reject() {
        let w = workload_to_json(&conv()).to_string();
        let req = Request::parse(&format!(
            "{{\"op\":\"schedule\",\"arch\":\"simba_like\",\"workload\":{w}}}"
        ))
        .unwrap();
        assert!(matches!(req, Request::Schedule { deadline_ms: None, .. }));
        assert!(matches!(Request::parse("{\"op\":\"shutdown\"}").unwrap(), Request::Shutdown));
        assert!(Request::parse("{\"op\":\"nope\"}").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn deadline_parses_strictly() {
        let w = workload_to_json(&conv()).to_string();
        let req = Request::parse(&format!(
            "{{\"op\":\"schedule\",\"arch\":\"simba_like\",\"workload\":{w},\"deadline_ms\":250}}"
        ))
        .unwrap();
        assert!(matches!(req, Request::Schedule { deadline_ms: Some(250), .. }));
        // A malformed deadline must be rejected, not silently unbounded.
        for bad in ["\"soon\"", "0", "-5", "1.5"] {
            let req = format!(
                "{{\"op\":\"schedule\",\"arch\":\"simba_like\",\"workload\":{w},\"deadline_ms\":{bad}}}"
            );
            assert!(Request::parse(&req).is_err(), "deadline_ms:{bad} must be rejected");
        }
    }

    #[test]
    fn arch_presets_resolve() {
        for name in ["conventional", "eyeriss_like", "simba_like", "diannao_like"] {
            assert!(arch_by_name(name).is_some(), "{name}");
        }
        assert!(arch_by_name("tpu_v9").is_none());
    }
}
