//! A minimal JSON value, parser, and writer for the wire protocol and the
//! on-disk store.
//!
//! The workspace's `serde` is a vendored no-op stub (this environment has
//! no registry access), so the daemon carries its own small JSON layer:
//! a recursive-descent parser over the full JSON grammar and an escaping
//! writer. Two deliberate restrictions keep it honest for this protocol:
//!
//! * **Numbers are `f64`** — which cannot carry a 64-bit fingerprint
//!   exactly. Fingerprints therefore travel as *strings* on the wire and
//!   in the store ([`Json::as_u64_str`]); plain counters and costs, which
//!   fit `f64` comfortably, travel as numbers.
//! * **Objects are ordered vectors**, not maps: serialization is
//!   deterministic (same input → same bytes) and duplicate keys resolve
//!   to the first occurrence, matching what a paranoid reader should do.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers, including integers (see the module docs for why
    /// fingerprints do not use this variant).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in serialization order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (first occurrence); `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A number as a non-negative integer: accepts only whole numbers
    /// that round-trip through `f64` exactly (so sizes and counts are
    /// safe, fingerprints are not — see [`Json::as_u64_str`]).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= (1u64 << 53) as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// A `u64` carried as a decimal *string* — the full-fidelity encoding
    /// used for fingerprints.
    pub fn as_u64_str(&self) -> Option<u64> {
        self.as_str()?.parse().ok()
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // JSON has no NaN/Infinity; encode them as null so a
                // defective cost can never produce an unparseable frame.
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no whitespace): `value.to_string()` is the
/// wire form.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Convenience constructor: a `u64` in its full-fidelity string encoding.
pub fn u64_str(v: u64) -> Json {
    Json::Str(v.to_string())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset, for actionable protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parse failed at.
    pub at: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_word("null", Json::Null),
            Some(b't') => self.eat_word("true", Json::Bool(true)),
            Some(b'f') => self.eat_word("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are already valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("invalid code point"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\"y".into())])),
            ("fp".into(), u64_str(u64::MAX)),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get("fp").unwrap().as_u64_str(), Some(u64::MAX));
    }

    #[test]
    fn u64_fidelity_goes_through_strings_not_numbers() {
        // 2^63 + 1 is not representable in f64; the string encoding is.
        let v = (1u64 << 63) + 1;
        assert_eq!(parse(&u64_str(v).to_string()).unwrap().as_u64_str(), Some(v));
        // And as_u64 on numbers refuses anything beyond exact range.
        assert_eq!(Json::Num(9.0e18).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{}x").is_err());
        let e = parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn escapes_and_unicode() {
        let back = parse(r#""aA\né😀""#).unwrap();
        assert_eq!(back.as_str(), Some("aA\né😀"));
        // Control characters are escaped on the way out.
        assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn duplicate_keys_resolve_to_first() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
    }
}
