//! The daemon: a [`UnixListener`] accept loop multiplexing concurrent
//! client connections onto one shared [`Scheduler`] session and one
//! persistent [`MappingStore`].
//!
//! # Serving discipline
//!
//! Every `schedule` request resolves to a context fingerprint
//! ([`Scheduler::context_fingerprint`]) and goes through three tiers:
//!
//! 1. **memo** — an in-memory latest-result index over contexts served
//!    this process lifetime *plus* everything warm-loaded from the store
//!    at startup. Hits are microseconds: no search, no model.
//! 2. **search** — a full library `schedule` call on the shared session
//!    (which itself carries the estimate cache and cross-layer warm
//!    starts). The result is memoized and appended to the store.
//!
//! A memo entry remembers its *origin* — `store` when it entered via the
//! startup warm-load, `memo` when it was searched earlier in this
//! process — and responses report `source` accordingly (`search` for a
//! fresh computation), so clients and the restart acceptance test can
//! distinguish a warm-loaded answer from a recomputed one.
//!
//! # Overload and degradation
//!
//! The daemon bounds its own resources and sheds the excess instead of
//! queueing unboundedly:
//!
//! * **connection admission** — at most
//!   [`ServeConfig::max_connections`] live handler threads; a connection
//!   over the cap receives one typed `overloaded` frame (with a
//!   `retry_after_ms` hint) and is closed, counted in
//!   `shed_connections`.
//! * **search admission** — at most
//!   [`ServeConfig::max_queued_searches`] requests past the memo tier at
//!   once (searching or waiting on a single-flight peer); the excess get
//!   the same `overloaded` response, counted in `shed_requests`. Memo
//!   and store hits are never shed — they cost microseconds.
//! * **deadlines** — a request carrying `deadline_ms` maps onto the
//!   library's wall-clock budget; a search cut short returns its best
//!   mapping so far with `"degraded":true`. Degraded results are served
//!   but *not* memoized or persisted: the next request (with its own
//!   deadline) searches again rather than inheriting a worse-than-best
//!   answer forever.
//! * **socket timeouts** — per-connection read
//!   ([`ServeConfig::idle_timeout`]) and write
//!   ([`ServeConfig::write_timeout`]) timeouts reap idle, slow, or dead
//!   clients without touching their single-flight peers (timeouts bound
//!   socket I/O, never lock waits).
//!
//! # Bit-identity
//!
//! The warm-load path never trusts the store: each record's workload is
//! rebuilt, its context fingerprint recomputed and compared, the mapping
//! re-validated and re-priced under the current cost model
//! ([`Scheduler::prime_mapping`]), and its mapping fingerprint
//! recomputed. Any mismatch skips the record (counted in
//! `load_skipped`), so a served mapping is always exactly what the
//! library path would produce for that context.
//!
//! # Fault isolation
//!
//! A panic inside a request is caught by the library's own isolation
//! boundary and surfaces as a typed `internal` error response; the
//! connection, the session, and the daemon survive. All shared state is
//! behind poison-recovering locks, so a fault while a lock was held
//! degrades to the error response, never to a poisoned-mutex abort.
//! Under the `fault-injection` feature the serve layer carries its own
//! failpoints (`sunstone::faultpoint::SERVE_POINTS`); the chaos soak
//! in `tests/fault_injection.rs` drives them.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use sunstone::fingerprint::mapping_fingerprint;
use sunstone::prelude::*;
use sunstone_ir::Workload;
use sunstone_mapping::Mapping;
use sunstone_model::CostReport;

use crate::json::{u64_str, Json};
use crate::store::{FsyncPolicy, MappingStore, StoreRecord};
use crate::wire::{self, Request, WireError};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on. A stale socket left by a crashed
    /// daemon is taken over; a *live* daemon's socket is refused
    /// ([`ServeError::AlreadyRunning`]).
    pub socket: PathBuf,
    /// Store directory; `None` runs fully in-memory.
    pub store_dir: Option<PathBuf>,
    /// Shard count for a fresh store (existing stores keep theirs).
    pub shards: usize,
    /// Store durability policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Scheduler configuration for the shared session.
    pub config: SunstoneConfig,
    /// Admission cap on live connections; excess connections get one
    /// `overloaded` frame and are closed.
    pub max_connections: usize,
    /// Admission cap on requests simultaneously past the memo tier
    /// (searching, or queued on a single-flight peer); excess requests
    /// get an `overloaded` response on their open connection.
    pub max_queued_searches: usize,
    /// The `retry_after_ms` hint carried by `overloaded` responses.
    pub retry_after_ms: u64,
    /// Per-connection read timeout: a client idle longer than this is
    /// reaped. `None` waits forever (the pre-hardening behavior).
    pub idle_timeout: Option<Duration>,
    /// Per-connection write timeout: a client that stops draining its
    /// socket is reaped instead of blocking its handler forever.
    pub write_timeout: Option<Duration>,
}

impl ServeConfig {
    /// A daemon on `socket` with default scheduling, default admission
    /// limits, and no persistence.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            store_dir: None,
            shards: 4,
            fsync: FsyncPolicy::default(),
            config: SunstoneConfig::default(),
            max_connections: 256,
            max_queued_searches: 64,
            retry_after_ms: 25,
            idle_timeout: Some(Duration::from_secs(60)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }

    /// Enables the persistent store under `dir`.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }
}

/// Startup failures with an operational meaning beyond raw I/O.
#[derive(Debug)]
pub enum ServeError {
    /// The socket path is a Unix socket and something answered a dial:
    /// another daemon is live. Refusing to unlink it is the whole point —
    /// the old behavior silently orphaned the running daemon.
    AlreadyRunning { socket: PathBuf },
    /// The socket path exists but is not a Unix socket; refusing to
    /// delete it protects whatever file the operator actually has there.
    NotASocket { path: PathBuf },
    /// Everything else: bind, store, filesystem.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::AlreadyRunning { socket } => {
                write!(f, "a daemon is already serving on {}", socket.display())
            }
            ServeError::NotASocket { path } => {
                write!(
                    f,
                    "{} exists and is not a Unix socket; refusing to replace it",
                    path.display()
                )
            }
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Where a memoized result came from, reported as the response `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Warm-loaded from the on-disk store at startup.
    Store,
    /// Searched earlier in this daemon's lifetime.
    Memo,
}

/// One served result, shared by reference across connections.
struct MemoEntry {
    mapping: Mapping,
    mapping_fp: u64,
    report: CostReport,
    origin: Origin,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    searches: AtomicU64,
    memo_hits: AtomicU64,
    store_hits: AtomicU64,
    errors: AtomicU64,
    /// Connections refused at the admission cap.
    shed_connections: AtomicU64,
    /// Requests refused at the search-queue cap.
    shed_requests: AtomicU64,
    /// Searches cut short by a client deadline (served best-so-far).
    degraded: AtomicU64,
    /// Store records skipped at warm-load (fingerprint or validation
    /// mismatch) — should be zero on a healthy store.
    load_skipped: AtomicU64,
    /// Store records successfully warm-loaded at startup.
    loaded: AtomicU64,
}

/// Shared daemon state: the session, the store, the memo index.
struct ServeState {
    scheduler: Scheduler,
    store: Option<Mutex<MappingStore>>,
    memo: Mutex<HashMap<u64, Arc<MemoEntry>>>,
    counters: Counters,
    shutdown: AtomicBool,
    started: Instant,
    /// The listening socket's path, so a shutdown handler can dial it to
    /// unblock the accept loop.
    socket: PathBuf,
    /// Live connections by id, so shutdown can half-close them and
    /// unblock handler threads parked in `read_frame` on idle clients.
    conns: Mutex<HashMap<u64, UnixStream>>,
    next_conn: AtomicU64,
    /// Live handler-thread count, maintained by [`ConnGuard`] so an
    /// injected panic still releases its admission slot.
    conns_live: AtomicU64,
    conns_peak: AtomicU64,
    /// Requests currently past the memo tier (see `max_queued_searches`).
    queued_searches: AtomicU64,
    /// Single-flight locks by context fingerprint: concurrent requests
    /// for the same context serialize onto one search, with later
    /// arrivals re-checking the memo once the first completes.
    flights: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
    max_connections: u64,
    max_queued_searches: u64,
    retry_after_ms: u64,
}

/// Locks a daemon mutex, recovering from poisoning: memo and store hold
/// plain data valid at every unwind point, and a faulted request must
/// never wedge the daemon.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Unregisters a connection when its handler exits — normally, by
/// timeout, or by panic — releasing the admission slot either way.
struct ConnGuard {
    state: Arc<ServeState>,
    id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        lock_recover(&self.state.conns).remove(&self.id);
        self.state.conns_live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Holds one slot of the bounded search queue; dropped (releasing the
/// slot) when the request finishes, errors, or panics.
struct SearchTicket<'a> {
    state: &'a ServeState,
}

impl<'a> SearchTicket<'a> {
    /// Claims a queue slot, or `None` when the queue is at capacity.
    fn acquire(state: &'a ServeState) -> Option<SearchTicket<'a>> {
        if state.queued_searches.fetch_add(1, Ordering::SeqCst) >= state.max_queued_searches {
            state.queued_searches.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(SearchTicket { state })
    }
}

impl Drop for SearchTicket<'_> {
    fn drop(&mut self) {
        self.state.queued_searches.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The running daemon.
pub struct Server {
    listener: UnixListener,
    state: Arc<ServeState>,
    socket: PathBuf,
    /// (read, write) timeouts applied to every accepted connection.
    timeouts: (Option<Duration>, Option<Duration>),
}

/// Decides whether `path` may be claimed as our listening socket:
/// absent → yes; a socket nobody answers (crashed daemon) → unlink and
/// claim; a socket something answers → [`ServeError::AlreadyRunning`];
/// any other file → [`ServeError::NotASocket`].
fn claim_socket_path(path: &Path) -> Result<(), ServeError> {
    use std::os::unix::fs::FileTypeExt;
    let meta = match std::fs::symlink_metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(ServeError::Io(e)),
    };
    if !meta.file_type().is_socket() {
        return Err(ServeError::NotASocket { path: path.to_path_buf() });
    }
    match UnixStream::connect(path) {
        // Something accepted: a live daemon owns this path.
        Ok(_) => Err(ServeError::AlreadyRunning { socket: path.to_path_buf() }),
        // Nobody listening: a stale socket from an unclean shutdown.
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
            std::fs::remove_file(path).map_err(ServeError::Io)
        }
        Err(e) => Err(ServeError::Io(e)),
    }
}

impl Server {
    /// Binds the socket, opens the store, and warm-loads it into the
    /// session cache and memo index. Returns a server ready to
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// [`ServeError::AlreadyRunning`] when a live daemon owns the socket,
    /// [`ServeError::NotASocket`] when the path is some other file, and
    /// [`ServeError::Io`] for bind and store failures.
    pub fn bind(config: ServeConfig) -> Result<Server, ServeError> {
        claim_socket_path(&config.socket)?;
        let listener = UnixListener::bind(&config.socket)?;
        let scheduler = Scheduler::new(config.config.clone());
        let store = match &config.store_dir {
            Some(dir) => Some(MappingStore::open_with(dir, config.shards, config.fsync)?),
            None => None,
        };
        let state = Arc::new(ServeState {
            scheduler,
            store: store.map(Mutex::new),
            memo: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            socket: config.socket.clone(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            conns_live: AtomicU64::new(0),
            conns_peak: AtomicU64::new(0),
            queued_searches: AtomicU64::new(0),
            flights: Mutex::new(HashMap::new()),
            max_connections: config.max_connections.max(1) as u64,
            max_queued_searches: config.max_queued_searches as u64,
            retry_after_ms: config.retry_after_ms,
        });
        let timeouts = (config.idle_timeout, config.write_timeout);
        warm_load(&state);
        Ok(Server { listener, state, socket: config.socket, timeouts })
    }

    /// Serves until a `shutdown` request arrives, then compacts the
    /// store, removes the socket, and returns.
    ///
    /// # Errors
    ///
    /// Accept-loop and shutdown-compaction I/O failures (per-connection
    /// failures only close that connection).
    pub fn run(self) -> std::io::Result<()> {
        let (idle_timeout, write_timeout) = self.timeouts;
        let mut handles = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // A transient accept failure must not kill the daemon.
                Err(_) => continue,
            };
            // Admission: over the cap, the connection gets one typed
            // `overloaded` frame and is dropped — no thread, no queue.
            if self.state.conns_live.load(Ordering::SeqCst) >= self.state.max_connections {
                self.state.counters.shed_connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_write_timeout(write_timeout);
                let body = overloaded_response(&self.state, "server at connection capacity");
                let _ = wire::write_frame(&mut &stream, &body.to_string());
                continue;
            }
            // Timeouts are per-socket and shared by every clone, so set
            // them before the registry clone below.
            let _ = stream.set_read_timeout(idle_timeout);
            let _ = stream.set_write_timeout(write_timeout);
            let id = self.state.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                lock_recover(&self.state.conns).insert(id, clone);
            }
            let live = self.state.conns_live.fetch_add(1, Ordering::SeqCst) + 1;
            self.state.conns_peak.fetch_max(live, Ordering::SeqCst);
            let state = Arc::clone(&self.state);
            handles.push(std::thread::spawn(move || {
                // The guard exists before the failpoint: a panic at spawn
                // must still release the admission slot.
                let _guard = ConnGuard { state: Arc::clone(&state), id };
                faultpoint!("serve.handler_spawn");
                serve_connection(&state, stream);
            }));
            // Reap finished handler threads so a long-lived daemon's
            // handle list tracks live connections, not total accepts.
            handles.retain(|h| !h.is_finished());
        }
        // Half-close every live connection: handlers parked in
        // `read_frame` on idle clients wake with EOF and exit; in-flight
        // requests still finish (writes stay open until the handler
        // returns on its next read).
        for (_, stream) in lock_recover(&self.state.conns).drain() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(store) = &self.state.store {
            lock_recover(store).compact()?;
        }
        let _ = std::fs::remove_file(&self.socket);
        Ok(())
    }

    /// The socket path this server listens on.
    pub fn socket(&self) -> &std::path::Path {
        &self.socket
    }
}

/// Replays every store record into the session cache and memo index,
/// verifying context fingerprint, mapping validity, and mapping
/// fingerprint per record (see the module docs).
fn warm_load(state: &ServeState) {
    let Some(store) = &state.store else { return };
    let records: Vec<StoreRecord> = lock_recover(store).iter().cloned().collect();
    let mut memo = lock_recover(&state.memo);
    for rec in records {
        let loaded = (|| {
            let arch = wire::arch_by_name(&rec.arch)?;
            let workload = wire::workload_from_json(&rec.workload).ok()?;
            if state.scheduler.context_fingerprint(&workload, &arch) != rec.ctx_fp {
                return None;
            }
            let mapping = wire::mapping_from_json(&rec.mapping).ok()?;
            if mapping_fingerprint(&mapping) != rec.mapping_fp {
                return None;
            }
            // Re-validate and re-price under the current model; this also
            // warms the session estimate cache for the search path.
            let report = state.scheduler.prime_mapping(&workload, &arch, &mapping).ok()?;
            Some(MemoEntry { mapping, mapping_fp: rec.mapping_fp, report, origin: Origin::Store })
        })();
        match loaded {
            Some(entry) => {
                memo.insert(rec.ctx_fp, Arc::new(entry));
                state.counters.loaded.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                state.counters.load_skipped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Per-connection loop: read a frame, dispatch, write the response;
/// repeat until disconnect, timeout, or shutdown.
fn serve_connection(state: &ServeState, stream: UnixStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        faultpoint!("serve.frame_read");
        let payload = match wire::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean disconnect: this connection is done.
            Ok(None) => return,
            // Framing violation (oversized prefix, mid-frame EOF,
            // non-UTF-8): tell the client *why* before closing — a silent
            // drop is indistinguishable from a daemon crash. The write is
            // best-effort; a mid-frame-EOF client is usually gone.
            Err(WireError::Protocol(m)) => {
                let body = error_response("protocol_error", &m);
                let _ = wire::write_frame(&mut writer, &body.to_string());
                return;
            }
            // Socket-level failure, including the idle-timeout reap.
            Err(_) => return,
        };
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown) = match Request::parse(&payload) {
            Ok(Request::Schedule { workload, arch, deadline_ms }) => {
                (schedule_response(state, &workload, &arch, deadline(deadline_ms)), false)
            }
            Ok(Request::ScheduleBatch { workloads, arch, deadline_ms }) => {
                // One deadline bounds the whole batch; each layer gets
                // whatever wall-clock remains when its turn comes.
                let batch_deadline = deadline(deadline_ms);
                let layers: Vec<Json> = workloads
                    .iter()
                    .map(|w| schedule_response(state, w, &arch, batch_deadline))
                    .collect();
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("layers".into(), Json::Arr(layers)),
                    ]),
                    false,
                )
            }
            Ok(Request::CacheStats) => (stats_response(state), false),
            Ok(Request::Shutdown) => (Json::Obj(vec![("ok".into(), Json::Bool(true))]), true),
            // Malformed JSON: the frame boundary cannot be trusted to
            // resynchronize, so answer and close.
            Err(WireError::Json(e)) => {
                let body = error_response("protocol_error", &e.to_string());
                let _ = wire::write_frame(&mut writer, &body.to_string());
                return;
            }
            // Well-formed JSON that is not a valid request: the framing
            // is intact, so answer and keep the connection.
            Err(e) => (error_response("protocol", &e.to_string()), false),
        };
        if wire::write_frame(&mut writer, &response.to_string()).is_err() {
            return;
        }
        if shutdown {
            trigger_shutdown(state);
            return;
        }
    }
}

/// Converts a request's `deadline_ms` into an absolute instant, anchored
/// at parse time so queueing and single-flight waits count against it.
fn deadline(deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms))
}

/// Flags shutdown, then dials the socket so the accept loop (blocked in
/// `incoming`) wakes, observes the flag, and exits.
fn trigger_shutdown(state: &ServeState) {
    state.shutdown.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(&state.socket);
}

fn error_kind(e: &ScheduleError) -> &'static str {
    match e {
        ScheduleError::Arch(_) => "arch",
        ScheduleError::Binding(_) => "binding",
        ScheduleError::NoValidMapping => "no_valid_mapping",
        ScheduleError::InfeasibleLevel { .. } => "infeasible",
        ScheduleError::InvalidConfig { .. } => "invalid_config",
        ScheduleError::InvalidConstraints { .. } => "invalid_constraints",
        ScheduleError::InvalidMapping { .. } => "invalid_mapping",
        ScheduleError::Cancelled => "cancelled",
        ScheduleError::BudgetExhausted => "budget_exhausted",
        ScheduleError::Internal { .. } => "internal",
        _ => "error",
    }
}

fn error_response(kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("kind".into(), Json::Str(kind.into())),
        ("error".into(), Json::Str(message.into())),
    ])
}

/// The typed load-shedding response: `ok:false`, `kind:"overloaded"`,
/// and a retry hint so well-behaved clients back off instead of
/// hammering.
fn overloaded_response(state: &ServeState, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("kind".into(), Json::Str("overloaded".into())),
        ("error".into(), Json::Str(format!("{message}; retry later"))),
        ("retry_after_ms".into(), Json::Num(state.retry_after_ms as f64)),
    ])
}

fn result_body(ctx_fp: u64, source: &str, entry: &MemoEntry, degraded: bool) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("source".into(), Json::Str(source.into())),
        ("degraded".into(), Json::Bool(degraded)),
        ("ctx_fp".into(), u64_str(ctx_fp)),
        ("mapping_fp".into(), u64_str(entry.mapping_fp)),
        ("edp".into(), Json::Num(entry.report.edp)),
        ("energy_pj".into(), Json::Num(entry.report.energy_pj)),
        ("delay_cycles".into(), Json::Num(entry.report.delay_cycles)),
        ("mapping".into(), wire::mapping_to_json(&entry.mapping)),
    ])
}

/// The memo tier: a hit (searched earlier or warm-loaded) serves in
/// microseconds and bumps the matching counter.
fn memo_hit(state: &ServeState, ctx_fp: u64) -> Option<Json> {
    let entry = lock_recover(&state.memo).get(&ctx_fp).cloned()?;
    let source = match entry.origin {
        Origin::Store => {
            state.counters.store_hits.fetch_add(1, Ordering::Relaxed);
            "store"
        }
        Origin::Memo => {
            state.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
            "memo"
        }
    };
    Some(result_body(ctx_fp, source, &entry, false))
}

/// The serve path for one workload (see the module docs): memo tier,
/// search-queue admission, single-flight, then a (possibly
/// deadline-bounded) library search.
fn schedule_response(
    state: &ServeState,
    workload: &Workload,
    arch_name: &str,
    deadline: Option<Instant>,
) -> Json {
    let Some(arch) = wire::arch_by_name(arch_name) else {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
        return error_response("protocol", &format!("unknown architecture preset {arch_name:?}"));
    };
    let ctx_fp = state.scheduler.context_fingerprint(workload, &arch);
    if let Some(hit) = memo_hit(state, ctx_fp) {
        return hit;
    }
    // Search-queue admission: memo misses are the expensive tier, and
    // only `max_queued_searches` of them may be in flight at once.
    let Some(_ticket) = SearchTicket::acquire(state) else {
        state.counters.shed_requests.fetch_add(1, Ordering::Relaxed);
        return overloaded_response(state, "search queue at capacity");
    };
    // Single-flight: concurrent misses on the same context serialize
    // here; whoever acquires first searches, everyone after re-checks
    // the memo under the flight lock and hits.
    let flight = Arc::clone(lock_recover(&state.flights).entry(ctx_fp).or_default());
    let _guard = flight.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = memo_hit(state, ctx_fp) {
        return hit;
    }
    state.counters.searches.fetch_add(1, Ordering::Relaxed);
    // The deadline is anchored at request parse: waiting on the flight
    // lock already spent part of it, so the search gets the remainder
    // (a zero budget still yields the first claim chunk's best).
    let mut options = ScheduleOptions::default();
    if let Some(d) = deadline {
        options = options.time_budget(d.saturating_duration_since(Instant::now()));
    }
    let (result, degraded) = match state.scheduler.schedule_with(workload, &arch, &options) {
        Ok(outcome) => outcome.into_best(),
        Err(e) => {
            lock_recover(&state.flights).remove(&ctx_fp);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(error_kind(&e), &e.to_string());
        }
    };
    let entry = Arc::new(MemoEntry {
        mapping_fp: mapping_fingerprint(&result.mapping),
        report: result.report,
        mapping: result.mapping,
        origin: Origin::Memo,
    });
    let response = result_body(ctx_fp, "search", &entry, degraded);
    if degraded {
        // A deadline-cut result is only as good as its budget allowed:
        // serve it to the client that asked, but never memoize or
        // persist it — the next request searches with its own budget
        // instead of inheriting a worse-than-best mapping forever.
        state.counters.degraded.fetch_add(1, Ordering::Relaxed);
        lock_recover(&state.flights).remove(&ctx_fp);
        return response;
    }
    // Memoize before touching the store: a fault in persistence must
    // not lose an already-computed result.
    lock_recover(&state.memo).insert(ctx_fp, Arc::clone(&entry));
    lock_recover(&state.flights).remove(&ctx_fp);
    if let Some(store) = &state.store {
        let rec = StoreRecord {
            ctx_fp,
            mapping_fp: entry.mapping_fp,
            arch: arch_name.to_string(),
            edp: entry.report.edp,
            energy_pj: entry.report.energy_pj,
            delay_cycles: entry.report.delay_cycles,
            workload: wire::workload_to_json(workload),
            mapping: wire::mapping_to_json(&entry.mapping),
        };
        // A full disk degrades persistence, not serving.
        let _ = lock_recover(store).append(rec);
    }
    response
}

fn stats_response(state: &ServeState) -> Json {
    let c = &state.counters;
    let session = state.scheduler.cache_stats();
    let mut pairs = vec![
        ("ok".into(), Json::Bool(true)),
        ("uptime_secs".into(), Json::Num(state.started.elapsed().as_secs() as f64)),
        ("requests".into(), Json::Num(c.requests.load(Ordering::Relaxed) as f64)),
        ("searches".into(), Json::Num(c.searches.load(Ordering::Relaxed) as f64)),
        ("memo_hits".into(), Json::Num(c.memo_hits.load(Ordering::Relaxed) as f64)),
        ("store_hits".into(), Json::Num(c.store_hits.load(Ordering::Relaxed) as f64)),
        ("errors".into(), Json::Num(c.errors.load(Ordering::Relaxed) as f64)),
        ("degraded".into(), Json::Num(c.degraded.load(Ordering::Relaxed) as f64)),
        ("conns_live".into(), Json::Num(state.conns_live.load(Ordering::SeqCst) as f64)),
        ("conns_peak".into(), Json::Num(state.conns_peak.load(Ordering::SeqCst) as f64)),
        ("shed_connections".into(), Json::Num(c.shed_connections.load(Ordering::Relaxed) as f64)),
        ("shed_requests".into(), Json::Num(c.shed_requests.load(Ordering::Relaxed) as f64)),
        ("memo_entries".into(), Json::Num(lock_recover(&state.memo).len() as f64)),
        (
            "session".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(session.hits as f64)),
                ("misses".into(), Json::Num(session.misses as f64)),
                ("entries".into(), Json::Num(session.entries as f64)),
                ("pool_rounds".into(), Json::Num(session.pool_rounds as f64)),
            ]),
        ),
    ];
    if let Some(store) = &state.store {
        let s = lock_recover(store).stats();
        pairs.push((
            "store".into(),
            Json::Obj(vec![
                ("records".into(), Json::Num(s.records as f64)),
                ("corrupt_lines".into(), Json::Num(s.corrupt_lines as f64)),
                ("quarantined".into(), Json::Num(s.quarantined as f64)),
                ("stale_shards".into(), Json::Num(s.stale_shards as f64)),
                ("migrated_shards".into(), Json::Num(s.migrated_shards as f64)),
                ("appended".into(), Json::Num(s.appended as f64)),
                ("fsyncs".into(), Json::Num(s.fsyncs as f64)),
                ("loaded".into(), Json::Num(c.loaded.load(Ordering::Relaxed) as f64)),
                ("load_skipped".into(), Json::Num(c.load_skipped.load(Ordering::Relaxed) as f64)),
            ]),
        ));
    }
    Json::Obj(pairs)
}
