//! The daemon: a [`UnixListener`] accept loop multiplexing concurrent
//! client connections onto one shared [`Scheduler`] session and one
//! persistent [`MappingStore`].
//!
//! # Serving discipline
//!
//! Every `schedule` request resolves to a context fingerprint
//! ([`Scheduler::context_fingerprint`]) and goes through three tiers:
//!
//! 1. **memo** — an in-memory latest-result index over contexts served
//!    this process lifetime *plus* everything warm-loaded from the store
//!    at startup. Hits are microseconds: no search, no model.
//! 2. **search** — a full library `schedule` call on the shared session
//!    (which itself carries the estimate cache and cross-layer warm
//!    starts). The result is memoized and appended to the store.
//!
//! A memo entry remembers its *origin* — `store` when it entered via the
//! startup warm-load, `memo` when it was searched earlier in this
//! process — and responses report `source` accordingly (`search` for a
//! fresh computation), so clients and the restart acceptance test can
//! distinguish a warm-loaded answer from a recomputed one.
//!
//! # Bit-identity
//!
//! The warm-load path never trusts the store: each record's workload is
//! rebuilt, its context fingerprint recomputed and compared, the mapping
//! re-validated and re-priced under the current cost model
//! ([`Scheduler::prime_mapping`]), and its mapping fingerprint
//! recomputed. Any mismatch skips the record (counted in
//! `load_skipped`), so a served mapping is always exactly what the
//! library path would produce for that context.
//!
//! # Fault isolation
//!
//! A panic inside a request is caught by the library's own isolation
//! boundary and surfaces as a typed `internal` error response; the
//! connection, the session, and the daemon survive. All shared state is
//! behind poison-recovering locks, so a fault while a lock was held
//! degrades to the error response, never to a poisoned-mutex abort.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sunstone::fingerprint::mapping_fingerprint;
use sunstone::prelude::*;
use sunstone_ir::Workload;
use sunstone_mapping::Mapping;
use sunstone_model::CostReport;

use crate::json::{u64_str, Json};
use crate::store::{MappingStore, StoreRecord};
use crate::wire::{self, Request};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (an existing file is replaced).
    pub socket: PathBuf,
    /// Store directory; `None` runs fully in-memory.
    pub store_dir: Option<PathBuf>,
    /// Shard count for a fresh store (existing stores keep theirs).
    pub shards: usize,
    /// Scheduler configuration for the shared session.
    pub config: SunstoneConfig,
}

impl ServeConfig {
    /// A daemon on `socket` with default scheduling and no persistence.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServeConfig {
            socket: socket.into(),
            store_dir: None,
            shards: 4,
            config: SunstoneConfig::default(),
        }
    }

    /// Enables the persistent store under `dir`.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }
}

/// Where a memoized result came from, reported as the response `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Warm-loaded from the on-disk store at startup.
    Store,
    /// Searched earlier in this daemon's lifetime.
    Memo,
}

/// One served result, shared by reference across connections.
struct MemoEntry {
    mapping: Mapping,
    mapping_fp: u64,
    report: CostReport,
    origin: Origin,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    searches: AtomicU64,
    memo_hits: AtomicU64,
    store_hits: AtomicU64,
    errors: AtomicU64,
    /// Store records skipped at warm-load (fingerprint or validation
    /// mismatch) — should be zero on a healthy store.
    load_skipped: AtomicU64,
    /// Store records successfully warm-loaded at startup.
    loaded: AtomicU64,
}

/// Shared daemon state: the session, the store, the memo index.
struct ServeState {
    scheduler: Scheduler,
    store: Option<Mutex<MappingStore>>,
    memo: Mutex<HashMap<u64, Arc<MemoEntry>>>,
    counters: Counters,
    shutdown: AtomicBool,
    /// The listening socket's path, so a shutdown handler can dial it to
    /// unblock the accept loop.
    socket: PathBuf,
    /// Live connections by id, so shutdown can half-close them and
    /// unblock handler threads parked in `read_frame` on idle clients.
    conns: Mutex<HashMap<u64, UnixStream>>,
    next_conn: AtomicU64,
    /// Single-flight locks by context fingerprint: concurrent requests
    /// for the same context serialize onto one search, with later
    /// arrivals re-checking the memo once the first completes.
    flights: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
}

/// Locks a daemon mutex, recovering from poisoning: memo and store hold
/// plain data valid at every unwind point, and a faulted request must
/// never wedge the daemon.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The running daemon.
pub struct Server {
    listener: UnixListener,
    state: Arc<ServeState>,
    socket: PathBuf,
}

impl Server {
    /// Binds the socket, opens the store, and warm-loads it into the
    /// session cache and memo index. Returns a server ready to
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Socket bind and store I/O failures.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        if config.socket.exists() {
            std::fs::remove_file(&config.socket)?;
        }
        let listener = UnixListener::bind(&config.socket)?;
        let scheduler = Scheduler::new(config.config.clone());
        let store = match &config.store_dir {
            Some(dir) => Some(MappingStore::open(dir, config.shards)?),
            None => None,
        };
        let state = Arc::new(ServeState {
            scheduler,
            store: store.map(Mutex::new),
            memo: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            socket: config.socket.clone(),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            flights: Mutex::new(HashMap::new()),
        });
        warm_load(&state);
        Ok(Server { listener, state, socket: config.socket })
    }

    /// Serves until a `shutdown` request arrives, then compacts the
    /// store, removes the socket, and returns.
    ///
    /// # Errors
    ///
    /// Accept-loop and shutdown-compaction I/O failures (per-connection
    /// failures only close that connection).
    pub fn run(self) -> std::io::Result<()> {
        let mut handles = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                // A transient accept failure must not kill the daemon.
                Err(_) => continue,
            };
            let id = self.state.next_conn.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                lock_recover(&self.state.conns).insert(id, clone);
            }
            let state = Arc::clone(&self.state);
            handles.push(std::thread::spawn(move || {
                serve_connection(&state, stream);
                lock_recover(&state.conns).remove(&id);
            }));
            // Reap finished handler threads so a long-lived daemon's
            // handle list tracks live connections, not total accepts.
            handles.retain(|h| !h.is_finished());
        }
        // Half-close every live connection: handlers parked in
        // `read_frame` on idle clients wake with EOF and exit; in-flight
        // requests still finish (writes stay open until the handler
        // returns on its next read).
        for (_, stream) in lock_recover(&self.state.conns).drain() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        for h in handles {
            let _ = h.join();
        }
        if let Some(store) = &self.state.store {
            lock_recover(store).compact()?;
        }
        let _ = std::fs::remove_file(&self.socket);
        Ok(())
    }

    /// The socket path this server listens on.
    pub fn socket(&self) -> &std::path::Path {
        &self.socket
    }
}

/// Replays every store record into the session cache and memo index,
/// verifying context fingerprint, mapping validity, and mapping
/// fingerprint per record (see the module docs).
fn warm_load(state: &ServeState) {
    let Some(store) = &state.store else { return };
    let records: Vec<StoreRecord> = lock_recover(store).iter().cloned().collect();
    let mut memo = lock_recover(&state.memo);
    for rec in records {
        let loaded = (|| {
            let arch = wire::arch_by_name(&rec.arch)?;
            let workload = wire::workload_from_json(&rec.workload).ok()?;
            if state.scheduler.context_fingerprint(&workload, &arch) != rec.ctx_fp {
                return None;
            }
            let mapping = wire::mapping_from_json(&rec.mapping).ok()?;
            if mapping_fingerprint(&mapping) != rec.mapping_fp {
                return None;
            }
            // Re-validate and re-price under the current model; this also
            // warms the session estimate cache for the search path.
            let report = state.scheduler.prime_mapping(&workload, &arch, &mapping).ok()?;
            Some(MemoEntry { mapping, mapping_fp: rec.mapping_fp, report, origin: Origin::Store })
        })();
        match loaded {
            Some(entry) => {
                memo.insert(rec.ctx_fp, Arc::new(entry));
                state.counters.loaded.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                state.counters.load_skipped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Per-connection loop: read a frame, dispatch, write the response;
/// repeat until disconnect or shutdown.
fn serve_connection(state: &ServeState, stream: UnixStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match wire::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean disconnect, or a client that died mid-frame: either
            // way this connection is done; the daemon is unaffected.
            Ok(None) | Err(_) => return,
        };
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown) = match Request::parse(&payload) {
            Ok(Request::Schedule { workload, arch }) => {
                (schedule_response(state, &workload, &arch), false)
            }
            Ok(Request::ScheduleBatch { workloads, arch }) => {
                let layers: Vec<Json> =
                    workloads.iter().map(|w| schedule_response(state, w, &arch)).collect();
                (
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("layers".into(), Json::Arr(layers)),
                    ]),
                    false,
                )
            }
            Ok(Request::CacheStats) => (stats_response(state), false),
            Ok(Request::Shutdown) => (Json::Obj(vec![("ok".into(), Json::Bool(true))]), true),
            Err(e) => (error_response("protocol", &e.to_string()), false),
        };
        if wire::write_frame(&mut writer, &response.to_string()).is_err() {
            return;
        }
        if shutdown {
            trigger_shutdown(state);
            return;
        }
    }
}

/// Flags shutdown, then dials the socket so the accept loop (blocked in
/// `incoming`) wakes, observes the flag, and exits.
fn trigger_shutdown(state: &ServeState) {
    state.shutdown.store(true, Ordering::SeqCst);
    let _ = UnixStream::connect(&state.socket);
}

fn error_kind(e: &ScheduleError) -> &'static str {
    match e {
        ScheduleError::Arch(_) => "arch",
        ScheduleError::Binding(_) => "binding",
        ScheduleError::NoValidMapping => "no_valid_mapping",
        ScheduleError::InfeasibleLevel { .. } => "infeasible",
        ScheduleError::InvalidConfig { .. } => "invalid_config",
        ScheduleError::InvalidConstraints { .. } => "invalid_constraints",
        ScheduleError::InvalidMapping { .. } => "invalid_mapping",
        ScheduleError::Cancelled => "cancelled",
        ScheduleError::BudgetExhausted => "budget_exhausted",
        ScheduleError::Internal { .. } => "internal",
        _ => "error",
    }
}

fn error_response(kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("kind".into(), Json::Str(kind.into())),
        ("error".into(), Json::Str(message.into())),
    ])
}

fn result_body(ctx_fp: u64, source: &str, entry: &MemoEntry) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("source".into(), Json::Str(source.into())),
        ("ctx_fp".into(), u64_str(ctx_fp)),
        ("mapping_fp".into(), u64_str(entry.mapping_fp)),
        ("edp".into(), Json::Num(entry.report.edp)),
        ("energy_pj".into(), Json::Num(entry.report.energy_pj)),
        ("delay_cycles".into(), Json::Num(entry.report.delay_cycles)),
        ("mapping".into(), wire::mapping_to_json(&entry.mapping)),
    ])
}

/// The memo tier: a hit (searched earlier or warm-loaded) serves in
/// microseconds and bumps the matching counter.
fn memo_hit(state: &ServeState, ctx_fp: u64) -> Option<Json> {
    let entry = lock_recover(&state.memo).get(&ctx_fp).cloned()?;
    let source = match entry.origin {
        Origin::Store => {
            state.counters.store_hits.fetch_add(1, Ordering::Relaxed);
            "store"
        }
        Origin::Memo => {
            state.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
            "memo"
        }
    };
    Some(result_body(ctx_fp, source, &entry))
}

/// The three-tier serve path for one workload (see the module docs).
fn schedule_response(state: &ServeState, workload: &Workload, arch_name: &str) -> Json {
    let Some(arch) = wire::arch_by_name(arch_name) else {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
        return error_response("protocol", &format!("unknown architecture preset {arch_name:?}"));
    };
    let ctx_fp = state.scheduler.context_fingerprint(workload, &arch);
    if let Some(hit) = memo_hit(state, ctx_fp) {
        return hit;
    }
    // Single-flight: concurrent misses on the same context serialize
    // here; whoever acquires first searches, everyone after re-checks
    // the memo under the flight lock and hits.
    let flight = Arc::clone(lock_recover(&state.flights).entry(ctx_fp).or_default());
    let _guard = flight.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = memo_hit(state, ctx_fp) {
        return hit;
    }
    state.counters.searches.fetch_add(1, Ordering::Relaxed);
    let result = match state.scheduler.schedule(workload, &arch) {
        Ok(r) => r,
        Err(e) => {
            lock_recover(&state.flights).remove(&ctx_fp);
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(error_kind(&e), &e.to_string());
        }
    };
    let entry = Arc::new(MemoEntry {
        mapping_fp: mapping_fingerprint(&result.mapping),
        report: result.report,
        mapping: result.mapping,
        origin: Origin::Memo,
    });
    let response = result_body(ctx_fp, "search", &entry);
    if let Some(store) = &state.store {
        let rec = StoreRecord {
            ctx_fp,
            mapping_fp: entry.mapping_fp,
            arch: arch_name.to_string(),
            edp: entry.report.edp,
            energy_pj: entry.report.energy_pj,
            delay_cycles: entry.report.delay_cycles,
            workload: wire::workload_to_json(workload),
            mapping: wire::mapping_to_json(&entry.mapping),
        };
        // A full disk degrades persistence, not serving.
        let _ = lock_recover(store).append(rec);
    }
    lock_recover(&state.memo).insert(ctx_fp, entry);
    lock_recover(&state.flights).remove(&ctx_fp);
    response
}

fn stats_response(state: &ServeState) -> Json {
    let c = &state.counters;
    let session = state.scheduler.cache_stats();
    let mut pairs = vec![
        ("ok".into(), Json::Bool(true)),
        ("requests".into(), Json::Num(c.requests.load(Ordering::Relaxed) as f64)),
        ("searches".into(), Json::Num(c.searches.load(Ordering::Relaxed) as f64)),
        ("memo_hits".into(), Json::Num(c.memo_hits.load(Ordering::Relaxed) as f64)),
        ("store_hits".into(), Json::Num(c.store_hits.load(Ordering::Relaxed) as f64)),
        ("errors".into(), Json::Num(c.errors.load(Ordering::Relaxed) as f64)),
        ("memo_entries".into(), Json::Num(lock_recover(&state.memo).len() as f64)),
        (
            "session".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Num(session.hits as f64)),
                ("misses".into(), Json::Num(session.misses as f64)),
                ("entries".into(), Json::Num(session.entries as f64)),
                ("pool_rounds".into(), Json::Num(session.pool_rounds as f64)),
            ]),
        ),
    ];
    if let Some(store) = &state.store {
        let s = lock_recover(store).stats();
        pairs.push((
            "store".into(),
            Json::Obj(vec![
                ("records".into(), Json::Num(s.records as f64)),
                ("corrupt_lines".into(), Json::Num(s.corrupt_lines as f64)),
                ("stale_shards".into(), Json::Num(s.stale_shards as f64)),
                ("appended".into(), Json::Num(s.appended as f64)),
                ("loaded".into(), Json::Num(c.loaded.load(Ordering::Relaxed) as f64)),
                ("load_skipped".into(), Json::Num(c.load_skipped.load(Ordering::Relaxed) as f64)),
            ]),
        ));
    }
    Json::Obj(pairs)
}
