//! The persistent on-disk mapping store: best mapping + cost per
//! scheduling context, surviving daemon restarts.
//!
//! # Format (`sunstone-store/v2`)
//!
//! A store is a directory of line-oriented shards, `shard-NN.log`. Every
//! shard starts with a plain-JSON header line
//!
//! ```json
//! {"schema":"sunstone-store/v2","cost_model":1,"shards":4}
//! ```
//!
//! followed by one *checksummed* record per line: eight lowercase hex
//! digits of the record's CRC32 ([`crate::crc::crc32`]), one space, then
//! the record JSON the checksum covers:
//!
//! ```text
//! 9f3a01bc {"ctx_fp":"…","mapping_fp":"…","arch":"simba_like",…}
//! ```
//!
//! Fingerprints are decimal strings (u64s do not survive JSON numbers);
//! the workload and mapping are embedded in full so a fresh daemon can
//! rebuild the problem, re-validate the mapping, and re-price it under
//! the current cost model — the stored EDP is a cache, never an oracle.
//!
//! # Corruption and quarantine
//!
//! A record line that fails its CRC, fails to parse, or is torn by an
//! unclean shutdown is **quarantined**: the raw line is appended to the
//! shard's `shard-NN.quarantine` sidecar, counted in
//! [`StoreStats::quarantined`], and never enters the in-memory index —
//! a flipped bit loses one cached result and leaves evidence, it never
//! serves a wrong mapping and never fails the open. A shard whose
//! *header* is missing, wrong-schema (other than v1, see below), or
//! priced under a different [`COST_MODEL_VERSION`] is discarded
//! wholesale — replaying costs from an older model would serve wrong
//! numbers as current.
//!
//! # Durability
//!
//! Appends go through a buffered writer with one logical line per
//! record; [`FsyncPolicy`] decides how often the shard file is
//! `fsync`ed: `Never` (flush to the OS only), `PerRecord` (the default:
//! an fsync after every append), or `Interval` (at most one fsync per
//! period, amortizing bursts). Compaction always syncs the temp file
//! before the atomic rename that commits it.
//!
//! # Migration
//!
//! A shard with a `sunstone-store/v1` header (plain JSON lines, no
//! checksums) and a current cost-model version is migrated on first
//! open: its records are loaded with the v1 parser, then the shard is
//! rewritten in v2 form via temp file + rename and counted in
//! [`StoreStats::migrated_shards`]. A crash mid-migration leaves either
//! the old v1 shard or the new v2 shard, both loadable.
//!
//! # Compaction
//!
//! Appends are log-structured: a context scheduled twice appears twice,
//! last record winning at load. [`MappingStore::compact`] (called on
//! graceful shutdown) rewrites each shard to exactly one record per
//! context via a temp file + atomic rename, so a crash *during*
//! compaction leaves either the old or the new shard, both valid.
//! Quarantine sidecars are left untouched — they are operator evidence.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use sunstone_model::COST_MODEL_VERSION;

use crate::crc::crc32;
use crate::json::{self, u64_str, Json};

/// Store schema identifier; bump on any incompatible layout change.
pub const SCHEMA: &str = "sunstone-store/v2";

/// The previous, checksum-less schema, still readable (and migrated)
/// when its cost-model version matches.
const SCHEMA_V1: &str = "sunstone-store/v1";

/// How often an appended record is `fsync`ed to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Flush to the OS after every record but never fsync: a host crash
    /// can lose recent appends, a daemon crash cannot.
    Never,
    /// Fsync after every appended record (the default): a host crash
    /// loses at most the in-flight record.
    #[default]
    PerRecord,
    /// Fsync at most once per period, amortizing append bursts.
    Interval(Duration),
}

/// One persisted scheduling result.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// The session's context fingerprint (workload, arch, config,
    /// constraints) — the lookup key.
    pub ctx_fp: u64,
    /// Fingerprint of the stored mapping, for bit-identity gating.
    pub mapping_fp: u64,
    /// Architecture preset name the result was produced on.
    pub arch: String,
    /// Stored cost figures (re-priced at load; see the module docs).
    pub edp: f64,
    pub energy_pj: f64,
    pub delay_cycles: f64,
    /// Self-contained workload encoding ([`crate::wire::workload_to_json`]).
    pub workload: Json,
    /// Mapping encoding ([`crate::wire::mapping_to_json`]).
    pub mapping: Json,
}

impl StoreRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ctx_fp".into(), u64_str(self.ctx_fp)),
            ("mapping_fp".into(), u64_str(self.mapping_fp)),
            ("arch".into(), Json::Str(self.arch.clone())),
            ("edp".into(), Json::Num(self.edp)),
            ("energy_pj".into(), Json::Num(self.energy_pj)),
            ("delay_cycles".into(), Json::Num(self.delay_cycles)),
            ("workload".into(), self.workload.clone()),
            ("mapping".into(), self.mapping.clone()),
        ])
    }

    /// The v2 on-disk line: CRC over the serialized record, then the
    /// record itself.
    fn to_line(&self) -> String {
        let body = self.to_json().to_string();
        format!("{:08x} {body}", crc32(body.as_bytes()))
    }

    fn from_json(v: &Json) -> Option<StoreRecord> {
        Some(StoreRecord {
            ctx_fp: v.get("ctx_fp")?.as_u64_str()?,
            mapping_fp: v.get("mapping_fp")?.as_u64_str()?,
            arch: v.get("arch")?.as_str()?.to_string(),
            edp: v.get("edp")?.as_f64()?,
            energy_pj: v.get("energy_pj")?.as_f64()?,
            delay_cycles: v.get("delay_cycles")?.as_f64()?,
            workload: v.get("workload")?.clone(),
            mapping: v.get("mapping")?.clone(),
        })
    }

    /// Parses a v2 line: `<crc32 hex8> <json>`, checksum verified before
    /// the JSON is even parsed.
    fn from_line(line: &str) -> Option<StoreRecord> {
        let (crc_hex, body) = line.split_once(' ')?;
        if crc_hex.len() != 8 {
            return None;
        }
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc != crc32(body.as_bytes()) {
            return None;
        }
        Self::from_json(&json::parse(body).ok()?)
    }
}

/// Load-time statistics, surfaced through `cache_stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Distinct contexts loaded.
    pub records: usize,
    /// Unparseable, checksum-failing, or truncated lines rejected at
    /// load (every one of them also lands in `quarantined`, except lines
    /// so torn they cannot even be read as text).
    pub corrupt_lines: usize,
    /// Corrupt record lines copied to a `.quarantine` sidecar at load.
    pub quarantined: usize,
    /// Shards discarded for schema or cost-model version mismatch.
    pub stale_shards: usize,
    /// v1 shards rewritten to v2 on open.
    pub migrated_shards: usize,
    /// Records appended since open.
    pub appended: u64,
    /// `fsync` calls issued since open (see [`FsyncPolicy`]).
    pub fsyncs: u64,
}

/// The persistent store: an in-memory latest-per-context index over
/// sharded append logs.
#[derive(Debug)]
pub struct MappingStore {
    dir: PathBuf,
    shards: usize,
    fsync: FsyncPolicy,
    /// Latest record per context fingerprint.
    records: HashMap<u64, StoreRecord>,
    /// Open appenders, one per shard (lazily created).
    writers: Vec<Option<BufWriter<File>>>,
    /// Per-shard last-fsync instant, for [`FsyncPolicy::Interval`].
    last_sync: Vec<Instant>,
    /// Per-shard "previous append may have torn its line" flag: set
    /// before a record's bytes go out, cleared after its newline lands,
    /// so the next append can terminate a half-written line first.
    torn: Vec<bool>,
    stats: StoreStats,
}

impl MappingStore {
    /// Opens (or initializes) a store directory with `shards` shard
    /// files and the default [`FsyncPolicy`]. Existing shards are
    /// replayed into the in-memory index (v1 shards are migrated); see
    /// the module docs for how corruption and version skew degrade.
    ///
    /// # Errors
    ///
    /// Only filesystem failures (directory creation, unreadable files)
    /// error; corrupt *content* never does.
    pub fn open(dir: impl Into<PathBuf>, shards: usize) -> std::io::Result<MappingStore> {
        Self::open_with(dir, shards, FsyncPolicy::default())
    }

    /// [`open`](Self::open) with an explicit durability policy.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        shards: usize,
        fsync: FsyncPolicy,
    ) -> std::io::Result<MappingStore> {
        let dir = dir.into();
        let shards = shards.clamp(1, 64);
        fs::create_dir_all(&dir)?;
        let mut store = MappingStore {
            dir,
            shards,
            fsync,
            records: HashMap::new(),
            writers: (0..shards).map(|_| None).collect(),
            last_sync: vec![Instant::now(); shards],
            torn: vec![false; shards],
            stats: StoreStats::default(),
        };
        for i in 0..shards {
            if store.load_shard(i)? {
                store.rewrite_shard(i)?;
                store.stats.migrated_shards += 1;
            }
        }
        store.stats.records = store.records.len();
        Ok(store)
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:02}.log"))
    }

    fn quarantine_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:02}.quarantine"))
    }

    fn shard_of(&self, ctx_fp: u64) -> usize {
        // Top bits: FNV output mixes well, and the prefix keeps related
        // contexts spread even if low bits ever become structured.
        (ctx_fp >> 56) as usize % self.shards
    }

    fn header(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("cost_model".into(), Json::Num(f64::from(COST_MODEL_VERSION))),
            ("shards".into(), Json::Num(self.shards as f64)),
        ])
        .to_string()
    }

    /// Classifies a shard's header line: current v2, migratable v1, or
    /// untrusted.
    fn header_schema(line: &str) -> Option<&'static str> {
        let v = json::parse(line).ok()?;
        if v.get("cost_model").and_then(Json::as_u64) != Some(u64::from(COST_MODEL_VERSION)) {
            return None;
        }
        match v.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => Some(SCHEMA),
            Some(s) if s == SCHEMA_V1 => Some(SCHEMA_V1),
            _ => None,
        }
    }

    /// Copies a rejected line into the shard's quarantine sidecar and
    /// counts it. Sidecar I/O is best-effort: quarantine must never turn
    /// a corrupt record into a failed open.
    fn quarantine(&mut self, shard: usize, line: &str) {
        self.stats.corrupt_lines += 1;
        self.stats.quarantined += 1;
        if let Ok(mut f) =
            OpenOptions::new().create(true).append(true).open(self.quarantine_path(shard))
        {
            let _ = f.write_all(line.as_bytes());
            let _ = f.write_all(b"\n");
        }
    }

    /// Replays one shard into the index. Returns `true` when the shard
    /// was read under the v1 schema and needs migration.
    fn load_shard(&mut self, shard: usize) -> std::io::Result<bool> {
        let path = self.shard_path(shard);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        let mut lines = BufReader::new(file).lines();
        let schema = match lines.next() {
            Some(Ok(header)) => Self::header_schema(&header),
            _ => None,
        };
        let Some(schema) = schema else {
            // Missing, torn, or version-skewed header: the whole shard is
            // untrusted. Drop it on disk too, so a later append does not
            // graft current-version records onto a stale file.
            self.stats.stale_shards += 1;
            fs::remove_file(&path)?;
            return Ok(false);
        };
        for line in lines {
            let Ok(line) = line else {
                // Unreadable tail (e.g. torn multi-byte sequence): the
                // raw bytes cannot even be lifted into a sidecar line.
                self.stats.corrupt_lines += 1;
                break;
            };
            if line.trim().is_empty() {
                continue;
            }
            let parsed = if schema == SCHEMA {
                StoreRecord::from_line(&line)
            } else {
                json::parse(&line).ok().as_ref().and_then(StoreRecord::from_json)
            };
            match parsed {
                Some(rec) => {
                    self.records.insert(rec.ctx_fp, rec);
                }
                // A torn tail (unclean shutdown), a flipped bit, or any
                // other garbage: quarantine and count, never fail the
                // open, never serve.
                None => self.quarantine(shard, &line),
            }
        }
        Ok(schema == SCHEMA_V1)
    }

    /// Number of distinct contexts currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Load/append statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats { records: self.records.len(), ..self.stats }
    }

    /// The latest record for `ctx_fp`, if any.
    pub fn get(&self, ctx_fp: u64) -> Option<&StoreRecord> {
        self.records.get(&ctx_fp)
    }

    /// Iterates over the latest record of every context.
    pub fn iter(&self) -> impl Iterator<Item = &StoreRecord> {
        self.records.values()
    }

    /// Appends `record` to its shard (creating the shard with a fresh
    /// header if needed) and updates the in-memory index.
    ///
    /// # Errors
    ///
    /// Filesystem failures; the in-memory index is updated regardless, so
    /// a full disk degrades persistence but not serving.
    pub fn append(&mut self, record: StoreRecord) -> std::io::Result<()> {
        let shard = self.shard_of(record.ctx_fp);
        let line = record.to_line();
        self.records.insert(record.ctx_fp, record);
        self.stats.appended += 1;
        if self.writers[shard].is_none() {
            let path = self.shard_path(shard);
            let fresh = !path.exists();
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            let mut w = BufWriter::new(file);
            if fresh {
                w.write_all(self.header().as_bytes())?;
                w.write_all(b"\n")?;
            }
            self.writers[shard] = Some(w);
        }
        let w = self.writers[shard].as_mut().expect("writer just ensured");
        if self.torn[shard] {
            // The previous append panicked or failed mid-line; terminate
            // the half-written line so this record starts clean. The torn
            // half is quarantined at the next open.
            w.write_all(b"\n")?;
        }
        self.torn[shard] = true;
        // Two write halves with a failpoint between them: an injected
        // panic here is a *genuine* short write, the torn-record case the
        // chaos soak and the quarantine path must absorb.
        let (head, tail) = line.as_bytes().split_at(line.len() / 2);
        w.write_all(head)?;
        faultpoint!("serve.store_append");
        w.write_all(tail)?;
        w.write_all(b"\n")?;
        w.flush()?;
        self.torn[shard] = false;
        self.sync_shard(shard)
    }

    /// Applies the [`FsyncPolicy`] after an append to `shard`.
    fn sync_shard(&mut self, shard: usize) -> std::io::Result<()> {
        let due = match self.fsync {
            FsyncPolicy::Never => false,
            FsyncPolicy::PerRecord => true,
            FsyncPolicy::Interval(period) => self.last_sync[shard].elapsed() >= period,
        };
        if !due {
            return Ok(());
        }
        faultpoint!("serve.fsync");
        if let Some(w) = self.writers[shard].as_mut() {
            w.get_ref().sync_data()?;
        }
        self.last_sync[shard] = Instant::now();
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Writes `recs` as a complete v2 shard via temp file + atomic
    /// rename (the commit point). The temp file is synced before the
    /// rename, so a committed shard is durable.
    fn write_shard(&self, shard: usize, recs: &[&StoreRecord]) -> std::io::Result<()> {
        let tmp = self.dir.join(format!("shard-{shard:02}.tmp"));
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(self.header().as_bytes())?;
            w.write_all(b"\n")?;
            for rec in recs {
                w.write_all(rec.to_line().as_bytes())?;
                w.write_all(b"\n")?;
            }
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        faultpoint!("serve.compact_rename");
        fs::rename(&tmp, self.shard_path(shard))
    }

    /// The latest records that live in `shard`, in deterministic
    /// (fingerprint) order: rewriting the same contents twice produces
    /// byte-identical shards.
    fn shard_records(&self, shard: usize) -> Vec<&StoreRecord> {
        let mut recs: Vec<&StoreRecord> =
            self.records.values().filter(|r| self.shard_of(r.ctx_fp) == shard).collect();
        recs.sort_by_key(|r| r.ctx_fp);
        recs
    }

    /// Rewrites one shard in v2 form from the records already loaded —
    /// the migration step for a v1 shard.
    fn rewrite_shard(&mut self, shard: usize) -> std::io::Result<()> {
        self.writers[shard] = None;
        let recs = self.shard_records(shard);
        if recs.is_empty() {
            let path = self.shard_path(shard);
            if path.exists() {
                fs::remove_file(&path)?;
            }
            return Ok(());
        }
        self.write_shard(shard, &recs)
    }

    /// Rewrites every shard to exactly one line per context (latest
    /// wins), via temp file + atomic rename. Called on graceful shutdown;
    /// safe to call repeatedly.
    ///
    /// # Errors
    ///
    /// Filesystem failures. A failed compaction leaves the previous
    /// shards intact (the rename is the commit point).
    pub fn compact(&mut self) -> std::io::Result<()> {
        // Close appenders first so the rename below supersedes them.
        self.writers = (0..self.shards).map(|_| None).collect();
        self.torn = vec![false; self.shards];
        for shard in 0..self.shards {
            let recs = self.shard_records(shard);
            if recs.is_empty() {
                let path = self.shard_path(shard);
                if path.exists() {
                    fs::remove_file(&path)?;
                }
                continue;
            }
            self.write_shard(shard, &recs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ctx: u64, edp: f64) -> StoreRecord {
        StoreRecord {
            ctx_fp: ctx,
            mapping_fp: ctx.wrapping_mul(3),
            arch: "simba_like".into(),
            edp,
            energy_pj: 1.0,
            delay_cycles: 2.0,
            workload: Json::Obj(vec![("name".into(), Json::Str("w".into()))]),
            mapping: Json::Obj(vec![("levels".into(), Json::Arr(vec![]))]),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("sunstone-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_reload_latest_wins() {
        let dir = tmpdir("reload");
        {
            let mut s = MappingStore::open(&dir, 4).unwrap();
            s.append(rec(1, 10.0)).unwrap();
            s.append(rec(2, 20.0)).unwrap();
            s.append(rec(1, 5.0)).unwrap(); // supersedes
        }
        let s = MappingStore::open(&dir, 4).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().edp, 5.0);
        assert_eq!(s.get(2).unwrap().edp, 20.0);
        assert_eq!(s.stats().corrupt_lines, 0);
        assert_eq!(s.stats().quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_quarantined_not_fatal() {
        let dir = tmpdir("torn");
        {
            let mut s = MappingStore::open(&dir, 1).unwrap();
            s.append(rec(7, 1.0)).unwrap();
            s.append(rec(8, 2.0)).unwrap();
        }
        // Simulate an unclean shutdown: cut the last line mid-record.
        let path = dir.join("shard-00.log");
        let contents = fs::read_to_string(&path).unwrap();
        fs::write(&path, &contents[..contents.len() - 30]).unwrap();
        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.get(7).is_some());
        assert_eq!(s.stats().corrupt_lines, 1);
        assert_eq!(s.stats().quarantined, 1);
        let sidecar = fs::read_to_string(dir.join("shard-00.quarantine")).unwrap();
        assert_eq!(sidecar.lines().count(), 1, "torn line must land in the sidecar");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_is_quarantined_by_the_checksum() {
        let dir = tmpdir("bitflip");
        {
            let mut s = MappingStore::open(&dir, 1).unwrap();
            s.append(rec(7, 1.0)).unwrap();
            s.append(rec(8, 2.0)).unwrap();
        }
        let path = dir.join("shard-00.log");
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit in the middle of the *first record line's* JSON
        // body — the header is line 0, records start after it.
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let line_end =
            header_end + 1 + bytes[header_end + 1..].iter().position(|&b| b == b'\n').unwrap();
        let target = (header_end + 1 + line_end) / 2;
        bytes[target] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.len(), 1, "the flipped record must not be served");
        assert_eq!(s.stats().quarantined, 1);
        assert!(dir.join("shard-00.quarantine").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_discards_the_shard() {
        let dir = tmpdir("skew");
        {
            let mut s = MappingStore::open(&dir, 1).unwrap();
            s.append(rec(9, 1.0)).unwrap();
        }
        let path = dir.join("shard-00.log");
        let contents = fs::read_to_string(&path).unwrap();
        let bumped = contents.replacen(
            &format!("\"cost_model\":{COST_MODEL_VERSION}"),
            &format!("\"cost_model\":{}", COST_MODEL_VERSION + 1),
            1,
        );
        assert_ne!(contents, bumped, "header rewrite must take");
        fs::write(&path, bumped).unwrap();
        let s = MappingStore::open(&dir, 1).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.stats().stale_shards, 1);
        assert!(!path.exists(), "stale shard is removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_shard_migrates_to_v2_on_open() {
        let dir = tmpdir("migrate");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-00.log");
        // A v1 shard: plain JSON lines, no checksums, two records with a
        // superseding rewrite of the first.
        let mut v1 = format!(
            "{{\"schema\":\"{SCHEMA_V1}\",\"cost_model\":{COST_MODEL_VERSION},\"shards\":1}}\n"
        );
        for r in [rec(5, 1.0), rec(6, 2.0), rec(5, 9.0)] {
            v1.push_str(&r.to_json().to_string());
            v1.push('\n');
        }
        fs::write(&path, v1).unwrap();

        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.stats().migrated_shards, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(5).unwrap().edp, 9.0, "latest-wins must survive migration");
        assert_eq!(s.get(6).unwrap().edp, 2.0);

        // On disk the shard is now v2: current header, checksummed lines.
        let contents = fs::read_to_string(&path).unwrap();
        let mut lines = contents.lines();
        assert!(lines.next().unwrap().contains(SCHEMA));
        for line in lines {
            assert!(StoreRecord::from_line(line).is_some(), "unverifiable migrated line: {line}");
        }

        // And a second open is a plain v2 load, no second migration.
        drop(s);
        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.stats().migrated_shards, 0);
        assert_eq!(s.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_fsync_coalesces_and_never_skips_forever() {
        let dir = tmpdir("fsync");
        let mut s =
            MappingStore::open_with(&dir, 1, FsyncPolicy::Interval(Duration::from_secs(3600)))
                .unwrap();
        for i in 0..10u64 {
            s.append(rec(i, i as f64)).unwrap();
        }
        assert_eq!(s.stats().fsyncs, 0, "a long interval must coalesce bursts");
        drop(s);
        let mut s = MappingStore::open_with(&dir, 1, FsyncPolicy::PerRecord).unwrap();
        s.append(rec(99, 1.0)).unwrap();
        assert_eq!(s.stats().fsyncs, 1, "per-record must sync every append");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_dedups_and_survives_reopen() {
        let dir = tmpdir("compact");
        {
            let mut s = MappingStore::open(&dir, 2).unwrap();
            for i in 0..10u64 {
                s.append(rec(i << 56, i as f64)).unwrap(); // spread shards
                s.append(rec(i << 56, i as f64 + 100.0)).unwrap();
            }
            s.compact().unwrap();
        }
        let s = MappingStore::open(&dir, 2).unwrap();
        assert_eq!(s.len(), 10);
        for i in 0..10u64 {
            assert_eq!(s.get(i << 56).unwrap().edp, i as f64 + 100.0);
        }
        // One line per record plus a header per existing shard.
        let mut lines = 0;
        for i in 0..2 {
            let p = dir.join(format!("shard-{i:02}.log"));
            if p.exists() {
                lines += fs::read_to_string(p).unwrap().lines().count();
            }
        }
        assert_eq!(lines, 10 + 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_compact_keeps_appending() {
        let dir = tmpdir("appendafter");
        let mut s = MappingStore::open(&dir, 1).unwrap();
        s.append(rec(1, 1.0)).unwrap();
        s.compact().unwrap();
        s.append(rec(2, 2.0)).unwrap();
        drop(s);
        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
