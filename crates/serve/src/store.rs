//! The persistent on-disk mapping store: best mapping + cost per
//! scheduling context, surviving daemon restarts.
//!
//! # Format
//!
//! A store is a directory of JSON-lines shards, `shard-NN.log`. Every
//! shard starts with a header line
//!
//! ```json
//! {"schema":"sunstone-store/v1","cost_model":1,"shards":4}
//! ```
//!
//! followed by one record per line:
//!
//! ```json
//! {"ctx_fp":"…","mapping_fp":"…","arch":"simba_like","edp":…,
//!  "energy_pj":…,"delay_cycles":…,"workload":{…},"mapping":{…}}
//! ```
//!
//! Fingerprints are decimal strings (u64s do not survive JSON numbers);
//! the workload and mapping are embedded in full so a fresh daemon can
//! rebuild the problem, re-validate the mapping, and re-price it under
//! the current cost model — the stored EDP is a cache, never an oracle.
//!
//! # Crash safety
//!
//! Appends go through a buffered writer with one `write_all` per line, so
//! an unclean shutdown can only truncate the *tail* of a shard.
//! [`MappingStore::open`] therefore skips unparseable lines (counting
//! them in [`StoreStats::corrupt_lines`]) instead of failing: a torn
//! record loses one result, never the store. A shard whose *header* is
//! missing, wrong-schema, or priced under a different
//! [`COST_MODEL_VERSION`] is
//! discarded wholesale — replaying costs from an older model would serve
//! wrong numbers as current.
//!
//! # Compaction
//!
//! Appends are log-structured: a context scheduled twice appears twice,
//! last record winning at load. [`MappingStore::compact`] (called on
//! graceful shutdown) rewrites each shard to exactly one record per
//! context via a temp file + atomic rename, so a crash *during*
//! compaction leaves either the old or the new shard, both valid.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;

use sunstone_model::COST_MODEL_VERSION;

use crate::json::{self, u64_str, Json};

/// Store schema identifier; bump on any incompatible layout change.
pub const SCHEMA: &str = "sunstone-store/v1";

/// One persisted scheduling result.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// The session's context fingerprint (workload, arch, config,
    /// constraints) — the lookup key.
    pub ctx_fp: u64,
    /// Fingerprint of the stored mapping, for bit-identity gating.
    pub mapping_fp: u64,
    /// Architecture preset name the result was produced on.
    pub arch: String,
    /// Stored cost figures (re-priced at load; see the module docs).
    pub edp: f64,
    pub energy_pj: f64,
    pub delay_cycles: f64,
    /// Self-contained workload encoding ([`crate::wire::workload_to_json`]).
    pub workload: Json,
    /// Mapping encoding ([`crate::wire::mapping_to_json`]).
    pub mapping: Json,
}

impl StoreRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ctx_fp".into(), u64_str(self.ctx_fp)),
            ("mapping_fp".into(), u64_str(self.mapping_fp)),
            ("arch".into(), Json::Str(self.arch.clone())),
            ("edp".into(), Json::Num(self.edp)),
            ("energy_pj".into(), Json::Num(self.energy_pj)),
            ("delay_cycles".into(), Json::Num(self.delay_cycles)),
            ("workload".into(), self.workload.clone()),
            ("mapping".into(), self.mapping.clone()),
        ])
    }

    fn from_json(v: &Json) -> Option<StoreRecord> {
        Some(StoreRecord {
            ctx_fp: v.get("ctx_fp")?.as_u64_str()?,
            mapping_fp: v.get("mapping_fp")?.as_u64_str()?,
            arch: v.get("arch")?.as_str()?.to_string(),
            edp: v.get("edp")?.as_f64()?,
            energy_pj: v.get("energy_pj")?.as_f64()?,
            delay_cycles: v.get("delay_cycles")?.as_f64()?,
            workload: v.get("workload")?.clone(),
            mapping: v.get("mapping")?.clone(),
        })
    }
}

/// Load-time statistics, surfaced through `cache_stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Distinct contexts loaded.
    pub records: usize,
    /// Unparseable or truncated lines skipped at load.
    pub corrupt_lines: usize,
    /// Shards discarded for schema or cost-model version mismatch.
    pub stale_shards: usize,
    /// Records appended since open.
    pub appended: u64,
}

/// The persistent store: an in-memory latest-per-context index over
/// sharded append logs.
#[derive(Debug)]
pub struct MappingStore {
    dir: PathBuf,
    shards: usize,
    /// Latest record per context fingerprint.
    records: HashMap<u64, StoreRecord>,
    /// Open appenders, one per shard (lazily created).
    writers: Vec<Option<BufWriter<File>>>,
    stats: StoreStats,
}

impl MappingStore {
    /// Opens (or initializes) a store directory with `shards` shard files.
    /// Existing shards are replayed into the in-memory index; see the
    /// module docs for how corruption and version skew degrade.
    ///
    /// # Errors
    ///
    /// Only filesystem failures (directory creation, unreadable files)
    /// error; corrupt *content* never does.
    pub fn open(dir: impl Into<PathBuf>, shards: usize) -> std::io::Result<MappingStore> {
        let dir = dir.into();
        let shards = shards.clamp(1, 64);
        fs::create_dir_all(&dir)?;
        let mut store = MappingStore {
            dir,
            shards,
            records: HashMap::new(),
            writers: (0..shards).map(|_| None).collect(),
            stats: StoreStats::default(),
        };
        for i in 0..shards {
            store.load_shard(i)?;
        }
        store.stats.records = store.records.len();
        Ok(store)
    }

    fn shard_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:02}.log"))
    }

    fn shard_of(&self, ctx_fp: u64) -> usize {
        // Top bits: FNV output mixes well, and the prefix keeps related
        // contexts spread even if low bits ever become structured.
        (ctx_fp >> 56) as usize % self.shards
    }

    fn header(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("cost_model".into(), Json::Num(f64::from(COST_MODEL_VERSION))),
            ("shards".into(), Json::Num(self.shards as f64)),
        ])
        .to_string()
    }

    fn header_is_current(line: &str) -> bool {
        let Ok(v) = json::parse(line) else { return false };
        v.get("schema").and_then(Json::as_str) == Some(SCHEMA)
            && v.get("cost_model").and_then(Json::as_u64) == Some(u64::from(COST_MODEL_VERSION))
    }

    fn load_shard(&mut self, shard: usize) -> std::io::Result<()> {
        let path = self.shard_path(shard);
        let file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut lines = BufReader::new(file).lines();
        match lines.next() {
            Some(Ok(header)) if Self::header_is_current(&header) => {}
            // Missing, torn, or version-skewed header: the whole shard is
            // untrusted. Drop it on disk too, so a later append does not
            // graft current-version records onto a stale file.
            _ => {
                self.stats.stale_shards += 1;
                fs::remove_file(&path)?;
                return Ok(());
            }
        }
        for line in lines {
            let Ok(line) = line else {
                // Unreadable tail (e.g. torn multi-byte sequence).
                self.stats.corrupt_lines += 1;
                break;
            };
            if line.trim().is_empty() {
                continue;
            }
            match json::parse(&line).ok().as_ref().and_then(StoreRecord::from_json) {
                Some(rec) => {
                    self.records.insert(rec.ctx_fp, rec);
                }
                // A torn tail line (unclean shutdown) or bit rot: skip
                // and count, never fail the open.
                None => self.stats.corrupt_lines += 1,
            }
        }
        Ok(())
    }

    /// Number of distinct contexts currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Load/append statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats { records: self.records.len(), ..self.stats }
    }

    /// The latest record for `ctx_fp`, if any.
    pub fn get(&self, ctx_fp: u64) -> Option<&StoreRecord> {
        self.records.get(&ctx_fp)
    }

    /// Iterates over the latest record of every context.
    pub fn iter(&self) -> impl Iterator<Item = &StoreRecord> {
        self.records.values()
    }

    /// Appends `record` to its shard (creating the shard with a fresh
    /// header if needed) and updates the in-memory index.
    ///
    /// # Errors
    ///
    /// Filesystem failures; the in-memory index is updated regardless, so
    /// a full disk degrades persistence but not serving.
    pub fn append(&mut self, record: StoreRecord) -> std::io::Result<()> {
        let shard = self.shard_of(record.ctx_fp);
        let line = record.to_json().to_string();
        self.records.insert(record.ctx_fp, record);
        self.stats.appended += 1;
        if self.writers[shard].is_none() {
            let path = self.shard_path(shard);
            let fresh = !path.exists();
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            let mut w = BufWriter::new(file);
            if fresh {
                w.write_all(self.header().as_bytes())?;
                w.write_all(b"\n")?;
            }
            self.writers[shard] = Some(w);
        }
        let w = self.writers[shard].as_mut().expect("writer just ensured");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }

    /// Rewrites every shard to exactly one line per context (latest
    /// wins), via temp file + atomic rename. Called on graceful shutdown;
    /// safe to call repeatedly.
    ///
    /// # Errors
    ///
    /// Filesystem failures. A failed compaction leaves the previous
    /// shards intact (the rename is the commit point).
    pub fn compact(&mut self) -> std::io::Result<()> {
        // Close appenders first so the rename below supersedes them.
        self.writers = (0..self.shards).map(|_| None).collect();
        for shard in 0..self.shards {
            let mut recs: Vec<&StoreRecord> =
                self.records.values().filter(|r| self.shard_of(r.ctx_fp) == shard).collect();
            let path = self.shard_path(shard);
            if recs.is_empty() {
                if path.exists() {
                    fs::remove_file(&path)?;
                }
                continue;
            }
            // Deterministic order: compacting the same contents twice
            // produces byte-identical shards.
            recs.sort_by_key(|r| r.ctx_fp);
            let tmp = self.dir.join(format!("shard-{shard:02}.tmp"));
            {
                let mut w = BufWriter::new(File::create(&tmp)?);
                w.write_all(self.header().as_bytes())?;
                w.write_all(b"\n")?;
                for rec in recs {
                    w.write_all(rec.to_json().to_string().as_bytes())?;
                    w.write_all(b"\n")?;
                }
                w.flush()?;
            }
            fs::rename(&tmp, &path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ctx: u64, edp: f64) -> StoreRecord {
        StoreRecord {
            ctx_fp: ctx,
            mapping_fp: ctx.wrapping_mul(3),
            arch: "simba_like".into(),
            edp,
            energy_pj: 1.0,
            delay_cycles: 2.0,
            workload: Json::Obj(vec![("name".into(), Json::Str("w".into()))]),
            mapping: Json::Obj(vec![("levels".into(), Json::Arr(vec![]))]),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("sunstone-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_reload_latest_wins() {
        let dir = tmpdir("reload");
        {
            let mut s = MappingStore::open(&dir, 4).unwrap();
            s.append(rec(1, 10.0)).unwrap();
            s.append(rec(2, 20.0)).unwrap();
            s.append(rec(1, 5.0)).unwrap(); // supersedes
        }
        let s = MappingStore::open(&dir, 4).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().edp, 5.0);
        assert_eq!(s.get(2).unwrap().edp, 20.0);
        assert_eq!(s.stats().corrupt_lines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_skipped_not_fatal() {
        let dir = tmpdir("torn");
        {
            let mut s = MappingStore::open(&dir, 1).unwrap();
            s.append(rec(7, 1.0)).unwrap();
            s.append(rec(8, 2.0)).unwrap();
        }
        // Simulate an unclean shutdown: cut the last line mid-record.
        let path = dir.join("shard-00.log");
        let contents = fs::read_to_string(&path).unwrap();
        fs::write(&path, &contents[..contents.len() - 30]).unwrap();
        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.get(7).is_some());
        assert_eq!(s.stats().corrupt_lines, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_discards_the_shard() {
        let dir = tmpdir("skew");
        {
            let mut s = MappingStore::open(&dir, 1).unwrap();
            s.append(rec(9, 1.0)).unwrap();
        }
        let path = dir.join("shard-00.log");
        let contents = fs::read_to_string(&path).unwrap();
        let bumped = contents.replacen(
            &format!("\"cost_model\":{COST_MODEL_VERSION}"),
            &format!("\"cost_model\":{}", COST_MODEL_VERSION + 1),
            1,
        );
        assert_ne!(contents, bumped, "header rewrite must take");
        fs::write(&path, bumped).unwrap();
        let s = MappingStore::open(&dir, 1).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.stats().stale_shards, 1);
        assert!(!path.exists(), "stale shard is removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_dedups_and_survives_reopen() {
        let dir = tmpdir("compact");
        {
            let mut s = MappingStore::open(&dir, 2).unwrap();
            for i in 0..10u64 {
                s.append(rec(i << 56, i as f64)).unwrap(); // spread shards
                s.append(rec(i << 56, i as f64 + 100.0)).unwrap();
            }
            s.compact().unwrap();
        }
        let s = MappingStore::open(&dir, 2).unwrap();
        assert_eq!(s.len(), 10);
        for i in 0..10u64 {
            assert_eq!(s.get(i << 56).unwrap().edp, i as f64 + 100.0);
        }
        // One line per record plus a header per existing shard.
        let mut lines = 0;
        for i in 0..2 {
            let p = dir.join(format!("shard-{i:02}.log"));
            if p.exists() {
                lines += fs::read_to_string(p).unwrap().lines().count();
            }
        }
        assert_eq!(lines, 10 + 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_compact_keeps_appending() {
        let dir = tmpdir("appendafter");
        let mut s = MappingStore::open(&dir, 1).unwrap();
        s.append(rec(1, 1.0)).unwrap();
        s.compact().unwrap();
        s.append(rec(2, 2.0)).unwrap();
        drop(s);
        let s = MappingStore::open(&dir, 1).unwrap();
        assert_eq!(s.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
