//! The `sunstone-serve` daemon binary.
//!
//! ```text
//! Usage: sunstone-serve --socket PATH [--store DIR] [--shards N] [--threads N]
//! ```
//!
//! Listens on the Unix socket until a `shutdown` request arrives, then
//! compacts the store and exits 0. See `crates/serve/src/wire.rs` for
//! the protocol and `DESIGN.md` §3h for the architecture.

use std::process::ExitCode;

use sunstone::prelude::*;
use sunstone_serve::{ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!("Usage: sunstone-serve --socket PATH [--store DIR] [--shards N] [--threads N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut store: Option<String> = None;
    let mut shards = 4usize;
    let mut threads: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next(),
            "--store" => store = args.next(),
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => shards = n,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(socket) = socket else { return usage() };
    let mut config = ServeConfig::new(&socket);
    config.shards = shards;
    if let Some(dir) = store {
        config = config.with_store(dir);
    }
    if let Some(t) = threads {
        match SunstoneConfig::builder().threads(t).and_then(|b| b.build()) {
            Ok(c) => config.config = c,
            Err(e) => {
                eprintln!("sunstone-serve: invalid --threads: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sunstone-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sunstone-serve: listening on {socket}");
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sunstone-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
