//! The `sunstone-serve` daemon binary.
//!
//! ```text
//! Usage: sunstone-serve --socket PATH [--store DIR] [--shards N] [--threads N]
//!                       [--max-conns N] [--max-queued N] [--retry-after-ms N]
//!                       [--idle-timeout-ms N] [--write-timeout-ms N]
//!                       [--fsync never|per-record|interval:MS]
//! ```
//!
//! Listens on the Unix socket until a `shutdown` request arrives, then
//! compacts the store and exits 0. Timeout flags accept `0` for "no
//! timeout". Refuses to start (exit 1) when another daemon already owns
//! the socket. See `crates/serve/src/wire.rs` for the protocol and
//! `DESIGN.md` §3h–§3i for the architecture and overload model.

use std::process::ExitCode;
use std::time::Duration;

use sunstone::prelude::*;
use sunstone_serve::{FsyncPolicy, ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "Usage: sunstone-serve --socket PATH [--store DIR] [--shards N] [--threads N]\n\
         \x20                     [--max-conns N] [--max-queued N] [--retry-after-ms N]\n\
         \x20                     [--idle-timeout-ms N] [--write-timeout-ms N]\n\
         \x20                     [--fsync never|per-record|interval:MS]"
    );
    ExitCode::from(2)
}

/// Parses a `--fsync` argument: `never`, `per-record`, or
/// `interval:<ms>`.
fn parse_fsync(v: &str) -> Option<FsyncPolicy> {
    match v {
        "never" => Some(FsyncPolicy::Never),
        "per-record" => Some(FsyncPolicy::PerRecord),
        _ => {
            let ms: u64 = v.strip_prefix("interval:")?.parse().ok()?;
            Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
        }
    }
}

/// A millisecond flag where `0` means "disabled" (no timeout).
fn parse_timeout(v: &str) -> Option<Option<Duration>> {
    let ms: u64 = v.parse().ok()?;
    Some((ms > 0).then(|| Duration::from_millis(ms)))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut store: Option<String> = None;
    let mut shards = 4usize;
    let mut threads: Option<usize> = None;
    let mut config = ServeConfig::new("");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next(),
            "--store" => store = args.next(),
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => shards = n,
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = Some(n),
                None => return usage(),
            },
            "--max-conns" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_connections = n,
                None => return usage(),
            },
            "--max-queued" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_queued_searches = n,
                None => return usage(),
            },
            "--retry-after-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.retry_after_ms = n,
                None => return usage(),
            },
            "--idle-timeout-ms" => match args.next().as_deref().and_then(parse_timeout) {
                Some(t) => config.idle_timeout = t,
                None => return usage(),
            },
            "--write-timeout-ms" => match args.next().as_deref().and_then(parse_timeout) {
                Some(t) => config.write_timeout = t,
                None => return usage(),
            },
            "--fsync" => match args.next().as_deref().and_then(parse_fsync) {
                Some(p) => config.fsync = p,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(socket) = socket else { return usage() };
    config.socket = socket.clone().into();
    config.shards = shards;
    if let Some(dir) = store {
        config = config.with_store(dir);
    }
    if let Some(t) = threads {
        match SunstoneConfig::builder().threads(t).and_then(|b| b.build()) {
            Ok(c) => config.config = c,
            Err(e) => {
                eprintln!("sunstone-serve: invalid --threads: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sunstone-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("sunstone-serve: listening on {socket}");
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sunstone-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
