//! Hand-rolled CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`)
//! for store-record integrity.
//!
//! The workspace's vendored compression/checksum crates are no-op stubs,
//! so the store carries its own implementation: a compile-time 256-entry
//! table and a byte-at-a-time update loop. This is the same CRC variant
//! `cksum -o3`, zlib, and PNG use, so a record's checksum can be
//! verified with standard tooling when debugging a store by hand.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-indexed remainder table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC32 of `bytes` (init `!0`, final xor `!0` — the standard
/// "CRC-32" everyone means by default).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let line = b"{\"ctx_fp\":\"12345\",\"edp\":1.5}";
        let clean = crc32(line);
        let mut flipped = line.to_vec();
        for i in 0..flipped.len() {
            for bit in 0..8u8 {
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at byte {i} bit {bit} undetected");
                flipped[i] ^= 1 << bit;
            }
        }
    }
}
