//! `sunstone-serve`: a persistent scheduler daemon with an on-disk
//! mapping store.
//!
//! The library crates answer one process's scheduling calls; real
//! deployments (compiler services, autotuners, design-space sweeps) ask
//! the *same* layers over and over across many short-lived client
//! processes. This crate keeps one long-lived [`Scheduler`] session —
//! estimate cache, worker pool, cross-layer warm starts — behind a Unix
//! socket, and persists every best mapping to disk so a restarted daemon
//! answers repeated layers from its store instead of re-searching.
//!
//! * [`wire`] — the length-prefixed JSON protocol and the self-contained
//!   workload/mapping encodings;
//! * [`store`] — the sharded, crash-safe, versioned append log of
//!   `(context fingerprint) → best mapping + cost`;
//! * [`server`] — the accept loop, the three-tier serve path
//!   (memo → search), and the startup warm-load that re-validates and
//!   re-prices every stored record;
//! * [`json`] — the minimal JSON layer everything above shares (the
//!   workspace's `serde` is a no-op stub).
//!
//! Start a daemon with the `sunstone-serve` binary:
//!
//! ```text
//! sunstone-serve --socket /tmp/sunstone.sock --store /var/lib/sunstone
//! ```
//!
//! and drive it with `bench_serve` (crate `sunstone-bench`) or any client
//! that speaks the frame protocol documented in [`wire`].
//!
//! [`Scheduler`]: sunstone::Scheduler

/// Serve-layer failpoint, compiled in only under the `fault-injection`
/// feature (which forwards to the core crate's registry). Points must be
/// listed in `sunstone::faultpoint::SERVE_POINTS`; see
/// `crates/core/src/faultpoint.rs` for the catalogue and semantics.
#[cfg(feature = "fault-injection")]
macro_rules! faultpoint {
    ($name:literal) => {
        sunstone::faultpoint::hit($name)
    };
}
#[cfg(not(feature = "fault-injection"))]
macro_rules! faultpoint {
    ($name:literal) => {};
}

pub mod crc;
pub mod json;
pub mod server;
pub mod store;
pub mod wire;

pub use server::{ServeConfig, ServeError, Server};
pub use store::{FsyncPolicy, MappingStore, StoreRecord, StoreStats};
