//! Lowering (workload, mapping) pairs to DianNao instruction streams.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use sunstone_arch::{presets, ArchSpec, Binding};
use sunstone_ir::{TensorKind, Workload};
use sunstone_mapping::{FlatNest, Mapping, MappingLevel, ValidationContext};

use crate::{BufferId, Instruction, SimError, Simulator};

/// Errors raised while lowering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The mapping is not valid for the DianNao architecture.
    InvalidMapping(String),
    /// The workload cannot be bound to the DianNao buffers (it needs a
    /// weight-named input for SB).
    Binding(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidMapping(e) => write!(f, "invalid mapping: {e}"),
            CompileError::Binding(e) => write!(f, "binding failed: {e}"),
        }
    }
}

impl Error for CompileError {}

/// A compiled program, runnable against a [`Simulator`].
#[derive(Debug, Clone)]
pub struct Program {
    kind: ProgramKind,
}

#[derive(Debug, Clone)]
enum ProgramKind {
    /// Tiled execution following a mapping.
    Tiled(TiledProgram),
    /// Untiled streaming execution (the paper's naive baseline): operands
    /// stream from DRAM exploiting only the NFU's inherent spatial reuse.
    Naive { macs: u64, dram_reads: u64, dram_writes: u64 },
}

#[derive(Debug, Clone)]
struct TiledProgram {
    /// One entry per DRAM-level loop, outermost first: (factor, per-tensor
    /// "indexes this tensor" mask).
    loops: Vec<(u64, Vec<bool>)>,
    /// Per-tensor tile words resident in the buffers.
    tile_words: Vec<u64>,
    /// Which buffer each tensor occupies.
    buffers: Vec<BufferId>,
    /// Whether each tensor is the output.
    is_output: Vec<bool>,
    /// MACs per processing pass.
    macs_per_pass: u64,
    /// Per-tensor buffer reads per pass (after NFU spatial reuse).
    reads_per_pass: Vec<u64>,
    /// NBout read-modify-writes per pass (after spatial reduction).
    nbout_rmw_per_pass: u64,
    /// Words moved by the one-time DRAM data-reordering pass.
    reorder_words: u64,
}

/// The compiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Compiler {
    _private: (),
}

impl Compiler {
    /// Lowers an untiled, streaming execution of the workload: every
    /// operand word is fetched from DRAM as consumed (modulo the NFU's
    /// built-in broadcast/reduction), and outputs are written once.
    pub fn naive(workload: &Workload) -> Result<Program, CompileError> {
        let arch = presets::diannao_like();
        let units = arch.total_spatial_units();
        // The NFU is a 16×16 grid: inputs broadcast across 16 output
        // lanes, partials reduce across 16 input lanes.
        let side = (units as f64).sqrt() as u64;
        let ops = workload.total_ops();
        let mut dram_reads = 0u64;
        let mut dram_writes = 0u64;
        for t in workload.tensors() {
            match t.kind() {
                TensorKind::Input => {
                    // Streaming still amortizes each fetch over the NFU's
                    // 16-deep operand FIFOs (inputs broadcast across the
                    // output lanes, weights held across the input lanes'
                    // pipeline), but captures no tiling reuse beyond that.
                    dram_reads += ops / side.max(1);
                }
                TensorKind::Output => {
                    dram_writes += t.footprint(&workload.dim_sizes());
                }
            }
        }
        Ok(Program { kind: ProgramKind::Naive { macs: ops, dram_reads, dram_writes } })
    }

    /// Lowers a tiled execution following `mapping` (for the DianNao
    /// architecture of [`presets::diannao_like`]).
    ///
    /// # Errors
    ///
    /// Fails if the mapping is invalid for the DianNao architecture or a
    /// tensor cannot be bound to a buffer.
    pub fn tiled(workload: &Workload, mapping: &Mapping) -> Result<Program, CompileError> {
        let arch = presets::diannao_like();
        Self::tiled_for(workload, mapping, &arch)
    }

    fn tiled_for(
        workload: &Workload,
        mapping: &Mapping,
        arch: &ArchSpec,
    ) -> Result<Program, CompileError> {
        let binding =
            Binding::resolve(arch, workload).map_err(|e| CompileError::Binding(e.to_string()))?;
        let ctx = ValidationContext::new(workload, arch, &binding);
        ctx.validate(mapping).map_err(|e| CompileError::InvalidMapping(e.to_string()))?;

        let ndims = workload.num_dims();
        // DianNao layout: pos 0 = NFU (spatial), pos 1 = buffers, pos 2 =
        // DRAM. Resident tile at the buffers level includes the NFU
        // unrolls.
        let tile = mapping.resident_tile(1, ndims);
        let nest = FlatNest::of(mapping, workload);
        let dram_loops: Vec<_> = nest.loops_above(1).to_vec();

        let mut tile_words = Vec::new();
        let mut buffers = Vec::new();
        let mut is_output = Vec::new();
        let mut reads_per_pass = Vec::new();
        let mut reorder_words = 0u64;
        let macs_per_pass: u64 = tile.iter().product();
        let spatial_factors = match mapping.level(0) {
            MappingLevel::Spatial(s) => s.factors.clone(),
            MappingLevel::Temporal(_) => vec![1; ndims],
        };
        let mut nbout_rmw_per_pass = macs_per_pass;
        for t in workload.tensor_ids() {
            let tensor = workload.tensor(t);
            tile_words.push(tensor.footprint(&tile));
            is_output.push(tensor.is_output());
            buffers.push(match tensor.kind() {
                TensorKind::Output => BufferId::NBout,
                TensorKind::Input if tensor.name().contains("weight") => BufferId::Sb,
                TensorKind::Input => BufferId::NBin,
            });
            // Buffer reads per pass: one per MAC, divided by the spatial
            // broadcast across units that do not index the tensor.
            let indexing = tensor.indexing_dims();
            let broadcast: u64 = (0..ndims)
                .filter(|&d| !indexing.contains(sunstone_ir::DimId::from_index(d)))
                .map(|d| spatial_factors[d])
                .product();
            if tensor.is_output() {
                nbout_rmw_per_pass = macs_per_pass / broadcast.max(1);
                reads_per_pass.push(0);
            } else {
                reads_per_pass.push(macs_per_pass / broadcast.max(1));
            }
            // Runtime data reordering applies to activations only:
            // weights are laid out offline (they are static), and the
            // output is produced directly in its consumer's layout.
            if tensor.kind() == TensorKind::Input && !tensor.name().contains("weight") {
                reorder_words += tensor.footprint(&workload.dim_sizes());
            }
        }

        let loops = dram_loops
            .iter()
            .map(|l| {
                let mask =
                    workload.tensors().iter().map(|t| t.indexing_dims().contains(l.dim)).collect();
                (l.factor, mask)
            })
            .collect();

        Ok(Program {
            kind: ProgramKind::Tiled(TiledProgram {
                loops,
                tile_words,
                buffers,
                is_output,
                macs_per_pass,
                reads_per_pass,
                nbout_rmw_per_pass,
                reorder_words,
            }),
        })
    }

    /// Like [`Compiler::tiled`], but overriding the words charged to the
    /// one-time data-reordering pass — e.g. zero when the producer layer
    /// already emits this layer's ifmap layout (see the Fig 9 harness).
    pub fn tiled_with_reorder(
        workload: &Workload,
        mapping: &Mapping,
        reorder_words: u64,
    ) -> Result<Program, CompileError> {
        let mut program = Self::tiled(workload, mapping)?;
        if let ProgramKind::Tiled(p) = &mut program.kind {
            p.reorder_words = reorder_words;
        }
        Ok(program)
    }

    /// Convenience: schedule the workload with a fresh Sunstone session on
    /// the DianNao architecture, then lower the result. Multi-layer
    /// callers should hold one session and use
    /// [`tiled_with_session`](Self::tiled_with_session) so repeated layer
    /// shapes reuse cached estimates.
    pub fn tiled_with_sunstone(workload: &Workload) -> Result<Program, CompileError> {
        let session = sunstone::Scheduler::new(sunstone::SunstoneConfig::default());
        Self::tiled_with_session(workload, &session)
    }

    /// Schedules through an existing [`sunstone::Scheduler`] session and
    /// lowers the result.
    pub fn tiled_with_session(
        workload: &Workload,
        scheduler: &sunstone::Scheduler,
    ) -> Result<Program, CompileError> {
        let (program, _) = Self::tiled_with_session_schedule(workload, scheduler)?;
        Ok(program)
    }

    /// Schedules with a fresh session and returns both the program and the
    /// mapping (for layout-signature analysis).
    pub fn tiled_with_sunstone_mapping(
        workload: &Workload,
    ) -> Result<(Program, Mapping), CompileError> {
        let session = sunstone::Scheduler::new(sunstone::SunstoneConfig::default());
        let (program, result) = Self::tiled_with_session_schedule(workload, &session)?;
        Ok((program, result.mapping))
    }

    /// Schedules through an existing session and returns the program
    /// together with the full [`sunstone::ScheduleResult`] — mapping, cost
    /// report, and the per-level search statistics (the Fig 9 harness
    /// reports the scheduling overhead next to the execution overheads).
    pub fn tiled_with_session_schedule(
        workload: &Workload,
        scheduler: &sunstone::Scheduler,
    ) -> Result<(Program, sunstone::ScheduleResult), CompileError> {
        let arch = presets::diannao_like();
        let result = scheduler
            .schedule(workload, &arch)
            .map_err(|e| CompileError::InvalidMapping(e.to_string()))?;
        let program = Self::tiled_for(workload, &result.mapping, &arch)?;
        Ok((program, result))
    }
}

impl Program {
    /// Executes the program on a simulator.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults (buffer overflow, compute on empty
    /// buffers).
    pub fn run(&self, sim: &mut Simulator) -> Result<(), SimError> {
        match &self.kind {
            ProgramKind::Naive { macs, dram_reads, dram_writes } => {
                sim.stream_naive(*macs, *dram_reads, *dram_writes);
                Ok(())
            }
            ProgramKind::Tiled(p) => self.run_tiled(p, sim),
        }
    }

    fn run_tiled(&self, p: &TiledProgram, sim: &mut Simulator) -> Result<(), SimError> {
        sim.account_reorder(p.reorder_words);
        let n_tensors = p.tile_words.len();
        let n_loops = p.loops.len();
        let mut counters = vec![0u64; n_loops];
        let mut is_first = true;
        // Visited output tiles, keyed by the output-indexing loop indices.
        let mut visited: HashSet<u64> = HashSet::new();
        let out_idx = p.is_output.iter().position(|&o| o).expect("workloads have an output");
        loop {
            // Which loops changed this step? On the first pass, all; on
            // later passes, the incremented loop and everything inside it
            // (odometer semantics).
            let changed_from = if is_first {
                0
            } else {
                let mut i = n_loops;
                loop {
                    debug_assert!(i > 0, "iteration end is checked before incrementing");
                    i -= 1;
                    counters[i] += 1;
                    if counters[i] < p.loops[i].0 {
                        break;
                    }
                    counters[i] = 0;
                }
                i
            };

            // Loads for tensors whose tile changed: any changed loop that
            // indexes the tensor replaces its tile (non-indexing loops
            // leave it resident — the FSM reuse of the paper).
            for t in 0..n_tensors {
                let tile_changed =
                    is_first || p.loops[changed_from..].iter().any(|(_, mask)| mask[t]);
                if !tile_changed {
                    continue;
                }
                if p.is_output[t] {
                    // Evict the previous tile, then reload a revisited
                    // tile or zero-initialize a fresh one.
                    if !is_first {
                        sim.execute(Instruction::Store {
                            buffer: p.buffers[t],
                            words: p.tile_words[t],
                        })?;
                    }
                    let key = output_key(&counters, &p.loops, out_idx);
                    if !visited.insert(key) {
                        sim.execute(Instruction::Load {
                            buffer: p.buffers[t],
                            words: p.tile_words[t],
                        })?;
                    } else {
                        sim.initialize(p.buffers[t], p.tile_words[t])?;
                    }
                } else {
                    sim.execute(Instruction::Load {
                        buffer: p.buffers[t],
                        words: p.tile_words[t],
                    })?;
                }
            }
            is_first = false;

            let mut nbin_reads = 0;
            let mut sb_reads = 0;
            for t in 0..n_tensors {
                match p.buffers[t] {
                    BufferId::NBin => nbin_reads += p.reads_per_pass[t],
                    BufferId::Sb => sb_reads += p.reads_per_pass[t],
                    BufferId::NBout => {}
                }
            }
            sim.execute(Instruction::Compute {
                macs: p.macs_per_pass,
                nbin_reads,
                sb_reads,
                nbout_rmw: p.nbout_rmw_per_pass,
            })?;

            // Advance or finish.
            if counters.iter().zip(&p.loops).all(|(&c, (f, _))| c + 1 == *f) {
                // Final eviction of the last output tile.
                sim.execute(Instruction::Store {
                    buffer: p.buffers[out_idx],
                    words: p.tile_words[out_idx],
                })?;
                return Ok(());
            }
        }
    }
}

/// Hash key of the current output tile: the indices of the loops that
/// index the output tensor.
fn output_key(counters: &[u64], loops: &[(u64, Vec<bool>)], out_idx: usize) -> u64 {
    let mut key = 0u64;
    for (c, (f, mask)) in counters.iter().zip(loops) {
        if mask[out_idx] {
            key = key.wrapping_mul(*f).wrapping_add(*c);
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunstone_workloads::{ConvSpec, Precision};

    fn small() -> Workload {
        ConvSpec::new("t", 1, 8, 8, 8, 8, 3, 3, 1).inference(Precision::conventional())
    }

    #[test]
    fn naive_program_counts_stream_traffic() {
        let w = small();
        let p = Compiler::naive(&w).unwrap();
        let mut sim = Simulator::new();
        p.run(&mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.macs, w.total_ops());
        // Both operands are amortized across the NFU's 16-deep FIFOs.
        assert_eq!(r.dram_reads, 2 * (w.total_ops() / 16));
        assert!(r.dram_writes > 0);
        assert_eq!(r.instructions, 0, "streaming needs no tiling instructions");
    }

    #[test]
    fn tiled_program_runs_and_covers_all_macs() {
        let w = small();
        let p = Compiler::tiled_with_sunstone(&w).unwrap();
        let mut sim = Simulator::new();
        p.run(&mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.macs, w.total_ops(), "every MAC is executed");
        assert!(r.instructions > 0);
        assert!(r.reorder_words > 0);
    }

    #[test]
    fn tiled_beats_naive_on_energy() {
        let w = ConvSpec::new("t", 1, 16, 16, 14, 14, 3, 3, 1).inference(Precision::conventional());
        let naive = Compiler::naive(&w).unwrap();
        let tiled = Compiler::tiled_with_sunstone(&w).unwrap();
        let mut s1 = Simulator::new();
        naive.run(&mut s1).unwrap();
        let mut s2 = Simulator::new();
        tiled.run(&mut s2).unwrap();
        let e_naive = s1.report().total_energy_pj();
        let e_tiled = s2.report().total_energy_pj();
        assert!(
            e_tiled < e_naive,
            "tiling + unrolling wins despite overheads: {e_tiled} vs {e_naive}"
        );
    }

    #[test]
    fn rejects_invalid_mapping() {
        let w = small();
        let arch = presets::diannao_like();
        let mut m = sunstone_mapping::Mapping::streaming(&w, &arch);
        m.levels_mut()[1].factors_mut()[0] = 3; // breaks factor product
        assert!(Compiler::tiled(&w, &m).is_err());
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use sunstone_workloads::{ConvSpec, Precision};

    /// A workload whose tiles fit the buffers entirely: one pass, one
    /// load per tensor, one compute, one store.
    #[test]
    fn single_pass_program_is_minimal() {
        let w = ConvSpec::new("tiny", 1, 4, 4, 4, 4, 1, 1, 1).inference(Precision::conventional());
        let arch = presets::diannao_like();
        let mut mapping = sunstone_mapping::Mapping::streaming(&w, &arch);
        // Everything in the buffers level (pos 1), nothing at DRAM.
        let sizes = w.dim_sizes();
        for (d, &s) in sizes.iter().enumerate() {
            mapping.levels_mut()[1].factors_mut()[d] = s;
            mapping.levels_mut()[2].factors_mut()[d] = 1;
        }
        let program = Compiler::tiled(&w, &mapping).expect("compiles");
        let mut sim = Simulator::new();
        program.run(&mut sim).expect("runs");
        let r = sim.report();
        assert_eq!(r.macs, w.total_ops());
        // 2 input loads + 1 compute + 1 final store = 4 instructions.
        assert_eq!(r.instructions, 4, "{r:?}");
        let sizes = w.dim_sizes();
        let expected_reads: u64 =
            w.tensors().iter().filter(|t| !t.is_output()).map(|t| t.footprint(&sizes)).sum();
        assert_eq!(r.dram_reads, expected_reads, "compulsory traffic only");
    }

    /// Output revisits force NBout round trips: a mapping with the
    /// reduction dim at DRAM *outside* the output-indexing loops reloads
    /// psum tiles.
    #[test]
    fn psum_revisits_produce_loads() {
        let w = ConvSpec::new("t", 1, 4, 8, 4, 4, 1, 1, 1).inference(Precision::conventional());
        let arch = presets::diannao_like();
        let mut mapping = sunstone_mapping::Mapping::streaming(&w, &arch);
        let d = |n: &str| w.dim_by_name(n).unwrap().index();
        for (dim, &s) in w.dim_sizes().iter().enumerate() {
            mapping.levels_mut()[1].factors_mut()[dim] = s;
            mapping.levels_mut()[2].factors_mut()[dim] = 1;
        }
        // Split C and K to DRAM with C *outside* K: each ofmap tile is
        // revisited C_dram times.
        mapping.levels_mut()[1].factors_mut()[d("C")] = 2;
        mapping.levels_mut()[2].factors_mut()[d("C")] = 4;
        mapping.levels_mut()[1].factors_mut()[d("K")] = 2;
        mapping.levels_mut()[2].factors_mut()[d("K")] = 2;
        if let sunstone_mapping::MappingLevel::Temporal(t) = &mut mapping.levels_mut()[2] {
            // innermost-first: K inside C.
            let k = sunstone_ir::DimId::from_index(d("K"));
            let c = sunstone_ir::DimId::from_index(d("C"));
            t.order.retain(|x| *x != k && *x != c);
            t.order.insert(0, k);
            t.order.insert(1, c);
        }
        let program = Compiler::tiled(&w, &mapping).expect("compiles");
        let mut sim = Simulator::new();
        program.run(&mut sim).expect("runs");
        let r = sim.report();
        // 2 K-tiles × 4 C-steps = 8 output-tile residencies; 6 of them
        // are revisits that must be reloaded from DRAM.
        assert!(r.dram_writes > w.tensor(w.output()).footprint(&w.dim_sizes()));
    }
}
