//! The DianNao-style instruction set.

use serde::{Deserialize, Serialize};

/// Width of one control instruction in bits; DianNao's CP instructions
/// are wide VLIW-style words (the paper counts 256-bit instructions).
pub const INSTRUCTION_BITS: u64 = 256;

/// The three on-chip buffers of the DianNao datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferId {
    /// Input-neuron buffer.
    NBin,
    /// Output-neuron (partial sum) buffer.
    NBout,
    /// Synapse (weight) buffer.
    Sb,
}

/// One control instruction.
///
/// Loads and stores move a *tile* between DRAM and a buffer in one burst
/// (the compiler reorders data so each tile is contiguous). A compute
/// instruction starts the NFU FSM over the currently resident tiles; no
/// further instructions are needed while data stays on chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// DMA a tile from DRAM into a buffer.
    Load {
        /// Destination buffer.
        buffer: BufferId,
        /// Transfer size in words.
        words: u64,
    },
    /// DMA a tile from a buffer back to DRAM.
    Store {
        /// Source buffer.
        buffer: BufferId,
        /// Transfer size in words.
        words: u64,
    },
    /// Run the NFU over the resident tiles.
    Compute {
        /// MACs performed by this pass.
        macs: u64,
        /// Operand words read from NBin during the pass.
        nbin_reads: u64,
        /// Operand words read from SB during the pass.
        sb_reads: u64,
        /// Partial-sum read-modify-writes against NBout during the pass.
        nbout_rmw: u64,
    },
}

impl Instruction {
    /// Returns `true` for off-chip transfer instructions.
    pub fn is_transfer(self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::Store { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_classification() {
        assert!(Instruction::Load { buffer: BufferId::NBin, words: 4 }.is_transfer());
        assert!(Instruction::Store { buffer: BufferId::NBout, words: 4 }.is_transfer());
        assert!(!Instruction::Compute { macs: 1, nbin_reads: 1, sb_reads: 1, nbout_rmw: 1 }
            .is_transfer());
    }
}
