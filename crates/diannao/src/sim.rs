//! The event-level simulator and its energy accounting.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BufferId, Instruction, INSTRUCTION_BITS};

/// Simulator faults.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A load or initialization exceeds the buffer's capacity.
    BufferOverflow { buffer: BufferId, words: u64, capacity: u64 },
    /// A compute pass ran against an empty buffer.
    EmptyBuffer { buffer: BufferId },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BufferOverflow { buffer, words, capacity } => {
                write!(f, "{buffer:?} overflow: {words} words into {capacity}")
            }
            SimError::EmptyBuffer { buffer } => write!(f, "compute with empty {buffer:?}"),
        }
    }
}

impl Error for SimError {}

/// Per-access energies in pJ (16-bit words, 45 nm — the same table as the
/// DianNao-like preset in `sunstone-arch`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One 16-bit MAC.
    pub mac: f64,
    /// One DRAM word access (data or instruction).
    pub dram_word: f64,
    /// One NBin word access.
    pub nbin_word: f64,
    /// One NBout word access.
    pub nbout_word: f64,
    /// One SB word access.
    pub sb_word: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        EnergyTable { mac: 1.0, dram_word: 200.0, nbin_word: 0.4, nbout_word: 0.4, sb_word: 1.6 }
    }
}

/// Event counts and the derived energy breakdown of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// MACs executed.
    pub macs: u64,
    /// Data words read from DRAM.
    pub dram_reads: u64,
    /// Data words written to DRAM.
    pub dram_writes: u64,
    /// Control instructions issued (each fetched from DRAM).
    pub instructions: u64,
    /// Words moved by the one-time data-reordering pass (read + write
    /// each).
    pub reorder_words: u64,
    /// NBin accesses (fills + operand reads).
    pub nbin_accesses: u64,
    /// NBout accesses (initializations, psum RMWs, evictions).
    pub nbout_accesses: u64,
    /// SB accesses (fills + operand reads).
    pub sb_accesses: u64,
    /// Energy table used for the breakdown.
    pub energy: EnergyTable,
}

impl SimReport {
    /// Instruction words fetched from DRAM.
    fn instr_words(&self) -> u64 {
        self.instructions * (INSTRUCTION_BITS / 16)
    }

    /// Energy of the compute units, in pJ.
    pub fn mac_energy_pj(&self) -> f64 {
        self.macs as f64 * self.energy.mac
    }

    /// Energy of DRAM *data* traffic, in pJ.
    pub fn dram_data_energy_pj(&self) -> f64 {
        (self.dram_reads + self.dram_writes) as f64 * self.energy.dram_word
    }

    /// Energy of instruction fetches, in pJ (the first overhead of
    /// Section V-D; instructions live in DRAM).
    pub fn instr_energy_pj(&self) -> f64 {
        self.instr_words() as f64 * self.energy.dram_word
    }

    /// Energy of the data-reordering pass, in pJ (the second overhead:
    /// one DRAM read + write per word, once per layer).
    pub fn reorder_energy_pj(&self) -> f64 {
        (self.reorder_words * 2) as f64 * self.energy.dram_word
    }

    /// Energy of the NBin buffer, in pJ.
    pub fn nbin_energy_pj(&self) -> f64 {
        self.nbin_accesses as f64 * self.energy.nbin_word
    }

    /// Energy of the NBout buffer, in pJ.
    pub fn nbout_energy_pj(&self) -> f64 {
        self.nbout_accesses as f64 * self.energy.nbout_word
    }

    /// Energy of the SB (weight) buffer, in pJ.
    pub fn sb_energy_pj(&self) -> f64 {
        self.sb_accesses as f64 * self.energy.sb_word
    }

    /// Total energy, in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.mac_energy_pj()
            + self.dram_data_energy_pj()
            + self.instr_energy_pj()
            + self.reorder_energy_pj()
            + self.nbin_energy_pj()
            + self.nbout_energy_pj()
            + self.sb_energy_pj()
    }

    /// Execution time in cycles under double buffering: the maximum of
    /// the NFU compute time (256 MACs/cycle) and the DRAM transfer time
    /// (16 words/cycle for data and instruction fetches). On-chip buffer
    /// bandwidth matches the NFU by construction.
    pub fn delay_cycles(&self) -> f64 {
        let compute = self.macs as f64 / 256.0;
        let dram_words =
            self.dram_reads + self.dram_writes + self.instr_words() + 2 * self.reorder_words;
        let transfer = dram_words as f64 / 16.0;
        compute.max(transfer)
    }

    /// Energy-delay product in pJ·cycles.
    pub fn edp(&self) -> f64 {
        self.total_energy_pj() * self.delay_cycles()
    }

    /// Fraction of total energy spent fetching instructions.
    pub fn instr_overhead(&self) -> f64 {
        self.instr_energy_pj() / self.total_energy_pj()
    }

    /// Fraction of total energy spent reordering data.
    pub fn reorder_overhead(&self) -> f64 {
        self.reorder_energy_pj() / self.total_energy_pj()
    }
}

/// The DianNao event simulator. Execute instructions via
/// [`Simulator::execute`] (usually driven by a compiled
/// [`Program`](crate::Program)), then collect the [`SimReport`].
#[derive(Debug, Clone)]
pub struct Simulator {
    report: SimReport,
    /// Current occupancy of each buffer, in words.
    occupancy: [u64; 3],
    /// Capacity of each buffer, in words (NBin, NBout, SB).
    capacity: [u64; 3],
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates a simulator with DianNao's buffer sizes: 2 KB NBin, 2 KB
    /// NBout, 32 KB SB (16-bit words).
    pub fn new() -> Self {
        Simulator {
            report: SimReport::default(),
            occupancy: [0; 3],
            capacity: [1 << 10, 1 << 10, 16 << 10],
        }
    }

    /// Creates a simulator with custom buffer capacities (words).
    pub fn with_capacities(nbin: u64, nbout: u64, sb: u64) -> Self {
        Simulator { report: SimReport::default(), occupancy: [0; 3], capacity: [nbin, nbout, sb] }
    }

    fn idx(buffer: BufferId) -> usize {
        match buffer {
            BufferId::NBin => 0,
            BufferId::NBout => 1,
            BufferId::Sb => 2,
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BufferOverflow`] when a load does not fit and
    /// [`SimError::EmptyBuffer`] when a compute pass reads an unfilled
    /// buffer.
    pub fn execute(&mut self, instr: Instruction) -> Result<(), SimError> {
        match instr {
            Instruction::Load { buffer, words } => {
                self.report.instructions += 1;
                let i = Self::idx(buffer);
                if words > self.capacity[i] {
                    return Err(SimError::BufferOverflow {
                        buffer,
                        words,
                        capacity: self.capacity[i],
                    });
                }
                self.occupancy[i] = words;
                self.report.dram_reads += words;
                self.account_buffer(buffer, words);
                Ok(())
            }
            Instruction::Store { buffer, words } => {
                self.report.instructions += 1;
                self.report.dram_writes += words;
                self.account_buffer(buffer, words);
                Ok(())
            }
            Instruction::Compute { macs, nbin_reads, sb_reads, nbout_rmw } => {
                self.report.instructions += 1;
                for (buffer, reads) in [
                    (BufferId::NBin, nbin_reads),
                    (BufferId::Sb, sb_reads),
                    (BufferId::NBout, nbout_rmw),
                ] {
                    if reads > 0 && self.occupancy[Self::idx(buffer)] == 0 {
                        return Err(SimError::EmptyBuffer { buffer });
                    }
                }
                self.report.macs += macs;
                self.report.nbin_accesses += nbin_reads;
                self.report.sb_accesses += sb_reads;
                // Each RMW is one read and one write.
                self.report.nbout_accesses += 2 * nbout_rmw;
                Ok(())
            }
        }
    }

    /// Zero-initializes a fresh output tile in a buffer (no DRAM traffic,
    /// one buffer write per word).
    pub fn initialize(&mut self, buffer: BufferId, words: u64) -> Result<(), SimError> {
        let i = Self::idx(buffer);
        if words > self.capacity[i] {
            return Err(SimError::BufferOverflow { buffer, words, capacity: self.capacity[i] });
        }
        self.occupancy[i] = words;
        self.account_buffer(buffer, words);
        Ok(())
    }

    /// Accounts the one-time DRAM data-reordering pass.
    pub fn account_reorder(&mut self, words: u64) {
        self.report.reorder_words += words;
    }

    /// Accounts the naive streaming execution: no instructions, no
    /// buffers — only MACs and DRAM.
    pub fn stream_naive(&mut self, macs: u64, dram_reads: u64, dram_writes: u64) {
        self.report.macs += macs;
        self.report.dram_reads += dram_reads;
        self.report.dram_writes += dram_writes;
    }

    fn account_buffer(&mut self, buffer: BufferId, words: u64) {
        match buffer {
            BufferId::NBin => self.report.nbin_accesses += words,
            BufferId::NBout => self.report.nbout_accesses += words,
            BufferId::Sb => self.report.sb_accesses += words,
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> &SimReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_compute_store_round_trip() {
        let mut sim = Simulator::new();
        sim.execute(Instruction::Load { buffer: BufferId::NBin, words: 64 }).unwrap();
        sim.execute(Instruction::Load { buffer: BufferId::Sb, words: 128 }).unwrap();
        sim.initialize(BufferId::NBout, 16).unwrap();
        sim.execute(Instruction::Compute {
            macs: 1024,
            nbin_reads: 64,
            sb_reads: 1024,
            nbout_rmw: 64,
        })
        .unwrap();
        sim.execute(Instruction::Store { buffer: BufferId::NBout, words: 16 }).unwrap();
        let r = sim.report();
        assert_eq!(r.macs, 1024);
        assert_eq!(r.dram_reads, 192);
        assert_eq!(r.dram_writes, 16);
        assert_eq!(r.instructions, 4);
        assert_eq!(r.nbout_accesses, 16 + 128 + 16);
        assert!(r.total_energy_pj() > 0.0);
    }

    #[test]
    fn buffer_overflow_is_detected() {
        let mut sim = Simulator::with_capacities(8, 8, 8);
        let err = sim.execute(Instruction::Load { buffer: BufferId::NBin, words: 9 }).unwrap_err();
        assert!(matches!(err, SimError::BufferOverflow { .. }));
    }

    #[test]
    fn compute_on_empty_buffer_is_detected() {
        let mut sim = Simulator::new();
        let err = sim
            .execute(Instruction::Compute { macs: 1, nbin_reads: 1, sb_reads: 0, nbout_rmw: 0 })
            .unwrap_err();
        assert_eq!(err, SimError::EmptyBuffer { buffer: BufferId::NBin });
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let mut sim = Simulator::new();
        sim.account_reorder(100);
        sim.execute(Instruction::Load { buffer: BufferId::NBin, words: 64 }).unwrap();
        sim.execute(Instruction::Load { buffer: BufferId::Sb, words: 64 }).unwrap();
        sim.initialize(BufferId::NBout, 8).unwrap();
        sim.execute(Instruction::Compute { macs: 64, nbin_reads: 64, sb_reads: 64, nbout_rmw: 8 })
            .unwrap();
        let r = sim.report();
        let parts = r.mac_energy_pj()
            + r.dram_data_energy_pj()
            + r.instr_energy_pj()
            + r.reorder_energy_pj()
            + r.nbin_energy_pj()
            + r.nbout_energy_pj()
            + r.sb_energy_pj();
        assert!((parts - r.total_energy_pj()).abs() < 1e-9);
        assert!(r.instr_overhead() > 0.0 && r.instr_overhead() < 1.0);
        assert!(r.reorder_overhead() > 0.0 && r.reorder_overhead() < 1.0);
    }

    #[test]
    fn delay_is_the_max_of_compute_and_transfer() {
        let mut sim = Simulator::new();
        // Compute-bound: many MACs, little traffic.
        sim.execute(Instruction::Load { buffer: BufferId::NBin, words: 16 }).unwrap();
        sim.execute(Instruction::Load { buffer: BufferId::Sb, words: 16 }).unwrap();
        sim.initialize(BufferId::NBout, 16).unwrap();
        sim.execute(Instruction::Compute {
            macs: 1_000_000,
            nbin_reads: 16,
            sb_reads: 16,
            nbout_rmw: 16,
        })
        .unwrap();
        let r = sim.report();
        assert_eq!(r.delay_cycles(), 1_000_000.0 / 256.0);
        assert!(r.edp() > r.total_energy_pj());

        // Transfer-bound: pure streaming.
        let mut sim2 = Simulator::new();
        sim2.stream_naive(256, 1_000_000, 0);
        assert_eq!(sim2.report().delay_cycles(), 1_000_000.0 / 16.0);
    }

    #[test]
    fn errors_display_nonempty() {
        let e1 = SimError::BufferOverflow { buffer: BufferId::NBin, words: 9, capacity: 8 };
        let e2 = SimError::EmptyBuffer { buffer: BufferId::Sb };
        assert!(!e1.to_string().is_empty());
        assert!(!e2.to_string().is_empty());
    }
}
