//! A DianNao-like accelerator ISA, compiler, and event simulator
//! (Section V-D of the Sunstone paper).
//!
//! DianNao (Chen et al., ASPLOS 2014) drives a 256-multiplier NFU from
//! three on-chip buffers — NBin (inputs), NBout (outputs), SB (weights) —
//! with wide control instructions fetched from DRAM. On-chip data is
//! processed by FSM controllers without further instructions, so
//! instructions are only needed per off-chip transfer.
//!
//! This crate reproduces the paper's overhead study:
//!
//! * [`Instruction`] — a 256-bit load/store/compute instruction set;
//! * [`Compiler`] — lowers a (workload, mapping) pair into an
//!   instruction stream, one load per changed tile per processing pass
//!   (reuse-aware, like the paper's FSM controllers), plus the data
//!   reordering pass that lays tiles out contiguously in DRAM;
//! * [`Simulator`] — executes the stream, tracking buffer occupancy and
//!   event counts, and reports a per-component energy breakdown
//!   ([`SimReport`]) including the instruction-fetch and reordering
//!   overheads of Fig 9.
//!
//! The simulator is event-level (counts, not cycles): the paper's Fig 9
//! is an energy study and double buffering hides transfer latency.
//!
//! # Example
//!
//! ```
//! use sunstone_diannao::{Compiler, Simulator};
//! use sunstone_workloads::{ConvSpec, Precision};
//!
//! let layer = ConvSpec::new("conv", 1, 16, 16, 14, 14, 3, 3, 1);
//! let workload = layer.inference(Precision::conventional());
//! let naive = Compiler::naive(&workload)?;
//! let mut sim = Simulator::new();
//! naive.run(&mut sim)?;
//! let report = sim.report();
//! assert_eq!(report.macs, workload.total_ops());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod compiler;
mod isa;
mod sim;

pub use compiler::{CompileError, Compiler, Program};
pub use isa::{BufferId, Instruction, INSTRUCTION_BITS};
pub use sim::{EnergyTable, SimError, SimReport, Simulator};
