//! Criterion benchmarks: scheduler time-to-solution (the paper's Fig 6b /
//! 7b / 8b metric) and cost-model evaluation throughput.
//!
//! One [`Scheduler`] session is constructed per benchmark group, *outside*
//! the timed closures: the timings measure the search itself on a warmed
//! session (construction cost excluded, estimate cache live), matching how
//! the session API is meant to be used. The recorded perf trajectory lives
//! in `BENCH_schedule.json` (see the `bench_schedule` bin); these benches
//! exist for interactive statistical comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sunstone::{Scheduler, SunstoneConfig};
use sunstone_arch::{presets, Binding};
use sunstone_baselines::{CosaMapper, Mapper};
use sunstone_mapping::Mapping;
use sunstone_model::CostModel;
use sunstone_workloads::{resnet18_layers, tensor, Precision};

fn bench_scheduler(c: &mut Criterion) {
    let conventional = presets::conventional();
    let simba = presets::simba_like();
    let mut group = c.benchmark_group("sunstone_schedule");
    group.sample_size(10);

    let scheduler = Scheduler::new(SunstoneConfig::default());
    let layers = resnet18_layers(16);
    for layer in [&layers[1], &layers[6]] {
        let w = layer.inference(Precision::conventional());
        group.bench_with_input(BenchmarkId::new("conventional", &layer.name), &w, |b, w| {
            b.iter(|| scheduler.schedule(w, &conventional).expect("schedules"))
        });
        let ws = layer.inference(Precision::simba());
        group.bench_with_input(BenchmarkId::new("simba", &layer.name), &ws, |b, w| {
            b.iter(|| scheduler.schedule(w, &simba).expect("schedules"))
        });
    }
    let mttkrp = tensor::mttkrp(tensor::NELL2, 32);
    group.bench_function("conventional/mttkrp_nell2", |b| {
        b.iter(|| scheduler.schedule(&mttkrp, &conventional).expect("schedules"))
    });
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let arch = presets::conventional();
    let w = resnet18_layers(16)[1].inference(Precision::conventional());
    let binding = Binding::resolve(&arch, &w).expect("binds");
    let model = CostModel::new(&w, &arch, &binding);
    let mapping = Mapping::streaming(&w, &arch);
    c.bench_function("cost_model/evaluate", |b| b.iter(|| model.evaluate_unchecked(&mapping)));
    let mut scratch = model.scratch();
    c.bench_function("cost_model/evaluate_scratch", |b| {
        b.iter(|| model.evaluate_unchecked_with(&mapping, &mut scratch))
    });
}

fn bench_cosa(c: &mut Criterion) {
    let arch = presets::simba_like();
    let w = resnet18_layers(16)[1].inference(Precision::simba());
    let cosa = CosaMapper::new();
    c.bench_function("cosa/one_shot", |b| b.iter(|| cosa.map(&w, &arch)));
}

criterion_group!(benches, bench_scheduler, bench_cost_model, bench_cosa);
criterion_main!(benches);
